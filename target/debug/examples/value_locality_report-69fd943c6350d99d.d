/root/repo/target/debug/examples/value_locality_report-69fd943c6350d99d.d: examples/value_locality_report.rs

/root/repo/target/debug/examples/value_locality_report-69fd943c6350d99d: examples/value_locality_report.rs

examples/value_locality_report.rs:
