/root/repo/target/debug/examples/custom_predictor-33737b6ef50e6f35.d: examples/custom_predictor.rs

/root/repo/target/debug/examples/custom_predictor-33737b6ef50e6f35: examples/custom_predictor.rs

examples/custom_predictor.rs:
