/root/repo/target/debug/examples/custom_predictor-2fa2bf394e1e3264.d: examples/custom_predictor.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_predictor-2fa2bf394e1e3264.rmeta: examples/custom_predictor.rs Cargo.toml

examples/custom_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
