/root/repo/target/debug/examples/trace_files-521695a990e5e9c4.d: examples/trace_files.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_files-521695a990e5e9c4.rmeta: examples/trace_files.rs Cargo.toml

examples/trace_files.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
