/root/repo/target/debug/examples/trace_files-c5371b7aa221f5f6.d: examples/trace_files.rs

/root/repo/target/debug/examples/trace_files-c5371b7aa221f5f6: examples/trace_files.rs

examples/trace_files.rs:
