/root/repo/target/debug/examples/value_locality_report-b1bb67ee73ebb76f.d: examples/value_locality_report.rs Cargo.toml

/root/repo/target/debug/examples/libvalue_locality_report-b1bb67ee73ebb76f.rmeta: examples/value_locality_report.rs Cargo.toml

examples/value_locality_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
