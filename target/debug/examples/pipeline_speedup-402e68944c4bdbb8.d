/root/repo/target/debug/examples/pipeline_speedup-402e68944c4bdbb8.d: examples/pipeline_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_speedup-402e68944c4bdbb8.rmeta: examples/pipeline_speedup.rs Cargo.toml

examples/pipeline_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
