/root/repo/target/debug/examples/pipeline_speedup-e788765ee4a69b72.d: examples/pipeline_speedup.rs

/root/repo/target/debug/examples/pipeline_speedup-e788765ee4a69b72: examples/pipeline_speedup.rs

examples/pipeline_speedup.rs:
