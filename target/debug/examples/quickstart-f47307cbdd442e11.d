/root/repo/target/debug/examples/quickstart-f47307cbdd442e11.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f47307cbdd442e11: examples/quickstart.rs

examples/quickstart.rs:
