/root/repo/target/debug/examples/dump_cjpeg-1a33e727fe67c492.d: crates/lang/examples/dump_cjpeg.rs

/root/repo/target/debug/examples/dump_cjpeg-1a33e727fe67c492: crates/lang/examples/dump_cjpeg.rs

crates/lang/examples/dump_cjpeg.rs:
