/root/repo/target/debug/deps/lvp_uarch-092a7d5981b16018.d: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

/root/repo/target/debug/deps/liblvp_uarch-092a7d5981b16018.rlib: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

/root/repo/target/debug/deps/liblvp_uarch-092a7d5981b16018.rmeta: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

crates/uarch/src/lib.rs:
crates/uarch/src/alpha.rs:
crates/uarch/src/branch.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/dataflow.rs:
crates/uarch/src/latency.rs:
crates/uarch/src/metrics.rs:
crates/uarch/src/ppc620.rs:
