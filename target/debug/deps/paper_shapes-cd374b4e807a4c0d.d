/root/repo/target/debug/deps/paper_shapes-cd374b4e807a4c0d.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-cd374b4e807a4c0d: tests/paper_shapes.rs

tests/paper_shapes.rs:
