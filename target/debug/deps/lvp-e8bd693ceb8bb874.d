/root/repo/target/debug/deps/lvp-e8bd693ceb8bb874.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblvp-e8bd693ceb8bb874.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
