/root/repo/target/debug/deps/lvp_bench-21caf65eb2232190.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblvp_bench-21caf65eb2232190.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblvp_bench-21caf65eb2232190.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
