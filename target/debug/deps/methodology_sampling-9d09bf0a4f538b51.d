/root/repo/target/debug/deps/methodology_sampling-9d09bf0a4f538b51.d: crates/bench/src/bin/methodology_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libmethodology_sampling-9d09bf0a4f538b51.rmeta: crates/bench/src/bin/methodology_sampling.rs Cargo.toml

crates/bench/src/bin/methodology_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
