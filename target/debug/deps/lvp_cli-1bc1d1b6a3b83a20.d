/root/repo/target/debug/deps/lvp_cli-1bc1d1b6a3b83a20.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_cli-1bc1d1b6a3b83a20.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
