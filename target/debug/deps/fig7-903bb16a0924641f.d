/root/repo/target/debug/deps/fig7-903bb16a0924641f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-903bb16a0924641f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
