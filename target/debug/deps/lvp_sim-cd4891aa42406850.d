/root/repo/target/debug/deps/lvp_sim-cd4891aa42406850.d: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

/root/repo/target/debug/deps/liblvp_sim-cd4891aa42406850.rlib: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

/root/repo/target/debug/deps/liblvp_sim-cd4891aa42406850.rmeta: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

crates/sim/src/lib.rs:
crates/sim/src/machine.rs:
crates/sim/src/memory.rs:
