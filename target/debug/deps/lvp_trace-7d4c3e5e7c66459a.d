/root/repo/target/debug/deps/lvp_trace-7d4c3e5e7c66459a.d: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

/root/repo/target/debug/deps/lvp_trace-7d4c3e5e7c66459a: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

crates/trace/src/lib.rs:
crates/trace/src/entry.rs:
crates/trace/src/io.rs:
crates/trace/src/text.rs:
crates/trace/src/window.rs:
