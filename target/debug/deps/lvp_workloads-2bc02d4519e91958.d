/root/repo/target/debug/deps/lvp_workloads-2bc02d4519e91958.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc Cargo.toml

/root/repo/target/debug/deps/liblvp_workloads-2bc02d4519e91958.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/../programs/cc1_271.mc:
crates/workloads/src/../programs/cc1.mc:
crates/workloads/src/../programs/cjpeg.mc:
crates/workloads/src/../programs/compress.mc:
crates/workloads/src/../programs/doduc.mc:
crates/workloads/src/../programs/eqntott.mc:
crates/workloads/src/../programs/gawk.mc:
crates/workloads/src/../programs/gperf.mc:
crates/workloads/src/../programs/grep.mc:
crates/workloads/src/../programs/hydro2d.mc:
crates/workloads/src/../programs/mpeg.mc:
crates/workloads/src/../programs/perl.mc:
crates/workloads/src/../programs/quick.mc:
crates/workloads/src/../programs/sc.mc:
crates/workloads/src/../programs/swm256.mc:
crates/workloads/src/../programs/tomcatv.mc:
crates/workloads/src/../programs/xlisp.mc:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
