/root/repo/target/debug/deps/lvp_lang-4d6087f748d4be46.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/lvp_lang-4d6087f748d4be46: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/codegen.rs:
crates/lang/src/optimize.rs:
crates/lang/src/parser.rs:
crates/lang/src/token.rs:
