/root/repo/target/debug/deps/ablation_lct-a5ee2f55681fc988.d: crates/bench/src/bin/ablation_lct.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lct-a5ee2f55681fc988.rmeta: crates/bench/src/bin/ablation_lct.rs Cargo.toml

crates/bench/src/bin/ablation_lct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
