/root/repo/target/debug/deps/lvp_analyze-81970a3f045ac5ac.d: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_analyze-81970a3f045ac5ac.rmeta: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs Cargo.toml

crates/analyze/src/lib.rs:
crates/analyze/src/cfg.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/loads.rs:
crates/analyze/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
