/root/repo/target/debug/deps/fig2-cd568d9bcf0efb17.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-cd568d9bcf0efb17: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
