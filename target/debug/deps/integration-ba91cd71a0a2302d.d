/root/repo/target/debug/deps/integration-ba91cd71a0a2302d.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-ba91cd71a0a2302d.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
