/root/repo/target/debug/deps/fig1-e78a6099613a65d8.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-e78a6099613a65d8: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
