/root/repo/target/debug/deps/lvp_trace-ab612e92ad4e13ed.d: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

/root/repo/target/debug/deps/liblvp_trace-ab612e92ad4e13ed.rlib: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

/root/repo/target/debug/deps/liblvp_trace-ab612e92ad4e13ed.rmeta: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

crates/trace/src/lib.rs:
crates/trace/src/entry.rs:
crates/trace/src/io.rs:
crates/trace/src/text.rs:
crates/trace/src/window.rs:
