/root/repo/target/debug/deps/ablation_lvpt-77eadf46f640ab40.d: crates/bench/src/bin/ablation_lvpt.rs

/root/repo/target/debug/deps/ablation_lvpt-77eadf46f640ab40: crates/bench/src/bin/ablation_lvpt.rs

crates/bench/src/bin/ablation_lvpt.rs:
