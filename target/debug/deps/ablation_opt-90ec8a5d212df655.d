/root/repo/target/debug/deps/ablation_opt-90ec8a5d212df655.d: crates/bench/src/bin/ablation_opt.rs

/root/repo/target/debug/deps/ablation_opt-90ec8a5d212df655: crates/bench/src/bin/ablation_opt.rs

crates/bench/src/bin/ablation_opt.rs:
