/root/repo/target/debug/deps/lvp_analyze-b639c8fa2b7d75aa.d: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

/root/repo/target/debug/deps/liblvp_analyze-b639c8fa2b7d75aa.rlib: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

/root/repo/target/debug/deps/liblvp_analyze-b639c8fa2b7d75aa.rmeta: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

crates/analyze/src/lib.rs:
crates/analyze/src/cfg.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/loads.rs:
crates/analyze/src/verify.rs:
