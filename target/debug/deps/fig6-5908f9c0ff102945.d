/root/repo/target/debug/deps/fig6-5908f9c0ff102945.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-5908f9c0ff102945: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
