/root/repo/target/debug/deps/lvp_analyze-9921b1a438a8b50a.d: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_analyze-9921b1a438a8b50a.rmeta: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs Cargo.toml

crates/analyze/src/lib.rs:
crates/analyze/src/cfg.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/loads.rs:
crates/analyze/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
