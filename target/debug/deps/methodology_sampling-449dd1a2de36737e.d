/root/repo/target/debug/deps/methodology_sampling-449dd1a2de36737e.d: crates/bench/src/bin/methodology_sampling.rs

/root/repo/target/debug/deps/methodology_sampling-449dd1a2de36737e: crates/bench/src/bin/methodology_sampling.rs

crates/bench/src/bin/methodology_sampling.rs:
