/root/repo/target/debug/deps/lvp_trace-54dcd199f5d5802a.d: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_trace-54dcd199f5d5802a.rmeta: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/entry.rs:
crates/trace/src/io.rs:
crates/trace/src/text.rs:
crates/trace/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
