/root/repo/target/debug/deps/ablation_machine-2b3d5d943f37b667.d: crates/bench/src/bin/ablation_machine.rs Cargo.toml

/root/repo/target/debug/deps/libablation_machine-2b3d5d943f37b667.rmeta: crates/bench/src/bin/ablation_machine.rs Cargo.toml

crates/bench/src/bin/ablation_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
