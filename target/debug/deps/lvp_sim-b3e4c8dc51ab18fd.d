/root/repo/target/debug/deps/lvp_sim-b3e4c8dc51ab18fd.d: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_sim-b3e4c8dc51ab18fd.rmeta: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/machine.rs:
crates/sim/src/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
