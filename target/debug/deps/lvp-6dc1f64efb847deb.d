/root/repo/target/debug/deps/lvp-6dc1f64efb847deb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblvp-6dc1f64efb847deb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
