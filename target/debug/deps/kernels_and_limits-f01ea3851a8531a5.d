/root/repo/target/debug/deps/kernels_and_limits-f01ea3851a8531a5.d: tests/kernels_and_limits.rs

/root/repo/target/debug/deps/kernels_and_limits-f01ea3851a8531a5: tests/kernels_and_limits.rs

tests/kernels_and_limits.rs:
