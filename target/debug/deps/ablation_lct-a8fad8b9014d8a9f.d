/root/repo/target/debug/deps/ablation_lct-a8fad8b9014d8a9f.d: crates/bench/src/bin/ablation_lct.rs

/root/repo/target/debug/deps/ablation_lct-a8fad8b9014d8a9f: crates/bench/src/bin/ablation_lct.rs

crates/bench/src/bin/ablation_lct.rs:
