/root/repo/target/debug/deps/mshr-e58bc4f5bfb5afab.d: crates/uarch/tests/mshr.rs Cargo.toml

/root/repo/target/debug/deps/libmshr-e58bc4f5bfb5afab.rmeta: crates/uarch/tests/mshr.rs Cargo.toml

crates/uarch/tests/mshr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
