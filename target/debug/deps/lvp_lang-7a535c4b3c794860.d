/root/repo/target/debug/deps/lvp_lang-7a535c4b3c794860.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_lang-7a535c4b3c794860.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/codegen.rs:
crates/lang/src/optimize.rs:
crates/lang/src/parser.rs:
crates/lang/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
