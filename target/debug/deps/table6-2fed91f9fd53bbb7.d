/root/repo/target/debug/deps/table6-2fed91f9fd53bbb7.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-2fed91f9fd53bbb7: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
