/root/repo/target/debug/deps/table5-fca12f81fb2a1998.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-fca12f81fb2a1998: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
