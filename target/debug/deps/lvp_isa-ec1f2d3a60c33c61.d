/root/repo/target/debug/deps/lvp_isa-ec1f2d3a60c33c61.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/lvp_isa-ec1f2d3a60c33c61: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
