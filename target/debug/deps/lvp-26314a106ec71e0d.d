/root/repo/target/debug/deps/lvp-26314a106ec71e0d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/lvp-26314a106ec71e0d: crates/cli/src/main.rs

crates/cli/src/main.rs:
