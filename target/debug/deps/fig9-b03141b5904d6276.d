/root/repo/target/debug/deps/fig9-b03141b5904d6276.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b03141b5904d6276: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
