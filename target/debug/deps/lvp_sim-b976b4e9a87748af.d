/root/repo/target/debug/deps/lvp_sim-b976b4e9a87748af.d: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_sim-b976b4e9a87748af.rmeta: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/machine.rs:
crates/sim/src/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
