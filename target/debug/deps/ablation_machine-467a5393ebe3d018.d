/root/repo/target/debug/deps/ablation_machine-467a5393ebe3d018.d: crates/bench/src/bin/ablation_machine.rs Cargo.toml

/root/repo/target/debug/deps/libablation_machine-467a5393ebe3d018.rmeta: crates/bench/src/bin/ablation_machine.rs Cargo.toml

crates/bench/src/bin/ablation_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
