/root/repo/target/debug/deps/ablation_machine-8abf51a6f03ff2df.d: crates/bench/src/bin/ablation_machine.rs

/root/repo/target/debug/deps/ablation_machine-8abf51a6f03ff2df: crates/bench/src/bin/ablation_machine.rs

crates/bench/src/bin/ablation_machine.rs:
