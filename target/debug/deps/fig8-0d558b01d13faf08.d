/root/repo/target/debug/deps/fig8-0d558b01d13faf08.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0d558b01d13faf08: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
