/root/repo/target/debug/deps/lvp_predictor-2474e473a968e92f.d: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_predictor-2474e473a968e92f.rmeta: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/analysis.rs:
crates/predictor/src/config.rs:
crates/predictor/src/context.rs:
crates/predictor/src/cvu.rs:
crates/predictor/src/lct.rs:
crates/predictor/src/locality.rs:
crates/predictor/src/lvpt.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
