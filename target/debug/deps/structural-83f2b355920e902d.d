/root/repo/target/debug/deps/structural-83f2b355920e902d.d: crates/uarch/tests/structural.rs

/root/repo/target/debug/deps/structural-83f2b355920e902d: crates/uarch/tests/structural.rs

crates/uarch/tests/structural.rs:
