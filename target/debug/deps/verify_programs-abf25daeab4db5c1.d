/root/repo/target/debug/deps/verify_programs-abf25daeab4db5c1.d: crates/analyze/tests/verify_programs.rs Cargo.toml

/root/repo/target/debug/deps/libverify_programs-abf25daeab4db5c1.rmeta: crates/analyze/tests/verify_programs.rs Cargo.toml

crates/analyze/tests/verify_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
