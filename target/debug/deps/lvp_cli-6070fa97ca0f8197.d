/root/repo/target/debug/deps/lvp_cli-6070fa97ca0f8197.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/lvp_cli-6070fa97ca0f8197: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
