/root/repo/target/debug/deps/lvp_cli-76ee5127af66edb6.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/liblvp_cli-76ee5127af66edb6.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/liblvp_cli-76ee5127af66edb6.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
