/root/repo/target/debug/deps/lvp-69347fe8a54fd5ca.d: src/lib.rs

/root/repo/target/debug/deps/liblvp-69347fe8a54fd5ca.rlib: src/lib.rs

/root/repo/target/debug/deps/liblvp-69347fe8a54fd5ca.rmeta: src/lib.rs

src/lib.rs:
