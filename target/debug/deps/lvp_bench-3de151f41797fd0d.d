/root/repo/target/debug/deps/lvp_bench-3de151f41797fd0d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_bench-3de151f41797fd0d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
