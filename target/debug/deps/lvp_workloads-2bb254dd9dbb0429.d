/root/repo/target/debug/deps/lvp_workloads-2bb254dd9dbb0429.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc

/root/repo/target/debug/deps/lvp_workloads-2bb254dd9dbb0429: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/../programs/cc1_271.mc:
crates/workloads/src/../programs/cc1.mc:
crates/workloads/src/../programs/cjpeg.mc:
crates/workloads/src/../programs/compress.mc:
crates/workloads/src/../programs/doduc.mc:
crates/workloads/src/../programs/eqntott.mc:
crates/workloads/src/../programs/gawk.mc:
crates/workloads/src/../programs/gperf.mc:
crates/workloads/src/../programs/grep.mc:
crates/workloads/src/../programs/hydro2d.mc:
crates/workloads/src/../programs/mpeg.mc:
crates/workloads/src/../programs/perl.mc:
crates/workloads/src/../programs/quick.mc:
crates/workloads/src/../programs/sc.mc:
crates/workloads/src/../programs/swm256.mc:
crates/workloads/src/../programs/tomcatv.mc:
crates/workloads/src/../programs/xlisp.mc:
