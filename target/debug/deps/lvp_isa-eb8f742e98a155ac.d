/root/repo/target/debug/deps/lvp_isa-eb8f742e98a155ac.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_isa-eb8f742e98a155ac.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
