/root/repo/target/debug/deps/lvp_bench-72d6b92e784519b6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_bench-72d6b92e784519b6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
