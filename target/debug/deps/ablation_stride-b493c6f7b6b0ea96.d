/root/repo/target/debug/deps/ablation_stride-b493c6f7b6b0ea96.d: crates/bench/src/bin/ablation_stride.rs

/root/repo/target/debug/deps/ablation_stride-b493c6f7b6b0ea96: crates/bench/src/bin/ablation_stride.rs

crates/bench/src/bin/ablation_stride.rs:
