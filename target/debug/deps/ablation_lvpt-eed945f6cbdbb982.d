/root/repo/target/debug/deps/ablation_lvpt-eed945f6cbdbb982.d: crates/bench/src/bin/ablation_lvpt.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lvpt-eed945f6cbdbb982.rmeta: crates/bench/src/bin/ablation_lvpt.rs Cargo.toml

crates/bench/src/bin/ablation_lvpt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
