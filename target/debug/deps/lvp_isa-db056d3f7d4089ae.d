/root/repo/target/debug/deps/lvp_isa-db056d3f7d4089ae.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_isa-db056d3f7d4089ae.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
