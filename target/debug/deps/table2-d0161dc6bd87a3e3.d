/root/repo/target/debug/deps/table2-d0161dc6bd87a3e3.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-d0161dc6bd87a3e3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
