/root/repo/target/debug/deps/ablation_stride-0dd90306457bd31a.d: crates/bench/src/bin/ablation_stride.rs Cargo.toml

/root/repo/target/debug/deps/libablation_stride-0dd90306457bd31a.rmeta: crates/bench/src/bin/ablation_stride.rs Cargo.toml

crates/bench/src/bin/ablation_stride.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
