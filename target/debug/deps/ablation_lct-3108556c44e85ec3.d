/root/repo/target/debug/deps/ablation_lct-3108556c44e85ec3.d: crates/bench/src/bin/ablation_lct.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lct-3108556c44e85ec3.rmeta: crates/bench/src/bin/ablation_lct.rs Cargo.toml

crates/bench/src/bin/ablation_lct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
