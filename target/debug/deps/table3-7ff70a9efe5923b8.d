/root/repo/target/debug/deps/table3-7ff70a9efe5923b8.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-7ff70a9efe5923b8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
