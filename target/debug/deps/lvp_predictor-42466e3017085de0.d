/root/repo/target/debug/deps/lvp_predictor-42466e3017085de0.d: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

/root/repo/target/debug/deps/lvp_predictor-42466e3017085de0: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

crates/predictor/src/lib.rs:
crates/predictor/src/analysis.rs:
crates/predictor/src/config.rs:
crates/predictor/src/context.rs:
crates/predictor/src/cvu.rs:
crates/predictor/src/lct.rs:
crates/predictor/src/locality.rs:
crates/predictor/src/lvpt.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/unit.rs:
