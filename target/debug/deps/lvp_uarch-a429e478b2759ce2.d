/root/repo/target/debug/deps/lvp_uarch-a429e478b2759ce2.d: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs Cargo.toml

/root/repo/target/debug/deps/liblvp_uarch-a429e478b2759ce2.rmeta: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs Cargo.toml

crates/uarch/src/lib.rs:
crates/uarch/src/alpha.rs:
crates/uarch/src/branch.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/dataflow.rs:
crates/uarch/src/latency.rs:
crates/uarch/src/metrics.rs:
crates/uarch/src/ppc620.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
