/root/repo/target/debug/deps/verify_programs-10f5f70c6799cd50.d: crates/analyze/tests/verify_programs.rs

/root/repo/target/debug/deps/verify_programs-10f5f70c6799cd50: crates/analyze/tests/verify_programs.rs

crates/analyze/tests/verify_programs.rs:
