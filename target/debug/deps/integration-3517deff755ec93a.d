/root/repo/target/debug/deps/integration-3517deff755ec93a.d: tests/integration.rs

/root/repo/target/debug/deps/integration-3517deff755ec93a: tests/integration.rs

tests/integration.rs:
