/root/repo/target/debug/deps/lvp_sim-3492b43a07801f34.d: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

/root/repo/target/debug/deps/lvp_sim-3492b43a07801f34: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

crates/sim/src/lib.rs:
crates/sim/src/machine.rs:
crates/sim/src/memory.rs:
