/root/repo/target/debug/deps/lvp-cb5493a5662d86f3.d: src/lib.rs

/root/repo/target/debug/deps/lvp-cb5493a5662d86f3: src/lib.rs

src/lib.rs:
