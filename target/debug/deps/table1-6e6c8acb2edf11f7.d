/root/repo/target/debug/deps/table1-6e6c8acb2edf11f7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6e6c8acb2edf11f7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
