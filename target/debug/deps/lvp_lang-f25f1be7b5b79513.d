/root/repo/target/debug/deps/lvp_lang-f25f1be7b5b79513.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/liblvp_lang-f25f1be7b5b79513.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

/root/repo/target/debug/deps/liblvp_lang-f25f1be7b5b79513.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/codegen.rs:
crates/lang/src/optimize.rs:
crates/lang/src/parser.rs:
crates/lang/src/token.rs:
