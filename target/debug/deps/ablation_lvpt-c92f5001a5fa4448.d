/root/repo/target/debug/deps/ablation_lvpt-c92f5001a5fa4448.d: crates/bench/src/bin/ablation_lvpt.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lvpt-c92f5001a5fa4448.rmeta: crates/bench/src/bin/ablation_lvpt.rs Cargo.toml

crates/bench/src/bin/ablation_lvpt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
