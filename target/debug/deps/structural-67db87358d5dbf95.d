/root/repo/target/debug/deps/structural-67db87358d5dbf95.d: crates/uarch/tests/structural.rs Cargo.toml

/root/repo/target/debug/deps/libstructural-67db87358d5dbf95.rmeta: crates/uarch/tests/structural.rs Cargo.toml

crates/uarch/tests/structural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
