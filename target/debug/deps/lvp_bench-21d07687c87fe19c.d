/root/repo/target/debug/deps/lvp_bench-21d07687c87fe19c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lvp_bench-21d07687c87fe19c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
