/root/repo/target/debug/deps/lvp_predictor-f90ecfe078d4ca8a.d: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

/root/repo/target/debug/deps/liblvp_predictor-f90ecfe078d4ca8a.rlib: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

/root/repo/target/debug/deps/liblvp_predictor-f90ecfe078d4ca8a.rmeta: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

crates/predictor/src/lib.rs:
crates/predictor/src/analysis.rs:
crates/predictor/src/config.rs:
crates/predictor/src/context.rs:
crates/predictor/src/cvu.rs:
crates/predictor/src/lct.rs:
crates/predictor/src/locality.rs:
crates/predictor/src/lvpt.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/unit.rs:
