/root/repo/target/debug/deps/lvp_uarch-46ae008e5ed032a4.d: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

/root/repo/target/debug/deps/lvp_uarch-46ae008e5ed032a4: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

crates/uarch/src/lib.rs:
crates/uarch/src/alpha.rs:
crates/uarch/src/branch.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/dataflow.rs:
crates/uarch/src/latency.rs:
crates/uarch/src/metrics.rs:
crates/uarch/src/ppc620.rs:
