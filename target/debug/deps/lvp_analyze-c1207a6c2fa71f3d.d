/root/repo/target/debug/deps/lvp_analyze-c1207a6c2fa71f3d.d: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

/root/repo/target/debug/deps/lvp_analyze-c1207a6c2fa71f3d: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

crates/analyze/src/lib.rs:
crates/analyze/src/cfg.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/loads.rs:
crates/analyze/src/verify.rs:
