/root/repo/target/debug/deps/ablation_opt-4935d1ef283c0214.d: crates/bench/src/bin/ablation_opt.rs Cargo.toml

/root/repo/target/debug/deps/libablation_opt-4935d1ef283c0214.rmeta: crates/bench/src/bin/ablation_opt.rs Cargo.toml

crates/bench/src/bin/ablation_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
