/root/repo/target/debug/deps/ablation_dataflow-781d3a8c2fec188d.d: crates/bench/src/bin/ablation_dataflow.rs

/root/repo/target/debug/deps/ablation_dataflow-781d3a8c2fec188d: crates/bench/src/bin/ablation_dataflow.rs

crates/bench/src/bin/ablation_dataflow.rs:
