/root/repo/target/debug/deps/methodology_sampling-20c40c8047532d5e.d: crates/bench/src/bin/methodology_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libmethodology_sampling-20c40c8047532d5e.rmeta: crates/bench/src/bin/methodology_sampling.rs Cargo.toml

crates/bench/src/bin/methodology_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
