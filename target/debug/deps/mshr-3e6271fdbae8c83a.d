/root/repo/target/debug/deps/mshr-3e6271fdbae8c83a.d: crates/uarch/tests/mshr.rs

/root/repo/target/debug/deps/mshr-3e6271fdbae8c83a: crates/uarch/tests/mshr.rs

crates/uarch/tests/mshr.rs:
