/root/repo/target/debug/deps/lvp-65398739cbde0e6a.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblvp-65398739cbde0e6a.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
