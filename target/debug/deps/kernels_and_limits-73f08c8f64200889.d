/root/repo/target/debug/deps/kernels_and_limits-73f08c8f64200889.d: tests/kernels_and_limits.rs Cargo.toml

/root/repo/target/debug/deps/libkernels_and_limits-73f08c8f64200889.rmeta: tests/kernels_and_limits.rs Cargo.toml

tests/kernels_and_limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
