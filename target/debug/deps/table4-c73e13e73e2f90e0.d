/root/repo/target/debug/deps/table4-c73e13e73e2f90e0.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c73e13e73e2f90e0: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
