/root/repo/target/debug/deps/lvp_isa-a521b086b60a5f2d.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/liblvp_isa-a521b086b60a5f2d.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/liblvp_isa-a521b086b60a5f2d.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
