/root/repo/target/release/deps/lvp-c55fbb811fd8005c.d: crates/cli/src/main.rs

/root/repo/target/release/deps/lvp-c55fbb811fd8005c: crates/cli/src/main.rs

crates/cli/src/main.rs:
