/root/repo/target/release/deps/lvp_sim-dcde34213a215f31.d: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

/root/repo/target/release/deps/liblvp_sim-dcde34213a215f31.rlib: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

/root/repo/target/release/deps/liblvp_sim-dcde34213a215f31.rmeta: crates/sim/src/lib.rs crates/sim/src/machine.rs crates/sim/src/memory.rs

crates/sim/src/lib.rs:
crates/sim/src/machine.rs:
crates/sim/src/memory.rs:
