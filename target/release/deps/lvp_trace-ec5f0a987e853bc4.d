/root/repo/target/release/deps/lvp_trace-ec5f0a987e853bc4.d: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

/root/repo/target/release/deps/liblvp_trace-ec5f0a987e853bc4.rlib: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

/root/repo/target/release/deps/liblvp_trace-ec5f0a987e853bc4.rmeta: crates/trace/src/lib.rs crates/trace/src/entry.rs crates/trace/src/io.rs crates/trace/src/text.rs crates/trace/src/window.rs

crates/trace/src/lib.rs:
crates/trace/src/entry.rs:
crates/trace/src/io.rs:
crates/trace/src/text.rs:
crates/trace/src/window.rs:
