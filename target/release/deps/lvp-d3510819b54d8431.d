/root/repo/target/release/deps/lvp-d3510819b54d8431.d: src/lib.rs

/root/repo/target/release/deps/liblvp-d3510819b54d8431.rlib: src/lib.rs

/root/repo/target/release/deps/liblvp-d3510819b54d8431.rmeta: src/lib.rs

src/lib.rs:
