/root/repo/target/release/deps/lvp_analyze-f88f0e6a6f64576c.d: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

/root/repo/target/release/deps/liblvp_analyze-f88f0e6a6f64576c.rlib: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

/root/repo/target/release/deps/liblvp_analyze-f88f0e6a6f64576c.rmeta: crates/analyze/src/lib.rs crates/analyze/src/cfg.rs crates/analyze/src/dataflow.rs crates/analyze/src/diag.rs crates/analyze/src/loads.rs crates/analyze/src/verify.rs

crates/analyze/src/lib.rs:
crates/analyze/src/cfg.rs:
crates/analyze/src/dataflow.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/loads.rs:
crates/analyze/src/verify.rs:
