/root/repo/target/release/deps/lvp_isa-8653492b87687810.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/liblvp_isa-8653492b87687810.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/liblvp_isa-8653492b87687810.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/op.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/op.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
