/root/repo/target/release/deps/lvp_cli-1fbea0aa32a160f9.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/liblvp_cli-1fbea0aa32a160f9.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/liblvp_cli-1fbea0aa32a160f9.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
