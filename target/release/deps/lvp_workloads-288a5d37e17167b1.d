/root/repo/target/release/deps/lvp_workloads-288a5d37e17167b1.d: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc

/root/repo/target/release/deps/liblvp_workloads-288a5d37e17167b1.rlib: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc

/root/repo/target/release/deps/liblvp_workloads-288a5d37e17167b1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/kernels.rs crates/workloads/src/../programs/cc1_271.mc crates/workloads/src/../programs/cc1.mc crates/workloads/src/../programs/cjpeg.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/doduc.mc crates/workloads/src/../programs/eqntott.mc crates/workloads/src/../programs/gawk.mc crates/workloads/src/../programs/gperf.mc crates/workloads/src/../programs/grep.mc crates/workloads/src/../programs/hydro2d.mc crates/workloads/src/../programs/mpeg.mc crates/workloads/src/../programs/perl.mc crates/workloads/src/../programs/quick.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/swm256.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/xlisp.mc

crates/workloads/src/lib.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/../programs/cc1_271.mc:
crates/workloads/src/../programs/cc1.mc:
crates/workloads/src/../programs/cjpeg.mc:
crates/workloads/src/../programs/compress.mc:
crates/workloads/src/../programs/doduc.mc:
crates/workloads/src/../programs/eqntott.mc:
crates/workloads/src/../programs/gawk.mc:
crates/workloads/src/../programs/gperf.mc:
crates/workloads/src/../programs/grep.mc:
crates/workloads/src/../programs/hydro2d.mc:
crates/workloads/src/../programs/mpeg.mc:
crates/workloads/src/../programs/perl.mc:
crates/workloads/src/../programs/quick.mc:
crates/workloads/src/../programs/sc.mc:
crates/workloads/src/../programs/swm256.mc:
crates/workloads/src/../programs/tomcatv.mc:
crates/workloads/src/../programs/xlisp.mc:
