/root/repo/target/release/deps/lvp_predictor-673c875046347846.d: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

/root/repo/target/release/deps/liblvp_predictor-673c875046347846.rlib: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

/root/repo/target/release/deps/liblvp_predictor-673c875046347846.rmeta: crates/predictor/src/lib.rs crates/predictor/src/analysis.rs crates/predictor/src/config.rs crates/predictor/src/context.rs crates/predictor/src/cvu.rs crates/predictor/src/lct.rs crates/predictor/src/locality.rs crates/predictor/src/lvpt.rs crates/predictor/src/stride.rs crates/predictor/src/unit.rs

crates/predictor/src/lib.rs:
crates/predictor/src/analysis.rs:
crates/predictor/src/config.rs:
crates/predictor/src/context.rs:
crates/predictor/src/cvu.rs:
crates/predictor/src/lct.rs:
crates/predictor/src/locality.rs:
crates/predictor/src/lvpt.rs:
crates/predictor/src/stride.rs:
crates/predictor/src/unit.rs:
