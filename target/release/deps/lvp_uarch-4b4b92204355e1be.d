/root/repo/target/release/deps/lvp_uarch-4b4b92204355e1be.d: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

/root/repo/target/release/deps/liblvp_uarch-4b4b92204355e1be.rlib: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

/root/repo/target/release/deps/liblvp_uarch-4b4b92204355e1be.rmeta: crates/uarch/src/lib.rs crates/uarch/src/alpha.rs crates/uarch/src/branch.rs crates/uarch/src/cache.rs crates/uarch/src/dataflow.rs crates/uarch/src/latency.rs crates/uarch/src/metrics.rs crates/uarch/src/ppc620.rs

crates/uarch/src/lib.rs:
crates/uarch/src/alpha.rs:
crates/uarch/src/branch.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/dataflow.rs:
crates/uarch/src/latency.rs:
crates/uarch/src/metrics.rs:
crates/uarch/src/ppc620.rs:
