/root/repo/target/release/deps/lvp_lang-6ec2f4a34b4e3ce9.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

/root/repo/target/release/deps/liblvp_lang-6ec2f4a34b4e3ce9.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

/root/repo/target/release/deps/liblvp_lang-6ec2f4a34b4e3ce9.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/codegen.rs crates/lang/src/optimize.rs crates/lang/src/parser.rs crates/lang/src/token.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/codegen.rs:
crates/lang/src/optimize.rs:
crates/lang/src/parser.rs:
crates/lang/src/token.rs:
