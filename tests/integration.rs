//! Cross-crate integration tests: the full three-phase pipeline from
//! mini-C source through trace generation, LVP annotation, and both
//! timing models.

use lvp::isa::AsmProfile;
use lvp::lang::compile;
use lvp::predictor::presets;
use lvp::predictor::LvpUnit;
use lvp::sim::Machine;
use lvp::trace::{AnnotatedTrace, PredOutcome};
use lvp::uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use lvp::workloads::Workload;

/// A compact program with a mix of constant loads, varying loads, calls,
/// and floating point, used where a full workload would be too slow.
const MIXED_SOURCE: &str = r#"
    global int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
    global int counter = 0;
    global float scale = 0.5;

    fn bump(int amount) -> int {
        counter = counter + amount;
        return counter;
    }

    fn main() {
        int i; int acc; float f;
        acc = 0;
        f = 0.0;
        for (i = 0; i < 500; i = i + 1) {
            acc = acc + table[i % 16];
            acc = acc + bump(1);
            f = f + scale * float(i % 4);
        }
        out(acc);
        outf(f);
    }
"#;

#[test]
fn full_pipeline_both_profiles_and_all_machines() {
    for profile in [AsmProfile::Toc, AsmProfile::Gp] {
        // Phase 1: trace generation.
        let program = compile(MIXED_SOURCE, profile).expect("compile");
        let mut machine = Machine::new(&program);
        let trace = machine.run_traced(10_000_000).expect("run");
        assert!(machine.halted());
        assert!(!machine.output().is_empty());

        // Phase 2: LVP annotation for every Table 2 configuration.
        for config in presets::table2() {
            let mut unit = LvpUnit::new(config);
            let outcomes = unit.annotate(&trace);

            // Phase 3: all three machine models accept the annotation.
            for mcfg in [Ppc620Config::base(), Ppc620Config::plus()] {
                let r = simulate_620(&trace, Some(&outcomes), &mcfg);
                assert_eq!(r.instructions, trace.stats().instructions);
                assert!(r.ipc() > 0.1 && r.ipc() <= mcfg.width as f64);
            }
            let r = simulate_21164(&trace, Some(&outcomes), &Alpha21164Config::base());
            assert_eq!(r.instructions, trace.stats().instructions);

            // The annotated view consumes the outcomes without a copy.
            let annotated = AnnotatedTrace::new(&trace, outcomes);
            assert_eq!(annotated.outcomes().len() as u64, trace.stats().loads);
        }
    }
}

/// The timing models consume only the per-load verdict stream
/// ([`PredOutcome`]), never the predictor's tables: an annotation
/// produced under any backend kind is accepted unchanged, and the
/// instruction count — a property of the trace, not the predictor —
/// is identical across kinds.
#[test]
fn timing_models_accept_every_backend_verdict_stream() {
    use lvp::predictor::PredictorKind;

    let program = compile(MIXED_SOURCE, AsmProfile::Toc).expect("compile");
    let mut machine = Machine::new(&program);
    let trace = machine.run_traced(10_000_000).expect("run");
    let mcfg = Ppc620Config::base();
    let acfg = Alpha21164Config::base();

    for kind in PredictorKind::ALL {
        let config = presets::simple().builder().kind(kind).build();
        let mut unit = LvpUnit::new(config);
        let outcomes = unit.annotate(&trace);
        assert_eq!(outcomes.len() as u64, trace.stats().loads, "{kind}");

        let r620 = simulate_620(&trace, Some(&outcomes), &mcfg);
        assert_eq!(r620.instructions, trace.stats().instructions, "{kind}");
        let r164 = simulate_21164(&trace, Some(&outcomes), &acfg);
        assert_eq!(r164.instructions, trace.stats().instructions, "{kind}");
    }
}

#[test]
fn perfect_config_dominates_baseline_and_simple() {
    let program = compile(MIXED_SOURCE, AsmProfile::Toc).expect("compile");
    let mut machine = Machine::new(&program);
    let trace = machine.run_traced(10_000_000).expect("run");
    let mcfg = Ppc620Config::base();
    let base = simulate_620(&trace, None, &mcfg);

    let mut simple_unit = LvpUnit::new(presets::simple());
    let simple = simulate_620(&trace, Some(&simple_unit.annotate(&trace)), &mcfg);
    let mut perfect_unit = LvpUnit::new(presets::perfect());
    let perfect = simulate_620(&trace, Some(&perfect_unit.annotate(&trace)), &mcfg);

    assert!(
        perfect.cycles <= base.cycles,
        "perfect LVP must not be slower than baseline: {} vs {}",
        perfect.cycles,
        base.cycles
    );
    assert!(
        perfect.cycles <= simple.cycles + 4,
        "perfect should be at least as fast as Simple: {} vs {}",
        perfect.cycles,
        simple.cycles
    );
}

#[test]
fn annotations_are_deterministic_across_reruns() {
    let w = Workload::by_name("xlisp").expect("registered");
    let run1 = w.run(AsmProfile::Gp).expect("run 1");
    let run2 = w.run(AsmProfile::Gp).expect("run 2");
    let mut u1 = LvpUnit::new(presets::simple());
    let mut u2 = LvpUnit::new(presets::simple());
    assert_eq!(u1.annotate(&run1.trace), u2.annotate(&run2.trace));
}

#[test]
fn trace_round_trips_through_binary_format() {
    let program = compile(MIXED_SOURCE, AsmProfile::Gp).expect("compile");
    let mut machine = Machine::new(&program);
    let trace = machine.run_traced(10_000_000).expect("run");
    let mut buf = Vec::new();
    lvp::trace::write_trace(&mut buf, &trace).expect("write");
    let back = lvp::trace::read_trace(buf.as_slice()).expect("read");
    assert_eq!(back.entries(), trace.entries());

    // The reread trace drives the timing model to the identical result.
    let a = simulate_620(&trace, None, &Ppc620Config::base());
    let b = simulate_620(&back, None, &Ppc620Config::base());
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn cvu_constants_reduce_cache_traffic_end_to_end() {
    let program = compile(MIXED_SOURCE, AsmProfile::Toc).expect("compile");
    let mut machine = Machine::new(&program);
    let trace = machine.run_traced(10_000_000).expect("run");
    let mut unit = LvpUnit::new(presets::constant());
    let outcomes = unit.annotate(&trace);
    let n_constant = outcomes
        .iter()
        .filter(|&&o| o == PredOutcome::Constant)
        .count() as u64;
    assert!(n_constant > 0, "the TOC loads must become constants");

    let mcfg = Ppc620Config::base();
    let base = simulate_620(&trace, None, &mcfg);
    let lvp = simulate_620(&trace, Some(&outcomes), &mcfg);
    // Every constant-verified load skips the L1; value-mispredicted loads
    // whose dependents got squashed may re-access it on reissue, so the
    // saving is bounded by (not exactly equal to) the constant count.
    let saved = base.l1_accesses - lvp.l1_accesses;
    assert!(
        saved >= n_constant * 9 / 10 && saved <= n_constant,
        "L1 access saving {saved} should be close to the {n_constant} constants"
    );
}

#[test]
fn profile_changes_load_population_not_results() {
    let toc = compile(MIXED_SOURCE, AsmProfile::Toc).expect("compile toc");
    let gp = compile(MIXED_SOURCE, AsmProfile::Gp).expect("compile gp");
    let mut m1 = Machine::new(&toc);
    let mut m2 = Machine::new(&gp);
    let t1 = m1.run_traced(10_000_000).expect("toc run");
    let t2 = m2.run_traced(10_000_000).expect("gp run");
    assert_eq!(m1.output(), m2.output(), "same program semantics");
    assert!(
        t1.stats().loads > t2.stats().loads,
        "Toc must execute more loads: {} vs {}",
        t1.stats().loads,
        t2.stats().loads
    );
}
