//! Integration tests for the assembly kernels and the dataflow-limit
//! analysis across the whole stack.

use lvp::isa::AsmProfile;
use lvp::predictor::presets;
use lvp::predictor::LvpUnit;
use lvp::uarch::{
    dataflow_limit, simulate_21164, simulate_620, Alpha21164Config, LatencyTable, Ppc620Config,
};
use lvp::workloads::{kernels, Kernel, Workload};

#[test]
fn kernels_run_on_all_machines() {
    for k in kernels() {
        let trace = k.run(AsmProfile::Toc).expect("kernel runs");
        let r620 = simulate_620(&trace, None, &Ppc620Config::base());
        let r21164 = simulate_21164(&trace, None, &Alpha21164Config::base());
        assert_eq!(r620.instructions, trace.stats().instructions, "{}", k.name);
        assert_eq!(
            r21164.instructions,
            trace.stats().instructions,
            "{}",
            k.name
        );
    }
}

#[test]
fn pointer_chase_dataflow_limit_is_load_bound() {
    let k = Kernel::by_name("pointer_chase").expect("registered");
    let trace = k.run(AsmProfile::Toc).expect("runs");
    let lat = LatencyTable::ppc620();
    let base = dataflow_limit(&trace, None, &lat);
    // The serial link-load chain bounds the critical path: at least
    // load-latency cycles per step (4096 steps).
    assert!(
        base.critical_path >= 4096 * lat.load,
        "chase must be chain-bound: {}",
        base.critical_path
    );
    // The Limit configuration captures the 16-node cycle and collapses it.
    let mut unit = LvpUnit::new(presets::limit());
    let outcomes = unit.annotate(&trace);
    let limit = dataflow_limit(&trace, Some(&outcomes), &lat);
    // With the link loads predicted, the remaining critical path is the
    // 1-cycle-per-iteration loop counter (~4096) instead of the 2-cycle
    // load chain (~8192).
    assert!(
        limit.critical_path * 10 <= base.critical_path * 6,
        "prediction must break the chain down to the counter bound: {} vs {}",
        limit.critical_path,
        base.critical_path
    );
}

#[test]
fn machine_never_beats_its_dataflow_limit_without_lvp() {
    // Without prediction, no real machine can exceed the dependence bound.
    for name in ["xlisp", "grep"] {
        let w = Workload::by_name(name).expect("registered");
        let run = w.run(AsmProfile::Toc).expect("runs");
        let lat = LatencyTable::ppc620();
        let limit = dataflow_limit(&run.trace, None, &lat);
        let machine = simulate_620(&run.trace, None, &Ppc620Config::base());
        assert!(
            machine.cycles >= limit.critical_path,
            "{name}: the 620 ran faster than its dataflow limit ({} < {})",
            machine.cycles,
            limit.critical_path
        );
    }
}

#[test]
fn sampled_windows_agree_on_speedup_direction() {
    let w = Workload::by_name("gawk").expect("registered");
    let run = w.run(AsmProfile::Toc).expect("runs");
    let mut unit = LvpUnit::new(presets::simple());
    let outcomes = unit.annotate(&run.trace);
    let cfg = Ppc620Config::base();
    let (mut base_c, mut lvp_c) = (0u64, 0u64);
    for window in run.trace.windows(20_000, 200_000) {
        base_c += simulate_620(&window.trace, None, &cfg).cycles;
        lvp_c += simulate_620(&window.trace, Some(window.outcomes(&outcomes)), &cfg).cycles;
    }
    assert!(
        lvp_c < base_c,
        "sampled simulation must agree that LVP speeds gawk up: {lvp_c} vs {base_c}"
    );
}
