//! Qualitative reproduction checks: the paper's headline claims must
//! hold in this implementation (shapes, not absolute numbers). Uses a
//! fast subset of the suite to keep test time reasonable; the bench
//! binaries cover the full suite.

use lvp::isa::AsmProfile;
use lvp::predictor::presets;
use lvp::predictor::AddressRanges;
use lvp::predictor::{LocalityMeter, LvpUnit, ValueClass};
use lvp::uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use lvp::workloads::Workload;

fn locality_of(name: &str, profile: AsmProfile) -> (f64, f64) {
    let w = Workload::by_name(name).expect("registered");
    let run = w.run(profile).expect("run");
    let mut meter = LocalityMeter::paper_default();
    for e in run.trace.iter() {
        meter.observe(e);
    }
    (meter.locality(1), meter.locality(16))
}

/// Section 2 / Figure 1: significant value locality exists, and deeper
/// history uncovers more of it.
#[test]
fn value_locality_exists_and_grows_with_depth() {
    for name in ["xlisp", "grep", "gawk"] {
        let (d1, d16) = locality_of(name, AsmProfile::Toc);
        assert!(d1 > 0.3, "{name}: depth-1 locality too low: {d1:.2}");
        assert!(d16 >= d1, "{name}: depth 16 must not lose to depth 1");
        assert!(d16 > 0.6, "{name}: depth-16 locality too low: {d16:.2}");
    }
}

/// Figure 1: the paper's low-locality benchmarks stay at the bottom of
/// the suite here too.
#[test]
fn known_poor_benchmarks_rank_low() {
    let (compress_d1, _) = locality_of("compress", AsmProfile::Gp);
    let (xlisp_d1, _) = locality_of("xlisp", AsmProfile::Gp);
    let (sc_d1, _) = locality_of("sc", AsmProfile::Gp);
    assert!(
        compress_d1 < xlisp_d1 && compress_d1 < sc_d1,
        "compress (streaming LZW) must rank below xlisp/sc: {compress_d1:.2} vs {xlisp_d1:.2}/{sc_d1:.2}"
    );
}

/// Figure 2: address loads are more predictable than data loads.
#[test]
fn address_loads_beat_data_loads() {
    let w = Workload::by_name("xlisp").expect("registered");
    let run = w.run(AsmProfile::Toc).expect("run");
    let l = run.program.layout();
    let ranges = AddressRanges {
        text: l.text_base()..l.text_end(),
        data: l.data_base()..l.data_end(),
        stack: l.stack_top() - (1 << 20)..l.stack_top() + 1,
    };
    let mut meter = LocalityMeter::paper_default().with_ranges(ranges);
    for e in run.trace.iter() {
        meter.observe(e);
    }
    let data_addr = meter.class_locality(ValueClass::DataAddr, 1);
    let int_data = meter.class_locality(ValueClass::IntData, 1);
    assert!(
        data_addr > int_data,
        "pointer loads must beat plain data: {data_addr:.2} vs {int_data:.2}"
    );
}

/// Section 6.1 / Figure 6: the realistic configurations produce a net
/// speedup on both machine models for a dependence-bound benchmark, and
/// the limit configurations rank above them.
#[test]
fn speedups_rank_simple_below_limit_below_perfect() {
    let w = Workload::by_name("gawk").expect("registered");
    let run = w.run(AsmProfile::Toc).expect("run");
    let mcfg = Ppc620Config::base();
    let base = simulate_620(&run.trace, None, &mcfg);
    let mut speedups = Vec::new();
    for cfg in [presets::simple(), presets::limit(), presets::perfect()] {
        let mut unit = LvpUnit::new(cfg);
        let outcomes = unit.annotate(&run.trace);
        let r = simulate_620(&run.trace, Some(&outcomes), &mcfg);
        speedups.push(r.speedup_over(&base));
    }
    assert!(
        speedups[0] > 1.0,
        "Simple must speed up gawk: {:.3}",
        speedups[0]
    );
    assert!(
        speedups[2] >= speedups[0] - 0.01,
        "Perfect must not lose to Simple: {speedups:?}"
    );
}

/// Section 3.3 / Table 4: the CVU reduces memory bandwidth — LVP is the
/// rare speculative technique that *reduces* rather than increases
/// memory traffic.
#[test]
fn lvp_reduces_memory_bandwidth() {
    let w = Workload::by_name("grep").expect("registered");
    let run = w.run(AsmProfile::Toc).expect("run");
    let mut unit = LvpUnit::new(presets::simple());
    let outcomes = unit.annotate(&run.trace);
    let mcfg = Ppc620Config::base();
    let base = simulate_620(&run.trace, None, &mcfg);
    let lvp = simulate_620(&run.trace, Some(&outcomes), &mcfg);
    assert!(
        lvp.l1_accesses < base.l1_accesses,
        "the CVU must cut L1 accesses: {} vs {}",
        lvp.l1_accesses,
        base.l1_accesses
    );
}

/// Section 6.2 / Table 6: the widened 620+ outruns the 620, and LVP
/// still helps on top of it.
#[test]
fn plus_machine_and_lvp_compose() {
    let w = Workload::by_name("gawk").expect("registered");
    let run = w.run(AsmProfile::Toc).expect("run");
    let base_620 = simulate_620(&run.trace, None, &Ppc620Config::base());
    let base_plus = simulate_620(&run.trace, None, &Ppc620Config::plus());
    assert!(
        base_plus.cycles <= base_620.cycles,
        "620+ must not lose to 620: {} vs {}",
        base_plus.cycles,
        base_620.cycles
    );
    let mut unit = LvpUnit::new(presets::simple());
    let outcomes = unit.annotate(&run.trace);
    let lvp_plus = simulate_620(&run.trace, Some(&outcomes), &Ppc620Config::plus());
    assert!(
        lvp_plus.cycles < base_plus.cycles,
        "LVP must help the 620+ on gawk: {} vs {}",
        lvp_plus.cycles,
        base_plus.cycles
    );
}

/// Section 4.2: on the 21164, CVU-verified constants are the only
/// predictions that survive an L1 miss; everything else degrades
/// gracefully with no penalty.
#[test]
fn alpha_lvp_is_safe_and_helps_grep() {
    let w = Workload::by_name("grep").expect("registered");
    let run = w.run(AsmProfile::Gp).expect("run");
    let mcfg = Alpha21164Config::base();
    let base = simulate_21164(&run.trace, None, &mcfg);
    let mut unit = LvpUnit::new(presets::simple());
    let outcomes = unit.annotate(&run.trace);
    let lvp = simulate_21164(&run.trace, Some(&outcomes), &mcfg);
    assert!(
        lvp.cycles <= base.cycles,
        "Simple LVP must not slow grep on the 21164: {} vs {}",
        lvp.cycles,
        base.cycles
    );
}
