//! The `lvp` command-line binary; all logic lives in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lvp_cli::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
