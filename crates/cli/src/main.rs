//! The `lvp` command-line binary; all logic lives in the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lvp_cli::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Findings reports (exit 1) belong on stdout so `--format
            // json` output stays machine-readable; hard errors (exit 2)
            // go to stderr.
            if e.to_stdout() {
                println!("{}", format!("{e}").trim_end_matches('\n'));
            } else {
                eprintln!("error: {e}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}
