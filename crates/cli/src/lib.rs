//! # lvp-cli — command-line driver for the LVP reproduction
//!
//! Implements the `lvp` binary. All commands are implemented as library
//! functions that return their output as a `String`, so they are fully
//! testable without spawning processes.
//!
//! ```text
//! lvp suite                           list the 17 workloads
//! lvp run <prog|workload> [opts]      compile + run, print output
//! lvp asm <file.s> [opts]             assemble + disassembly listing
//! lvp locality <prog|workload> [opts] Figure 1-style locality report
//! lvp annotate <prog|workload> [opts] LVP unit statistics
//! lvp profile <prog|workload> [opts]  hottest static loads
//! lvp simulate <prog|workload> [opts] cycle-accurate timing
//! lvp trace <prog|workload> [opts]    dump the text trace (--top lines)
//! lvp trace pack <src> --out <f>      write a binary LVPT v2 trace file
//! lvp trace unpack <file>             binary trace file -> text dump
//! lvp trace verify <file>             stream + checksum-verify a trace file
//! lvp trace info <file>               print a trace file's header
//! lvp check <prog|workload> [opts]    static verifier (lints LVP001-016)
//! lvp check --all [opts]              verify every workload/profile/opt cell
//! lvp bench [names|--all] [opts]      regenerate paper experiments
//!
//! options:
//!   --profile toc|gp        codegen profile        (default toc)
//!   --config  simple|constant|limit|perfect        (default simple)
//!   --machine 620|620+|21164                       (default 620)
//!   --top     N             rows in `profile`      (default 10)
//!   --lint                  run the verifier after `asm`
//!   --compare-lct           join static load classes vs the LCT (`check`)
//!   --memory                provenance lints LVP007-011     (`check`)
//!   --value-flow            value-flow lints LVP012-016     (`check`)
//!   --cross-check           static/dynamic CVU oracle       (`check`)
//!   --format text|json      `check` output format           (default text)
//!   --out     FILE          output path for `trace pack`
//!   --threads N             bench worker threads   (default: all CPUs)
//!   --fast                  bench on the 4-workload smoke subset
//!   --all                   bench every registered experiment
//!   --csv                   bench output as CSV instead of text
//!   --cache-dir DIR         bench persistent trace cache location
//!                           (default target/lvp-cache)
//!   --no-disk-cache         disable the bench persistent trace cache
//! ```
//!
//! `<prog|workload>` is a suite workload name (`lvp suite` lists them), a
//! mini-C file ending in `.mc`, or an assembly file ending in `.s`.

use lvp_isa::{AsmProfile, Assembler, Program};
use lvp_lang::OptLevel;
use lvp_predictor::presets;
use lvp_predictor::{LoadProfiler, LocalityMeter, LvpConfig, LvpUnit, PredictorKind};
use lvp_sim::Machine;
use lvp_trace::{dump_text, Trace};
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use lvp_workloads::Workload;
use std::fmt;
use std::fmt::Write as _;

/// Error produced by a CLI command.
///
/// Carries the process exit code (`lvp check` contract: 0 clean, 1 lint
/// findings, 2 analysis/usage error) and whether the message is a
/// *report* that belongs on stdout (so `--format json` output is
/// machine-readable even when findings make the exit code 1).
#[derive(Debug)]
pub struct CliError {
    message: String,
    code: u8,
    stdout: bool,
}

impl CliError {
    /// A hard error (bad usage, unresolvable program, simulation
    /// failure): exit code 2, message to stderr.
    fn new(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
            stdout: false,
        }
    }

    /// Lint findings: exit code 1, rendered report to stdout.
    fn findings(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 1,
            stdout: true,
        }
    }

    /// The process exit code this error maps to (1 or 2).
    pub fn exit_code(&self) -> u8 {
        self.code
    }

    /// Whether the message is a report for stdout rather than an error
    /// for stderr.
    pub fn to_stdout(&self) -> bool {
        self.stdout
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line options shared by the commands.
#[derive(Debug, Clone)]
pub struct Options {
    /// Codegen profile for compilation/assembly.
    pub profile: AsmProfile,
    /// Optimization level for mini-C compilation.
    pub opt: OptLevel,
    /// LVP configuration for `annotate`/`simulate`.
    pub config: LvpConfig,
    /// Predictor backend override (`--predictor`): applied to `config`
    /// and, for `bench`, to every experiment configuration through
    /// [`lvp_harness::Engine::with_predictor`].
    pub predictor: Option<PredictorKind>,
    /// Machine model for `simulate`.
    pub machine: MachineSel,
    /// Row limit for `profile`.
    pub top: usize,
    /// Run the static verifier after `asm`.
    pub lint: bool,
    /// Join static load classes against the dynamic LCT in `check`.
    pub compare_lct: bool,
    /// Run the memory provenance pass in `check` (lints LVP007-011).
    pub memory: bool,
    /// Run the value-flow pass in `check` (lints LVP012-016; with
    /// `--cross-check`, also the stride-predictor oracle).
    pub value_flow: bool,
    /// Run the static/dynamic cross-check oracle in `check`.
    pub cross_check: bool,
    /// Output format for `check`.
    pub format: CheckFormat,
    /// Worker threads for `bench` (`None` = one per available CPU).
    pub threads: Option<usize>,
    /// Run `bench` on the fast 4-workload smoke subset.
    pub fast: bool,
    /// Run every registered experiment in `bench`.
    pub all: bool,
    /// Emit `bench` reports as CSV instead of fixed-width text.
    pub csv: bool,
    /// Output path for `trace pack`.
    pub out: Option<String>,
    /// Persistent trace cache directory for `bench` (`None` = default
    /// `target/lvp-cache`).
    pub cache_dir: Option<String>,
    /// Disable the `bench` persistent trace cache entirely.
    pub no_disk_cache: bool,
    /// Microbenchmarks selected with `--bench NAME` for `perf` (empty =
    /// whole registry, or the fast subset under `--fast`).
    pub bench: Vec<String>,
    /// Emit the `perf` report as `lvp-perf/1` JSON.
    pub json: bool,
    /// Baseline file for `perf --check` (`None` = default
    /// `results/perf_baseline.json`).
    pub baseline: Option<String>,
    /// Compare the `perf` report against the baseline and fail on
    /// regressions.
    pub check: bool,
    /// Regression threshold for `perf --check`, in percent over the
    /// baseline median.
    pub threshold: u64,
    /// List the `perf` bench registry instead of running it.
    pub list: bool,
}

/// Output format for `lvp check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// The stable `lvp-check/1` JSON schema (one diagnostic per line,
    /// suitable for baseline diffing in CI).
    Json,
}

/// Which timing model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSel {
    /// PowerPC 620 (out-of-order baseline).
    Ppc620,
    /// PowerPC 620+ (widened).
    Ppc620Plus,
    /// Alpha 21164 (in-order).
    Alpha21164,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            profile: AsmProfile::Toc,
            opt: OptLevel::O0,
            config: presets::simple(),
            predictor: None,
            machine: MachineSel::Ppc620,
            top: 10,
            lint: false,
            compare_lct: false,
            memory: false,
            value_flow: false,
            cross_check: false,
            format: CheckFormat::Text,
            threads: None,
            fast: false,
            all: false,
            csv: false,
            out: None,
            cache_dir: None,
            no_disk_cache: false,
            bench: Vec::new(),
            json: false,
            baseline: None,
            check: false,
            threshold: 10,
            list: false,
        }
    }
}

/// Parses `--flag value` pairs (and the valueless `--lint` /
/// `--compare-lct` switches) from `args`, returning the options and the
/// remaining positional arguments.
///
/// # Errors
///
/// Returns [`CliError`] for unknown flags or bad values.
pub fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), CliError> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let take_value = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::new(format!("{a} requires a value")))
        };
        match a.as_str() {
            "--profile" => {
                opts.profile = match take_value(&mut i)?.as_str() {
                    "toc" => AsmProfile::Toc,
                    "gp" => AsmProfile::Gp,
                    other => return Err(CliError::new(format!("unknown profile `{other}`"))),
                };
            }
            "--config" => {
                opts.config = match take_value(&mut i)?.as_str() {
                    "simple" => presets::simple(),
                    "constant" => presets::constant(),
                    "limit" => presets::limit(),
                    "perfect" => presets::perfect(),
                    other => return Err(CliError::new(format!("unknown config `{other}`"))),
                };
            }
            "--predictor" => {
                let v = take_value(&mut i)?;
                opts.predictor = Some(
                    v.parse::<PredictorKind>()
                        .map_err(|e| CliError::new(e.to_string()))?,
                );
            }
            "--machine" => {
                opts.machine = match take_value(&mut i)?.as_str() {
                    "620" => MachineSel::Ppc620,
                    "620+" => MachineSel::Ppc620Plus,
                    "21164" => MachineSel::Alpha21164,
                    other => return Err(CliError::new(format!("unknown machine `{other}`"))),
                };
            }
            "--opt" => {
                opts.opt = match take_value(&mut i)?.as_str() {
                    "0" => OptLevel::O0,
                    "1" => OptLevel::O1,
                    other => return Err(CliError::new(format!("unknown opt level `{other}`"))),
                };
            }
            "--top" => {
                opts.top = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError::new("--top requires a number"))?;
            }
            "--threads" => {
                let n: usize = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError::new("--threads requires a number"))?;
                if n == 0 {
                    return Err(CliError::new("--threads must be at least 1"));
                }
                opts.threads = Some(n);
            }
            "--format" => {
                opts.format = match take_value(&mut i)?.as_str() {
                    "text" => CheckFormat::Text,
                    "json" => CheckFormat::Json,
                    other => return Err(CliError::new(format!("unknown format `{other}`"))),
                };
            }
            "--out" => opts.out = Some(take_value(&mut i)?),
            "--cache-dir" => opts.cache_dir = Some(take_value(&mut i)?),
            "--no-disk-cache" => opts.no_disk_cache = true,
            "--bench" => opts.bench.push(take_value(&mut i)?),
            "--baseline" => opts.baseline = Some(take_value(&mut i)?),
            "--threshold" => {
                opts.threshold = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError::new("--threshold requires a percentage"))?;
            }
            "--json" => opts.json = true,
            "--check" => opts.check = true,
            "--list" => opts.list = true,
            "--lint" => opts.lint = true,
            "--compare-lct" => opts.compare_lct = true,
            "--memory" => opts.memory = true,
            "--value-flow" => opts.value_flow = true,
            "--cross-check" => opts.cross_check = true,
            "--fast" => opts.fast = true,
            "--all" => opts.all = true,
            "--csv" => opts.csv = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown flag `{flag}`")));
            }
            _ => positional.push(a.clone()),
        }
        i += 1;
    }
    if let Some(kind) = opts.predictor {
        opts.config = opts.config.clone().builder().kind(kind).build();
    }
    Ok((opts, positional))
}

/// Resolves a program argument: a workload name, a `.mc` mini-C file, or
/// a `.s` assembly file.
///
/// # Errors
///
/// Returns [`CliError`] if the name is unknown, the file is unreadable,
/// or compilation/assembly fails.
pub fn load_program(target: &str, profile: AsmProfile) -> Result<Program, CliError> {
    load_program_with(target, profile, OptLevel::O0)
}

/// [`load_program`] with an explicit mini-C optimization level.
///
/// # Errors
///
/// Same conditions as [`load_program`].
pub fn load_program_with(
    target: &str,
    profile: AsmProfile,
    opt: OptLevel,
) -> Result<Program, CliError> {
    if let Some(w) = Workload::by_name(target) {
        return lvp_lang::compile_with(w.source, profile, opt)
            .map_err(|e| CliError::new(format!("workload `{target}`: {e}")));
    }
    if target.ends_with(".mc") {
        let src = std::fs::read_to_string(target)
            .map_err(|e| CliError::new(format!("cannot read {target}: {e}")))?;
        return lvp_lang::compile_with(&src, profile, opt)
            .map_err(|e| CliError::new(e.to_string()));
    }
    if target.ends_with(".s") {
        let src = std::fs::read_to_string(target)
            .map_err(|e| CliError::new(format!("cannot read {target}: {e}")))?;
        return Assembler::new(profile)
            .assemble(&src)
            .map_err(|e| CliError::new(e.to_string()));
    }
    Err(CliError::new(format!(
        "`{target}` is not a workload name (see `lvp suite`), a .mc file, or a .s file"
    )))
}

fn trace_program(program: &Program) -> Result<(Trace, Vec<u64>), CliError> {
    let mut machine = Machine::new(program);
    let trace = machine
        .run_traced(200_000_000)
        .map_err(|e| CliError::new(e.to_string()))?;
    Ok((trace, machine.output().to_vec()))
}

/// `lvp suite` — lists the workload registry.
pub fn cmd_suite() -> String {
    let mut out = String::from("name       fp  description\n");
    for w in lvp_workloads::suite() {
        let _ = writeln!(
            out,
            "{:10} {}  {} [{}]",
            w.name,
            if w.floating_point { "y" } else { "." },
            w.description,
            w.input
        );
    }
    out
}

/// `lvp run <target>` — compiles and runs, printing output and counts.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_run(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, output) = trace_program(&program)?;
    let s = trace.stats();
    let mut out = String::new();
    let _ = writeln!(out, "output: {output:?}");
    let _ = writeln!(
        out,
        "instructions {}  loads {}  stores {}  branches {}  jumps {}  fp {}",
        s.instructions, s.loads, s.stores, s.cond_branches, s.jumps, s.fp_ops
    );
    Ok(out)
}

/// `lvp asm <file.s>` — assembles and returns the disassembly listing.
/// With `--lint`, also runs the static verifier and fails on any
/// diagnostic.
///
/// # Errors
///
/// Propagates file and assembly errors; with `--lint`, any lint
/// diagnostic is an error whose message lists every finding.
pub fn cmd_asm(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let mut out = program.disassemble();
    let _ = writeln!(
        out,
        "\n{} instructions, {} data bytes, entry {:#x}, pool base {:#x}",
        program.text().len(),
        program.data().len(),
        program.entry(),
        program.pool_base()
    );
    if opts.lint {
        let diags = lvp_analyze::verify(&program);
        if diags.is_empty() {
            let _ = writeln!(out, "lint: clean (0 diagnostics)");
        } else {
            return Err(CliError::findings(render_diagnostics(target, &diags)));
        }
    }
    Ok(out)
}

fn render_diagnostics(target: &str, diags: &[lvp_analyze::Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{target}: {d}");
    }
    let _ = write!(
        out,
        "{target}: {} diagnostic{} found",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    out
}

/// Runs the static passes over one program: the base verifier
/// (LVP001-006), with `--memory` the provenance pass (LVP007-011), and
/// with `--value-flow` the value-flow pass (LVP012/013/015/016; LVP014
/// needs a trace and never appears here). The combined list is
/// canonicalized by [`lvp_analyze::sort_and_dedupe`].
fn static_diagnostics(
    program: &Program,
    memory: bool,
    value_flow: bool,
) -> Vec<lvp_analyze::Diagnostic> {
    let mut diags = lvp_analyze::verify(program);
    if memory {
        diags.extend(lvp_analyze::analyze_memory(program).diagnostics);
    }
    if value_flow {
        diags.extend(lvp_analyze::analyze_value_flow(program).diagnostics);
    }
    if memory || value_flow {
        lvp_analyze::sort_and_dedupe(&mut diags);
    }
    diags
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the stable `lvp-check/1` JSON document. Scalar fields come
/// first; each diagnostic is one 4-space-indented line so CI can extract
/// and diff them against a committed baseline with `grep`/`comm`.
fn render_check_json(
    cells: &[(String, Vec<lvp_analyze::Diagnostic>)],
    kind: PredictorKind,
    cross: Option<&[lvp_harness::CrossCheckReport]>,
    vf: Option<&[lvp_harness::ValueFlowCheckReport]>,
) -> String {
    let count: usize = cells.iter().map(|(_, d)| d.len()).sum();
    let mut out = format!(
        "{{\"schema\":\"lvp-check/1\",\"predictor\":\"{}\",\"cells\":{},\"count\":{count}",
        kind.as_str(),
        cells.len()
    );
    if let Some(reports) = cross {
        let pass = reports.iter().all(|r| r.passed());
        let _ = write!(
            out,
            ",\"cross_check\":\"{}\",\"violations\":[",
            if pass { "PASS" } else { "FAIL" }
        );
        let lines: Vec<String> = reports
            .iter()
            .flat_map(|r| {
                r.violations.iter().map(|v| {
                    format!(
                        "\n    \"{}: {}\"",
                        json_escape(&r.cell),
                        json_escape(&v.to_string())
                    )
                })
            })
            .collect();
        out.push_str(&lines.join(","));
        if !lines.is_empty() {
            out.push('\n');
        }
        out.push(']');
    }
    if let Some(reports) = vf {
        let pass = reports.iter().all(|r| r.passed());
        let _ = write!(
            out,
            ",\"value_flow\":\"{}\",\"value_flow_violations\":[",
            if pass { "PASS" } else { "FAIL" }
        );
        let lines: Vec<String> = reports
            .iter()
            .flat_map(|r| {
                r.violations.iter().map(|v| {
                    format!(
                        "\n    \"{}: {}\"",
                        json_escape(&r.cell),
                        json_escape(&v.to_string())
                    )
                })
            })
            .collect();
        out.push_str(&lines.join(","));
        if !lines.is_empty() {
            out.push('\n');
        }
        out.push(']');
    }
    out.push_str(",\"diagnostics\":[");
    let lines: Vec<String> = cells
        .iter()
        .flat_map(|(cell, diags)| {
            diags.iter().map(|d| {
                format!(
                    "\n    {{\"cell\":\"{}\",\"pc\":\"{:#x}\",\"code\":\"{}\",\"name\":\"{}\",\"message\":\"{}\"}}",
                    json_escape(cell),
                    d.pc,
                    d.code.as_str(),
                    d.code.name(),
                    json_escape(&d.message)
                )
            })
        })
        .collect();
    out.push_str(&lines.join(","));
    if !lines.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Labels one (target, profile, opt) cell, e.g. `sc/toc/O0`.
fn cell_label(target: &str, profile: AsmProfile, opt: OptLevel) -> String {
    format!("{target}/{profile}/{opt:?}")
}

/// `lvp check <target>` — runs the static verifier over the program and
/// fails if any lint fires. With `--memory`, the provenance pass
/// (LVP007-011) also runs and its load classification summary is
/// printed. With `--compare-lct`, the program is traced, the LVP unit's
/// Load Classification Table is trained, and the static-class vs
/// LCT-outcome comparison table is printed. With `--cross-check`, the
/// program is traced and the static/dynamic oracle must hold. `--format
/// json` swaps the renderer for the stable `lvp-check/1` schema.
///
/// Exit-code contract (see `lvp help`): 0 clean, 1 findings (the report
/// still goes to stdout), 2 analysis error.
///
/// # Errors
///
/// Propagates program-resolution errors (exit 2); any lint diagnostic or
/// oracle violation becomes a findings error (exit 1) whose message is
/// the full rendered report.
pub fn cmd_check(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let diags = static_diagnostics(&program, opts.memory, opts.value_flow);
    let cell = cell_label(target, opts.profile, opts.opt);
    let (report, vf_report) = if opts.cross_check {
        let (trace, _) = trace_program(&program)?;
        let cross = lvp_harness::cross_check(&program, &trace, &opts.config, cell.clone());
        let vf = opts
            .value_flow
            .then(|| lvp_harness::value_flow_check(&program, &trace, cell.clone()));
        (Some(cross), vf)
    } else {
        (None, None)
    };

    if opts.format == CheckFormat::Json {
        let cells = vec![(cell, diags)];
        let json = render_check_json(
            &cells,
            opts.config.kind,
            report.as_ref().map(std::slice::from_ref),
            vf_report.as_ref().map(std::slice::from_ref),
        );
        let clean = cells[0].1.is_empty()
            && report.as_ref().is_none_or(|r| r.passed())
            && vf_report.as_ref().is_none_or(|r| r.passed());
        return if clean {
            Ok(json)
        } else {
            Err(CliError::findings(json))
        };
    }

    if !diags.is_empty() {
        return Err(CliError::findings(render_diagnostics(target, &diags)));
    }
    let mut out = format!(
        "{target}: ok ({} instructions, 0 diagnostics)\n",
        program.text().len()
    );
    if opts.memory {
        let memory = lvp_analyze::analyze_memory(&program);
        let _ = writeln!(
            out,
            "memory: {} load(s): {} must-constant, {} stack-local, {} unknown",
            memory.loads.len(),
            memory.count(lvp_analyze::MemClass::MustConstant),
            memory.count(lvp_analyze::MemClass::StackLocal),
            memory.count(lvp_analyze::MemClass::Unknown),
        );
    }
    if opts.value_flow {
        let vf = lvp_analyze::analyze_value_flow(&program);
        let _ = writeln!(
            out,
            "value-flow: {} load(s): {} must-constant, {} affine-stride, {} loop-invariant, {} forwardable, {} unknown",
            vf.loads.len(),
            vf.count(lvp_analyze::LoadPredictability::MustConstant),
            vf.count(lvp_analyze::LoadPredictability::AffineStride(0)),
            vf.count(lvp_analyze::LoadPredictability::LoopInvariant),
            vf.count(lvp_analyze::LoadPredictability::StoreToLoadForwardable),
            vf.count(lvp_analyze::LoadPredictability::Unknown),
        );
    }
    if let Some(r) = &report {
        let _ = writeln!(out, "{r}");
        if !r.passed() {
            return Err(CliError::findings(format!("{out}cross-check: FAIL\n")));
        }
        let _ = writeln!(out, "cross-check: PASS");
    }
    if let Some(v) = &vf_report {
        let _ = writeln!(out, "{v}");
        for d in &v.under_approximations {
            let _ = writeln!(out, "  {d}");
        }
        if !v.passed() {
            return Err(CliError::findings(format!("{out}value-flow: FAIL\n")));
        }
        let _ = writeln!(out, "value-flow: PASS");
    }
    if opts.compare_lct {
        let (trace, _) = trace_program(&program)?;
        let mut unit = LvpUnit::new(opts.config.clone());
        let _ = unit.annotate(&trace);
        let static_loads = lvp_analyze::classify_loads(&program);
        let cmp = lvp_analyze::LctComparison::build(&static_loads, unit.lct(), &trace);
        let _ = write!(out, "\n{cmp}");
    }
    Ok(out)
}

/// `lvp check --all` — runs the static passes over every suite workload
/// at every profile × opt level cell (`--fast` restricts to the smoke
/// subset). With `--cross-check`, every cell is additionally traced
/// through the shared [`lvp_harness::Engine`] (parallel, trace-cached
/// like `bench`) and the static/dynamic oracle must hold in each.
///
/// # Errors
///
/// Compilation or tracing failures are hard errors (exit 2); any
/// diagnostic or oracle violation is a findings error (exit 1) carrying
/// the full rendered report.
pub fn cmd_check_all(opts: &Options) -> Result<String, CliError> {
    let engine = build_engine(opts)?;
    let profiles = [AsmProfile::Gp, AsmProfile::Toc];
    let opt_levels = [OptLevel::O0, OptLevel::O1];

    let mut cells: Vec<(String, Vec<lvp_analyze::Diagnostic>)> = Vec::new();
    for w in engine.suite() {
        for profile in profiles {
            for opt in opt_levels {
                let program = lvp_lang::compile_with(w.source, profile, opt).map_err(|e| {
                    CliError::new(format!("workload `{}` ({profile}/{opt:?}): {e}", w.name))
                })?;
                let diags = static_diagnostics(&program, opts.memory, opts.value_flow);
                cells.push((cell_label(w.name, profile, opt), diags));
            }
        }
    }

    let reports: Option<Vec<lvp_harness::CrossCheckReport>> = if opts.cross_check {
        let plan = lvp_harness::ExperimentPlan::new()
            .workloads(engine.suite().to_vec())
            .profiles(profiles)
            .opt_levels(opt_levels)
            .configs([opts.config.clone()])
            .map(|job, ctx| ctx.job_cross_check(job).map(|r| (*r).clone()));
        Some(engine.run(plan).map_err(|e| CliError::new(e.to_string()))?)
    } else {
        None
    };
    let vf_reports: Option<Vec<lvp_harness::ValueFlowCheckReport>> =
        if opts.cross_check && opts.value_flow {
            let plan = lvp_harness::ExperimentPlan::new()
                .workloads(engine.suite().to_vec())
                .profiles(profiles)
                .opt_levels(opt_levels)
                .configs([opts.config.clone()])
                .map(|job, ctx| ctx.job_value_flow(job).map(|r| (*r).clone()));
            Some(engine.run(plan).map_err(|e| CliError::new(e.to_string()))?)
        } else {
            None
        };

    let count: usize = cells.iter().map(|(_, d)| d.len()).sum();
    let oracle_failed = reports
        .as_ref()
        .is_some_and(|rs| rs.iter().any(|r| !r.passed()));
    let vf_failed = vf_reports
        .as_ref()
        .is_some_and(|rs| rs.iter().any(|r| !r.passed()));
    let clean = count == 0 && !oracle_failed && !vf_failed;

    let out = if opts.format == CheckFormat::Json {
        render_check_json(
            &cells,
            opts.config.kind,
            reports.as_deref(),
            vf_reports.as_deref(),
        )
    } else {
        let mut out = String::new();
        for (cell, diags) in &cells {
            if diags.is_empty() {
                let _ = writeln!(out, "{cell}: ok");
            } else {
                for d in diags {
                    let _ = writeln!(out, "{cell}: {d}");
                }
            }
        }
        let _ = writeln!(
            out,
            "check: {} cell(s), {count} diagnostic{}",
            cells.len(),
            if count == 1 { "" } else { "s" }
        );
        if let Some(rs) = &reports {
            for r in rs {
                let _ = writeln!(out, "{r}");
            }
            let _ = writeln!(
                out,
                "cross-check: {} ({} cell(s))",
                if oracle_failed { "FAIL" } else { "PASS" },
                rs.len()
            );
        }
        if let Some(rs) = &vf_reports {
            for r in rs {
                let _ = writeln!(out, "{r}");
            }
            let _ = writeln!(
                out,
                "value-flow: {} ({} cell(s))",
                if vf_failed { "FAIL" } else { "PASS" },
                rs.len()
            );
        }
        out
    };

    if clean {
        Ok(out)
    } else {
        Err(CliError::findings(out))
    }
}

/// `lvp locality <target>` — Figure 1-style locality report.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_locality(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut meter = LocalityMeter::paper_default();
    for e in trace.iter() {
        meter.observe(e);
    }
    let mut out = format!(
        "{} dynamic loads\nvalue locality: {:.1}% at history depth 1, {:.1}% at depth 16\n",
        meter.loads(),
        100.0 * meter.locality(1),
        100.0 * meter.locality(16)
    );
    if opts.predictor.is_some() {
        let mut unit = LvpUnit::new(opts.config.clone());
        let _ = unit.annotate(&trace);
        let s = unit.stats();
        let _ = writeln!(
            out,
            "{} backend: {:.1}% of loads predicted, {:.1}% of predictions correct",
            opts.config.kind,
            100.0 * s.predictions as f64 / s.loads.max(1) as f64,
            100.0 * s.accuracy(),
        );
    }
    Ok(out)
}

/// `lvp annotate <target>` — LVP unit statistics under `--config`.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_annotate(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut unit = LvpUnit::new(opts.config.clone());
    let _ = unit.annotate(&trace);
    let s = unit.stats();
    Ok(format!(
        "config: {}\nloads {}  predictions {} ({:.1}% of loads)\naccuracy {:.1}%  constants (CVU-verified) {:.1}% of loads\nLCT: {:.1}% of unpredictable and {:.1}% of predictable loads identified\n",
        opts.config,
        s.loads,
        s.predictions,
        100.0 * s.predictions as f64 / s.loads.max(1) as f64,
        100.0 * s.accuracy(),
        100.0 * s.constant_rate(),
        100.0 * s.unpredictable_hit_rate(),
        100.0 * s.predictable_hit_rate(),
    ))
}

/// `lvp profile <target>` — hottest static loads with per-PC locality.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_profile(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut profiler = LoadProfiler::new();
    for e in trace.iter() {
        profiler.observe(e);
    }
    let report = profiler.report();
    let mut out = format!(
        "{} static loads; top {} cover {:.1}% of dynamic loads\n\n",
        profiler.static_loads(),
        opts.top,
        100.0 * profiler.coverage_of_top(opts.top)
    );
    let _ = writeln!(
        out,
        "{:>10}  {:>9}  {:>8}  {:>8}  kind",
        "pc", "count", "local@1", "values"
    );
    for s in report.iter().take(opts.top) {
        let values = if s.distinct_values as usize >= LoadProfiler::DISTINCT_CAP {
            ">16".to_string()
        } else {
            s.distinct_values.to_string()
        };
        let _ = writeln!(
            out,
            "{:#10x}  {:>9}  {:>7.1}%  {:>8}  {}{}",
            s.pc,
            s.count,
            100.0 * s.locality(),
            values,
            if s.fp { "fp" } else { "int" },
            if s.is_constant() { " constant" } else { "" }
        );
    }
    Ok(out)
}

/// `lvp trace <target>` — dumps the first `--top` lines (default 10) of
/// the dynamic trace in the greppable text format.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_trace(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let text = dump_text(&trace);
    let mut out: String = text
        .lines()
        .take(opts.top + 1)
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    let _ = writeln!(
        out,
        "... {} entries total ({} loads, {} stores)",
        trace.len(),
        trace.stats().loads,
        trace.stats().stores
    );
    Ok(out)
}

/// Resolves a trace for `trace pack`: a workload / `.mc` / `.s` program
/// (compiled and simulated) or a text-format trace dump.
fn load_trace_for_pack(target: &str, opts: &Options) -> Result<Trace, CliError> {
    if Workload::by_name(target).is_some() || target.ends_with(".mc") || target.ends_with(".s") {
        let program = load_program_with(target, opts.profile, opts.opt)?;
        let (trace, _) = trace_program(&program)?;
        return Ok(trace);
    }
    let text = std::fs::read_to_string(target)
        .map_err(|e| CliError::new(format!("cannot read {target}: {e}")))?;
    lvp_trace::parse_text(&text).map_err(|e| CliError::new(format!("{target}: {e}")))
}

/// `lvp trace pack <src> --out <file>` — writes a binary LVPT v2 trace
/// file from a program source or a text-format trace dump.
///
/// # Errors
///
/// Propagates source-resolution, simulation, and file-write errors;
/// `--out` is required (binary data is never written to stdout).
pub fn cmd_trace_pack(src: &str, opts: &Options) -> Result<String, CliError> {
    let out_path = opts
        .out
        .as_deref()
        .ok_or_else(|| CliError::new("trace pack requires --out <file>"))?;
    let trace = load_trace_for_pack(src, opts)?;
    let mut bytes = Vec::new();
    lvp_trace::write_trace(&mut bytes, &trace)
        .map_err(|e| CliError::new(format!("encoding trace: {e}")))?;
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CliError::new(format!("cannot create {}: {e}", parent.display())))?;
        }
    }
    std::fs::write(out_path, &bytes)
        .map_err(|e| CliError::new(format!("cannot write {out_path}: {e}")))?;
    Ok(format!(
        "packed {} entries into {out_path} ({} bytes, LVPT v{})\n",
        trace.len(),
        bytes.len(),
        lvp_trace::FORMAT_VERSION
    ))
}

/// `lvp trace unpack <file>` — reads a binary trace file and returns the
/// full greppable text dump.
///
/// # Errors
///
/// Propagates file errors and typed [`lvp_trace::TraceIoError`]s
/// (corruption is a clean error, never a panic).
pub fn cmd_trace_unpack(file: &str) -> Result<String, CliError> {
    let f =
        std::fs::File::open(file).map_err(|e| CliError::new(format!("cannot read {file}: {e}")))?;
    let trace = lvp_trace::read_trace(std::io::BufReader::new(f))
        .map_err(|e| CliError::new(format!("{file}: {e}")))?;
    Ok(dump_text(&trace))
}

/// `lvp trace verify <file>` — streams an entire binary trace through
/// [`lvp_trace::TraceReader`], verifying every block checksum, without
/// ever materializing the trace.
///
/// # Errors
///
/// Returns [`CliError`] naming the typed corruption
/// ([`lvp_trace::TraceIoError`]) if any check fails.
pub fn cmd_trace_verify(file: &str) -> Result<String, CliError> {
    let f =
        std::fs::File::open(file).map_err(|e| CliError::new(format!("cannot read {file}: {e}")))?;
    let mut reader = lvp_trace::TraceReader::new(std::io::BufReader::new(f))
        .map_err(|e| CliError::new(format!("{file}: {e}")))?;
    let version = reader.version();
    let mut loads = 0u64;
    for entry in reader.by_ref() {
        let e = entry.map_err(|e| CliError::new(format!("{file}: {e}")))?;
        if e.mem.is_some() && e.dst.is_some() {
            loads += 1;
        }
    }
    Ok(format!(
        "{file}: ok (LVPT v{version}, {} entries, {} blocks, {loads} loads, checksums verified)\n",
        reader.entries_read(),
        reader.blocks_read(),
    ))
}

/// `lvp trace info <file>` — prints a binary trace file's header without
/// reading any records.
///
/// # Errors
///
/// Propagates file errors and header-level [`lvp_trace::TraceIoError`]s.
pub fn cmd_trace_info(file: &str) -> Result<String, CliError> {
    let f =
        std::fs::File::open(file).map_err(|e| CliError::new(format!("cannot read {file}: {e}")))?;
    let reader = lvp_trace::TraceReader::new(std::io::BufReader::new(f))
        .map_err(|e| CliError::new(format!("{file}: {e}")))?;
    let mut out = format!(
        "{file}: LVPT v{}, {} entries declared",
        reader.version(),
        reader.declared_entries()
    );
    if reader.version() == lvp_trace::FORMAT_VERSION {
        let _ = write!(
            out,
            ", {} payload bytes, per-block CRC32",
            reader.payload_len()
        );
    } else {
        let _ = write!(out, ", legacy unframed records (no checksums)");
    }
    out.push('\n');
    Ok(out)
}

/// `lvp simulate <target>` — cycle-accurate run under `--machine`, with
/// the no-LVP baseline and the selected `--config` side by side.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_simulate(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut unit = LvpUnit::new(opts.config.clone());
    let outcomes = unit.annotate(&trace);
    let (name, base, lvp) = match opts.machine {
        MachineSel::Ppc620 => {
            let m = Ppc620Config::base();
            (
                m.name,
                simulate_620(&trace, None, &m),
                simulate_620(&trace, Some(&outcomes), &m),
            )
        }
        MachineSel::Ppc620Plus => {
            let m = Ppc620Config::plus();
            (
                m.name,
                simulate_620(&trace, None, &m),
                simulate_620(&trace, Some(&outcomes), &m),
            )
        }
        MachineSel::Alpha21164 => {
            let m = Alpha21164Config::base();
            (
                m.name,
                simulate_21164(&trace, None, &m),
                simulate_21164(&trace, Some(&outcomes), &m),
            )
        }
    };
    Ok(format!(
        "machine {name}, config {}\nbaseline: {base}\nwith LVP: {lvp}\nspeedup: {:.3}\n",
        opts.config,
        lvp.speedup_over(&base)
    ))
}

/// Builds the shared harness [`lvp_harness::Engine`] from the common
/// `--fast` / `--threads` / `--cache-dir` / `--no-disk-cache` flags
/// (used by `bench` and `check --all`).
///
/// Runs persist traces to the disk cache by default, so a rerun in a
/// fresh process is served from disk and computes zero traces.
fn build_engine(opts: &Options) -> Result<lvp_harness::Engine, CliError> {
    let mut engine = if opts.fast {
        lvp_harness::Engine::fast()
    } else {
        lvp_harness::Engine::new()
    };
    if let Some(n) = opts.threads {
        engine = engine.with_threads(n);
    }
    if let Some(kind) = opts.predictor {
        engine = engine.with_predictor(kind);
    }
    if opts.no_disk_cache {
        if opts.cache_dir.is_some() {
            return Err(CliError::new(
                "--cache-dir and --no-disk-cache are mutually exclusive",
            ));
        }
    } else {
        engine = engine.with_disk_cache(opts.cache_dir.as_deref().unwrap_or("target/lvp-cache"));
    }
    Ok(engine)
}

/// `lvp bench` with no arguments — lists the experiment registry.
fn bench_listing() -> String {
    let mut out = String::from(
        "usage: lvp bench <name>... [--all] [--fast] [--threads N] [--csv]\n\nexperiments:\n",
    );
    for def in lvp_harness::experiments() {
        let _ = writeln!(out, "  {:22} {}", def.name, def.title);
    }
    out
}

/// `lvp bench <names...>` — regenerates paper experiments through the
/// shared [`lvp_harness::Engine`]: one process, one set of caches, so
/// every (workload, profile, opt) trace is generated exactly once no
/// matter how many experiments consume it. `--fast` restricts the suite
/// to the 4-workload smoke subset, `--threads N` bounds the worker pool,
/// `--all` selects the whole registry, `--csv` swaps the renderer.
///
/// Bench additionally persists every generated trace to a
/// content-addressed disk cache (default `target/lvp-cache`, relocatable
/// with `--cache-dir`, disabled with `--no-disk-cache`), so reruns in
/// fresh processes report `traces 0 computed` and are served from disk.
///
/// Each report is followed by a `[name: wall-time]` line and the run
/// ends with an engine cache-counter summary, so CI logs show where the
/// time went and that caching is effective.
///
/// # Errors
///
/// Returns [`CliError`] for unknown experiment names and propagates the
/// first harness failure (which names the workload and pipeline phase).
pub fn cmd_bench(names: &[String], opts: &Options) -> Result<String, CliError> {
    let selected: Vec<&lvp_harness::ExperimentDef> = if opts.all {
        lvp_harness::experiments().iter().collect()
    } else {
        if names.is_empty() {
            return Ok(bench_listing());
        }
        names
            .iter()
            .map(|n| {
                lvp_harness::experiment(n).ok_or_else(|| {
                    CliError::new(format!(
                        "unknown experiment `{n}` (run `lvp bench` for the list)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };

    let engine = build_engine(opts)?;

    let started = std::time::Instant::now();
    let mut out = String::new();
    for def in &selected {
        let t0 = std::time::Instant::now();
        let mut report = (def.run)(&engine).map_err(|e| CliError::new(e.to_string()))?;
        // A non-default engine-wide backend sweep tags every report
        // title (and thus the CSV `#` header) with the kind, so sweep
        // outputs are distinguishable; the default kind stays untagged
        // and byte-identical.
        match engine.predictor() {
            Some(kind) if kind != PredictorKind::LastValue => {
                report.title.push_str(&format!(" [{kind}]"));
            }
            _ => {}
        }
        out.push_str(&if opts.csv {
            report.render_csv()
        } else {
            report.render_text()
        });
        let _ = writeln!(out, "[{}: {:.2}s]\n", def.name, t0.elapsed().as_secs_f64());
    }
    let s = engine.stats();
    let _ = writeln!(
        out,
        "engine: {} experiment{}, {} thread{}, {:.2}s total | traces {} computed / {} cached / \
         {} disk, annotations {} computed / {} cached, timings {} computed / {} cached",
        selected.len(),
        if selected.len() == 1 { "" } else { "s" },
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" },
        started.elapsed().as_secs_f64(),
        s.traces_computed,
        s.trace_hits,
        s.traces_disk_hit,
        s.annotations_computed,
        s.annotation_hits,
        s.timings_computed,
        s.timing_hits,
    );
    let _ = writeln!(
        out,
        "stages: compile+trace {:.2}s, predict {:.2}s, time {:.2}s, cross-check {:.2}s \
         ({:.2}s work across {} thread{})",
        s.trace_ns as f64 / 1e9,
        s.annotate_ns as f64 / 1e9,
        s.timing_ns as f64 / 1e9,
        s.crosscheck_ns as f64 / 1e9,
        s.total_stage_ns() as f64 / 1e9,
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" },
    );
    Ok(out)
}

/// `lvp perf` — runs the in-tree microbenchmark registry (see
/// `crates/harness/src/perf.rs`) and optionally gates against a
/// committed baseline.
///
/// * no flags: run everything, human-readable table; `--fast` restricts
///   to the CI subset, `--bench NAME` (repeatable) picks benches.
/// * `--json`: emit the stable `lvp-perf/1` document (the baseline
///   format; regenerate with `scripts/rebaseline.sh`).
/// * `--check [--baseline PATH] [--threshold PCT]`: compare medians
///   against the baseline (default `results/perf_baseline.json`,
///   threshold 10%). Regressions exit 1 with the report on stdout;
///   unreadable or malformed baselines exit 2.
/// * `--list`: print the registry and exit.
///
/// Iteration counts are env-pinned: `LVP_PERF_ITERS` (default 5) timed
/// iterations after `LVP_PERF_WARMUP` (default 1) warmup runs.
///
/// # Errors
///
/// Returns [`CliError`] (exit 2) for unknown bench names, bad
/// iteration-count environment values, and unreadable or malformed
/// baselines; [`CliError::findings`] (exit 1) when `--check` detects a
/// regression.
pub fn cmd_perf(opts: &Options) -> Result<String, CliError> {
    use lvp_harness::perf;

    if opts.list {
        let mut out = String::from("benches (* = fast subset):\n");
        for b in perf::benches() {
            let _ = writeln!(
                out,
                "  {}{:19} {}",
                if b.fast { "*" } else { " " },
                b.name,
                b.what
            );
        }
        return Ok(out);
    }
    let cfg = lvp_harness::PerfConfig::from_env().map_err(|e| CliError::new(e.to_string()))?;
    let selection =
        perf::select(&opts.bench, opts.fast).map_err(|e| CliError::new(e.to_string()))?;
    let report = perf::run(cfg, &selection, |name| {
        eprintln!(
            "[perf] {name} ({} warmup + {} iters)",
            cfg.warmup, cfg.iters
        );
    });

    let mut out = if opts.json {
        report.to_json()
    } else {
        let mut text = format!(
            "{:20} {:>12} {:>12} {:>12}   (iters {}, warmup {})\n",
            "bench", "median_ns", "p10_ns", "p90_ns", cfg.iters, cfg.warmup
        );
        for r in &report.results {
            let _ = writeln!(
                text,
                "{:20} {:>12} {:>12} {:>12}",
                r.name, r.median_ns, r.p10_ns, r.p90_ns
            );
        }
        text
    };

    if opts.check {
        let path = opts
            .baseline
            .as_deref()
            .unwrap_or("results/perf_baseline.json");
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("cannot read baseline {path}: {e}")))?;
        let baseline = lvp_harness::PerfReport::from_json(&text)
            .map_err(|e| CliError::new(format!("baseline {path}: {e}")))?;
        let regressions = perf::check(&report, &baseline, opts.threshold);
        let compared = report
            .results
            .iter()
            .filter(|r| baseline.results.iter().any(|b| b.name == r.name))
            .count();
        if regressions.is_empty() {
            let _ = writeln!(
                out,
                "perf check: {compared} bench{} within +{}% of {path}",
                if compared == 1 { "" } else { "es" },
                opts.threshold
            );
        } else {
            for r in &regressions {
                let _ = writeln!(
                    out,
                    "perf regression: {} median {} ns vs baseline {} ns (+{}%, threshold +{}%)",
                    r.name, r.current_ns, r.baseline_ns, r.slowdown_pct, opts.threshold
                );
            }
            return Err(CliError::findings(out));
        }
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> &'static str {
    "usage: lvp <command> [args]\n\n\
     commands:\n\
     \x20 suite                         list the 17 workloads\n\
     \x20 run      <prog|workload>      compile + run, print output\n\
     \x20 asm      <file.s|file.mc>     assemble + disassembly listing\n\
     \x20 locality <prog|workload>      value-locality report\n\
     \x20 annotate <prog|workload>      LVP unit statistics\n\
     \x20 profile  <prog|workload>      hottest static loads\n\
     \x20 simulate <prog|workload>      cycle-accurate timing\n\
     \x20 trace    <prog|workload>      dump the text trace\n\
     \x20 trace    pack <src> --out <f> write a binary LVPT v2 trace file\n\
     \x20 trace    unpack|verify|info <file>  read/check binary trace files\n\
     \x20 check    <prog|workload>      static verifier (lints LVP001-016)\n\
     \x20 check    --all                verify every workload/profile/opt cell\n\
     \x20 bench    [names|--all]        regenerate paper tables/figures\n\
     \x20 perf     [--list]             in-tree microbenchmarks; --check gates\n\
     \x20                               against results/perf_baseline.json\n\n\
     options: --profile toc|gp  --config simple|constant|limit|perfect\n\
     \x20        --predictor last-value|stride|context|store-to-load|hybrid\n\
     \x20        (backend for annotate/simulate/locality/check/bench)\n\
     \x20        --machine 620|620+|21164  --opt 0|1  --top N\n\
     \x20        --lint (verify after asm)  --compare-lct (with check)\n\
     \x20        --memory (provenance lints LVP007-011, with check)\n\
     \x20        --value-flow (value-flow lints LVP012-016, with check)\n\
     \x20        --cross-check (static/dynamic CVU oracle, with check)\n\
     \x20        --format text|json (with check)\n\
     \x20        --out FILE (with trace pack)\n\
     \x20        --threads N  --fast  --all  --csv  --cache-dir DIR\n\
     \x20        --no-disk-cache (with bench / check --all)\n\
     \x20        --bench NAME  --json  --baseline FILE  --check\n\
     \x20        --threshold PCT  --list (with perf)\n\n\
     `lvp check` / `lvp perf --check` exit codes: 0 clean, 1 findings\n\
     (report on stdout), 2 analysis error (message on stderr).\n"
}

/// Dispatches a full argument vector (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for any failure.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::new(usage()));
    };
    let rest = &args[1..];
    let (opts, positional) = parse_options(rest)?;
    let target = || -> Result<&String, CliError> {
        positional
            .first()
            .ok_or_else(|| CliError::new(format!("`{cmd}` requires a program argument")))
    };
    match cmd.as_str() {
        "suite" => Ok(cmd_suite()),
        "run" => cmd_run(target()?, &opts),
        "asm" => cmd_asm(target()?, &opts),
        "locality" => cmd_locality(target()?, &opts),
        "annotate" => cmd_annotate(target()?, &opts),
        "profile" => cmd_profile(target()?, &opts),
        "simulate" => cmd_simulate(target()?, &opts),
        "trace" => match positional.first().map(String::as_str) {
            Some(sub @ ("pack" | "unpack" | "verify" | "info")) => {
                let file = positional.get(1).ok_or_else(|| {
                    CliError::new(format!("`trace {sub}` requires a file argument"))
                })?;
                match sub {
                    "pack" => cmd_trace_pack(file, &opts),
                    "unpack" => cmd_trace_unpack(file),
                    "verify" => cmd_trace_verify(file),
                    _ => cmd_trace_info(file),
                }
            }
            _ => cmd_trace(target()?, &opts),
        },
        "check" => {
            if opts.all {
                cmd_check_all(&opts)
            } else {
                cmd_check(target()?, &opts)
            }
        }
        "bench" => cmd_bench(&positional, &opts),
        "perf" => cmd_perf(&opts),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::new(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let (o, pos) = parse_options(&args(&[
            "xlisp",
            "--profile",
            "gp",
            "--config",
            "limit",
            "--machine",
            "21164",
            "--top",
            "5",
        ]))
        .unwrap();
        assert_eq!(o.profile, AsmProfile::Gp);
        assert_eq!(o.config.name, "Limit");
        assert_eq!(o.machine, MachineSel::Alpha21164);
        assert_eq!(o.top, 5);
        assert_eq!(pos, vec!["xlisp"]);
    }

    #[test]
    fn option_errors() {
        assert!(parse_options(&args(&["--profile"])).is_err());
        assert!(parse_options(&args(&["--profile", "mips"])).is_err());
        assert!(parse_options(&args(&["--bogus"])).is_err());
        assert!(parse_options(&args(&["--top", "abc"])).is_err());
    }

    #[test]
    fn suite_lists_everything() {
        let s = cmd_suite();
        for w in lvp_workloads::suite() {
            assert!(s.contains(w.name), "missing {}", w.name);
        }
    }

    #[test]
    fn run_on_workload() {
        let out = cmd_run("xlisp", &Options::default()).unwrap();
        assert!(
            out.contains("output: [4,"),
            "xlisp prints 4 solutions: {out}"
        );
        assert!(out.contains("instructions"));
    }

    #[test]
    fn locality_and_annotate_on_workload() {
        let opts = Options::default();
        let loc = cmd_locality("xlisp", &opts).unwrap();
        assert!(loc.contains("value locality"));
        let ann = cmd_annotate("xlisp", &opts).unwrap();
        assert!(ann.contains("accuracy"));
    }

    #[test]
    fn profile_reports_top_loads() {
        let out = cmd_profile(
            "xlisp",
            &Options {
                top: 3,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("static loads"));
        // summary + blank + header + 3 rows
        assert_eq!(out.lines().count(), 6, "unexpected layout: {out}");
    }

    #[test]
    fn simulate_all_machines() {
        for machine in [
            MachineSel::Ppc620,
            MachineSel::Ppc620Plus,
            MachineSel::Alpha21164,
        ] {
            let out = cmd_simulate(
                "xlisp",
                &Options {
                    machine,
                    ..Options::default()
                },
            )
            .unwrap();
            assert!(out.contains("speedup:"), "{out}");
        }
    }

    #[test]
    fn trace_dump_is_bounded() {
        let out = cmd_trace(
            "xlisp",
            &Options {
                top: 5,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("entries total"));
        assert!(out.lines().count() <= 8, "{out}");
    }

    #[test]
    fn check_reports_clean_workload() {
        let out = cmd_check("quick", &Options::default()).unwrap();
        assert!(out.contains("ok"), "{out}");
        assert!(out.contains("0 diagnostics"), "{out}");
    }

    #[test]
    fn check_flags_buggy_assembly() {
        let dir = std::env::temp_dir().join("lvp-cli-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buggy.s");
        std::fs::write(&path, "main:\n add a1, a0, a0\n out a1\n halt\n").unwrap();
        let err = cmd_check(path.to_str().unwrap(), &Options::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("LVP001"), "{msg}");
        assert!(msg.contains("1 diagnostic found"), "{msg}");

        // The same program fails `asm --lint` but passes plain `asm`.
        let opts = Options {
            lint: true,
            ..Options::default()
        };
        assert!(cmd_asm(path.to_str().unwrap(), &opts).is_err());
        assert!(cmd_asm(path.to_str().unwrap(), &Options::default()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_compare_lct_prints_table() {
        let opts = Options {
            compare_lct: true,
            ..Options::default()
        };
        let out = cmd_check("quick", &opts).unwrap();
        for class in ["constant", "stack-reload", "global", "computed"] {
            assert!(out.contains(class), "missing `{class}` row:\n{out}");
        }
    }

    #[test]
    fn asm_lint_clean_appends_summary() {
        let opts = Options {
            lint: true,
            ..Options::default()
        };
        let out = cmd_asm("quick", &opts).unwrap();
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn bool_flags_parse_without_values() {
        let (o, pos) = parse_options(&args(&["quick", "--lint", "--compare-lct"])).unwrap();
        assert!(o.lint && o.compare_lct);
        assert_eq!(pos, vec!["quick"]);
    }

    #[test]
    fn bench_flags_parse() {
        let (o, pos) =
            parse_options(&args(&["table3", "--threads", "2", "--fast", "--csv"])).unwrap();
        assert_eq!(o.threads, Some(2));
        assert!(o.fast && o.csv && !o.all);
        assert_eq!(pos, vec!["table3"]);
        assert!(parse_options(&args(&["--threads", "0"])).is_err());
        assert!(parse_options(&args(&["--threads", "two"])).is_err());
    }

    #[test]
    fn cache_and_out_flags_parse() {
        let (o, pos) = parse_options(&args(&[
            "pack",
            "quick",
            "--out",
            "q.lvpt",
            "--cache-dir",
            "/tmp/c",
            "--no-disk-cache",
        ]))
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("q.lvpt"));
        assert_eq!(o.cache_dir.as_deref(), Some("/tmp/c"));
        assert!(o.no_disk_cache);
        assert_eq!(pos, vec!["pack", "quick"]);
        assert!(parse_options(&args(&["--out"])).is_err());
        assert!(parse_options(&args(&["--cache-dir"])).is_err());
    }

    #[test]
    fn bench_rejects_conflicting_cache_flags() {
        let opts = Options {
            cache_dir: Some("/tmp/x".into()),
            no_disk_cache: true,
            ..Options::default()
        };
        let err = cmd_bench(&args(&["table2"]), &opts).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lvp-cli-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn trace_pack_verify_info_unpack_round_trip() {
        let path = temp_file("quick.lvpt");
        let opts = Options {
            out: Some(path.to_str().unwrap().to_string()),
            ..Options::default()
        };
        let packed = cmd_trace_pack("quick", &opts).unwrap();
        assert!(packed.contains("LVPT v2"), "{packed}");

        let file = path.to_str().unwrap();
        let verified = cmd_trace_verify(file).unwrap();
        assert!(verified.contains("ok (LVPT v2"), "{verified}");
        assert!(verified.contains("checksums verified"), "{verified}");

        let info = cmd_trace_info(file).unwrap();
        assert!(info.contains("entries declared"), "{info}");
        assert!(info.contains("per-block CRC32"), "{info}");

        // The unpacked text dump matches a direct in-process dump.
        let program = load_program("quick", AsmProfile::Toc).unwrap();
        let (trace, _) = trace_program(&program).unwrap();
        assert_eq!(cmd_trace_unpack(file).unwrap(), dump_text(&trace));

        // A text dump can be re-packed into identical binary bytes.
        let text_path = temp_file("quick.trace");
        std::fs::write(&text_path, dump_text(&trace)).unwrap();
        let repack = temp_file("quick2.lvpt");
        let opts2 = Options {
            out: Some(repack.to_str().unwrap().to_string()),
            ..Options::default()
        };
        cmd_trace_pack(text_path.to_str().unwrap(), &opts2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&repack).unwrap(),
            "pack-from-source and pack-from-text-dump must agree"
        );
    }

    #[test]
    fn trace_verify_catches_corruption_without_panicking() {
        let path = temp_file("corrupt.lvpt");
        let opts = Options {
            out: Some(path.to_str().unwrap().to_string()),
            ..Options::default()
        };
        cmd_trace_pack("quick", &opts).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = cmd_trace_verify(path.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // `info` only reads the header, which is intact.
        assert!(cmd_trace_info(path.to_str().unwrap()).is_ok());
    }

    #[test]
    fn trace_pack_requires_out_and_tools_require_files() {
        let err = cmd_trace_pack("quick", &Options::default()).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        assert!(cmd_trace_verify("/nonexistent.lvpt").is_err());
        assert!(dispatch(&args(&["trace", "pack"]))
            .unwrap_err()
            .to_string()
            .contains("requires a file"));
    }

    #[test]
    fn bench_second_run_is_served_from_disk_cache() {
        let dir =
            std::env::temp_dir().join(format!("lvp-cli-bench-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = Options {
            fast: true,
            threads: Some(4),
            cache_dir: Some(dir.to_str().unwrap().to_string()),
            ..Options::default()
        };
        let cold = cmd_bench(&args(&["fig1"]), &opts).unwrap();
        assert!(!cold.contains("traces 0 computed"), "{cold}");

        let warm = cmd_bench(&args(&["fig1"]), &opts).unwrap();
        assert!(warm.contains("traces 0 computed"), "{warm}");
        assert!(!warm.contains("/ 0 disk"), "no disk hits: {warm}");
        // Every trace the cold run computed is now a disk hit, and the
        // reports themselves are byte-identical (timing lines aside).
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| {
                    !l.starts_with('[') && !l.starts_with("engine:") && !l.starts_with("stages:")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_without_names_lists_registry() {
        let out = cmd_bench(&[], &Options::default()).unwrap();
        for def in lvp_harness::experiments() {
            assert!(out.contains(def.name), "missing {} in:\n{out}", def.name);
        }
    }

    #[test]
    fn bench_rejects_unknown_experiment() {
        let err = cmd_bench(&args(&["table99"]), &Options::default()).unwrap_err();
        assert!(err.to_string().contains("table99"), "{err}");
    }

    #[test]
    fn bench_runs_static_experiments_with_timing_and_stats() {
        let opts = Options {
            fast: true,
            threads: Some(2),
            ..Options::default()
        };
        // table2/table5 are static (no simulation), so this stays fast.
        let out = cmd_bench(&args(&["table2", "table5"]), &opts).unwrap();
        assert!(out.contains("[table2:"), "{out}");
        assert!(out.contains("[table5:"), "{out}");
        assert!(out.contains("engine: 2 experiments, 2 threads"), "{out}");
        assert!(
            out.contains("traces 0 computed / 0 cached / 0 disk"),
            "{out}"
        );

        let csv = cmd_bench(
            &args(&["table2"]),
            &Options {
                csv: true,
                ..opts.clone()
            },
        )
        .unwrap();
        assert!(csv.starts_with("# Table 2:"), "{csv}");
        assert!(csv.contains("config,LVPT entries"), "{csv}");
    }

    fn buggy_asm_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lvp-cli-exit-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, "main:\n add a1, a0, a0\n out a1\n halt\n").unwrap();
        path
    }

    #[test]
    fn check_exit_code_contract() {
        // 0: clean program succeeds.
        assert!(cmd_check("quick", &Options::default()).is_ok());
        // 1: lint findings, report routed to stdout.
        let path = buggy_asm_file("exit1.s");
        let err = cmd_check(path.to_str().unwrap(), &Options::default()).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_stdout());
        // 2: unresolvable program is a hard error on stderr.
        let err = cmd_check("nonesuch", &Options::default()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(!err.to_stdout());
        // The contract is documented in the help text.
        assert!(usage().contains("exit codes"), "{}", usage());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_json_format_is_machine_readable() {
        let opts = Options {
            format: CheckFormat::Json,
            ..Options::default()
        };
        // Findings: exit 1, but the body is still the JSON document.
        let path = buggy_asm_file("json.s");
        let err = cmd_check(path.to_str().unwrap(), &opts).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_stdout());
        let body = err.to_string();
        assert!(body.contains("\"schema\":\"lvp-check/1\""), "{body}");
        assert!(body.contains("\"code\":\"LVP001\""), "{body}");
        assert!(body.contains("\"name\":\"uninit-read\""), "{body}");
        std::fs::remove_file(&path).ok();

        // Clean: exit 0 with an empty diagnostics array.
        let out = cmd_check("quick", &opts).unwrap();
        assert!(out.contains("\"count\":0"), "{out}");
        assert!(out.contains("\"diagnostics\":[]"), "{out}");

        // Escaping keeps the document well-formed.
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn check_memory_prints_classification_summary() {
        // A program with no loads at all is clean under every memory
        // lint; the summary line still renders.
        let dir = std::env::temp_dir().join(format!("lvp-cli-mem-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nomem.s");
        std::fs::write(&path, "main:\n li a0, 1\n out a0\n halt\n").unwrap();
        let opts = Options {
            memory: true,
            ..Options::default()
        };
        let out = cmd_check(path.to_str().unwrap(), &opts).unwrap();
        assert!(out.contains("memory: 0 load(s)"), "{out}");
        assert!(out.contains("must-constant"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_value_flow_prints_summary_and_gate() {
        // Static side: the classification summary renders. Dynamic side
        // (with --cross-check): the stride oracle must hold and print
        // its PASS verdict.
        let opts = Options {
            value_flow: true,
            cross_check: true,
            profile: AsmProfile::Gp,
            ..Options::default()
        };
        let out = cmd_check("compress", &opts).unwrap();
        assert!(out.contains("value-flow:"), "{out}");
        assert!(out.contains("affine-stride"), "{out}");
        assert!(out.contains("value-flow: PASS"), "{out}");
    }

    #[test]
    fn check_value_flow_lints_fire_in_findings() {
        // A loop-invariant load inside a loop fires LVP013 and makes
        // the exit code 1 through the findings path.
        let dir = std::env::temp_dir().join(format!("lvp-cli-vf-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.s");
        std::fs::write(
            &path,
            ".data\nv: .dword 9\n.text\nmain:\n li t0, 4\n la a0, v\nloop:\n \
             ld a1, 0(a0)\n addi t0, t0, -1\n bne t0, zero, loop\n out a1\n halt\n",
        )
        .unwrap();
        let opts = Options {
            value_flow: true,
            profile: AsmProfile::Gp,
            ..Options::default()
        };
        let err = cmd_check(path.to_str().unwrap(), &opts).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_stdout());
        assert!(err.to_string().contains("LVP013"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_cross_check_reports_pass() {
        // No `--memory`: real workloads legitimately carry provenance
        // findings (LVP008/010/011 headroom lints, baselined in CI);
        // the oracle itself must hold regardless.
        let opts = Options {
            cross_check: true,
            ..Options::default()
        };
        let out = cmd_check("quick", &opts).unwrap();
        assert!(out.contains("cross-check: PASS"), "{out}");
        assert!(out.contains("must-constant pc(s)"), "{out}");
    }

    #[test]
    fn check_flags_parse() {
        let (o, pos) = parse_options(&args(&[
            "quick",
            "--memory",
            "--value-flow",
            "--cross-check",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(o.memory && o.value_flow && o.cross_check);
        assert_eq!(o.format, CheckFormat::Json);
        assert_eq!(pos, vec!["quick"]);
        assert!(parse_options(&args(&["--format", "xml"])).is_err());
        assert!(parse_options(&args(&["--format"])).is_err());
    }

    #[test]
    fn perf_flags_parse() {
        let (o, pos) = parse_options(&args(&[
            "--bench",
            "alias_fixpoint",
            "--bench",
            "sim_620_256k",
            "--json",
            "--check",
            "--baseline",
            "b.json",
            "--threshold",
            "40",
            "--list",
        ]))
        .unwrap();
        assert_eq!(o.bench, vec!["alias_fixpoint", "sim_620_256k"]);
        assert!(o.json && o.check && o.list);
        assert_eq!(o.baseline.as_deref(), Some("b.json"));
        assert_eq!(o.threshold, 40);
        assert!(pos.is_empty());
        assert!(parse_options(&args(&["--threshold", "lots"])).is_err());
        assert!(parse_options(&args(&["--bench"])).is_err());
    }

    #[test]
    fn perf_list_names_every_bench() {
        let out = dispatch(&args(&["perf", "--list"])).unwrap();
        for b in lvp_harness::benches() {
            assert!(out.contains(b.name), "{out}");
        }
    }

    #[test]
    fn perf_rejects_unknown_bench_with_exit_2() {
        let e = dispatch(&args(&["perf", "--bench", "nonesuch"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(!e.to_stdout());
        assert!(e.to_string().contains("nonesuch"));
    }

    /// One fast bench, pinned to a single iteration for test speed.
    fn perf_args(extra: &[&str]) -> Vec<String> {
        std::env::set_var("LVP_PERF_ITERS", "1");
        std::env::set_var("LVP_PERF_WARMUP", "0");
        let mut v = args(&["perf", "--bench", "alias_fixpoint"]);
        v.extend(args(extra));
        v
    }

    fn temp_baseline(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("lvp-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp baseline");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn perf_check_missing_baseline_is_exit_2() {
        let e = dispatch(&perf_args(&[
            "--check",
            "--baseline",
            "/nonexistent/b.json",
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(!e.to_stdout());
        assert!(e.to_string().contains("cannot read baseline"), "{e}");
    }

    #[test]
    fn perf_check_malformed_baseline_is_exit_2_not_panic() {
        for (name, contents) in [
            ("truncated", "{\"format\": \"lvp-perf/1\", \"iters\""),
            (
                "wrong-tag",
                "{\"format\": \"lvp-check/1\", \"iters\": 5, \"warmup\": 1, \"benches\": []}",
            ),
            (
                "missing-field",
                "{\"format\": \"lvp-perf/1\", \"benches\": []}",
            ),
            ("not-json", "median_ns: 5"),
        ] {
            let path = temp_baseline(name, contents);
            let e = dispatch(&perf_args(&["--check", "--baseline", &path])).unwrap_err();
            assert_eq!(e.exit_code(), 2, "{name}: {e}");
            assert!(!e.to_stdout(), "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn perf_check_synthetic_slowdown_is_exit_1_on_stdout() {
        // A baseline claiming the bench takes 1 ns: the real run must
        // regress past any threshold and exit 1 with the report on stdout.
        let baseline = "{\n    \"format\": \"lvp-perf/1\",\n    \"iters\": 1,\n    \
                        \"warmup\": 0,\n    \"benches\": [\n        {\n            \
                        \"name\": \"alias_fixpoint\",\n            \"median_ns\": 1,\n            \
                        \"p10_ns\": 1,\n            \"p90_ns\": 1,\n            \
                        \"samples_ns\": [1]\n        }\n    ]\n}\n";
        let path = temp_baseline("slow", baseline);
        let e = dispatch(&perf_args(&[
            "--check",
            "--baseline",
            &path,
            "--threshold",
            "40",
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_stdout(), "regression report belongs on stdout");
        assert!(
            e.to_string().contains("perf regression: alias_fixpoint"),
            "{e}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn perf_check_passes_against_generous_baseline() {
        // A baseline claiming an absurdly slow run: the real run is
        // faster, so the check passes and reports the comparison.
        let baseline = "{\n    \"format\": \"lvp-perf/1\",\n    \"iters\": 1,\n    \
                        \"warmup\": 0,\n    \"benches\": [\n        {\n            \
                        \"name\": \"alias_fixpoint\",\n            \"median_ns\": 600000000000,\n            \
                        \"p10_ns\": 1,\n            \"p90_ns\": 1,\n            \
                        \"samples_ns\": [600000000000]\n        }\n    ]\n}\n";
        let path = temp_baseline("fast", baseline);
        let out = dispatch(&perf_args(&["--check", "--baseline", &path])).unwrap();
        assert!(out.contains("perf check: 1 bench within"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn perf_json_output_is_parseable() {
        let out = dispatch(&perf_args(&["--json"])).unwrap();
        let report = lvp_harness::PerfReport::from_json(&out).expect("own JSON parses");
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].name, "alias_fixpoint");
    }

    #[test]
    fn dispatch_errors_are_helpful() {
        assert!(dispatch(&args(&["frobnicate"]))
            .unwrap_err()
            .to_string()
            .contains("usage"));
        assert!(dispatch(&args(&["run"]))
            .unwrap_err()
            .to_string()
            .contains("requires"));
        assert!(dispatch(&args(&["run", "nonesuch"])).is_err());
        assert!(dispatch(&args(&["help"])).unwrap().contains("commands"));
    }
}
