//! # lvp-cli — command-line driver for the LVP reproduction
//!
//! Implements the `lvp` binary. All commands are implemented as library
//! functions that return their output as a `String`, so they are fully
//! testable without spawning processes.
//!
//! ```text
//! lvp suite                           list the 17 workloads
//! lvp run <prog|workload> [opts]      compile + run, print output
//! lvp asm <file.s> [opts]             assemble + disassembly listing
//! lvp locality <prog|workload> [opts] Figure 1-style locality report
//! lvp annotate <prog|workload> [opts] LVP unit statistics
//! lvp profile <prog|workload> [opts]  hottest static loads
//! lvp simulate <prog|workload> [opts] cycle-accurate timing
//! lvp trace <prog|workload> [opts]    dump the text trace (--top lines)
//! lvp check <prog|workload> [opts]    static verifier (lints LVP001-006)
//! lvp bench [names|--all] [opts]      regenerate paper experiments
//!
//! options:
//!   --profile toc|gp        codegen profile        (default toc)
//!   --config  simple|constant|limit|perfect        (default simple)
//!   --machine 620|620+|21164                       (default 620)
//!   --top     N             rows in `profile`      (default 10)
//!   --lint                  run the verifier after `asm`
//!   --compare-lct           join static load classes vs the LCT (`check`)
//!   --threads N             bench worker threads   (default: all CPUs)
//!   --fast                  bench on the 4-workload smoke subset
//!   --all                   bench every registered experiment
//!   --csv                   bench output as CSV instead of text
//! ```
//!
//! `<prog|workload>` is a suite workload name (`lvp suite` lists them), a
//! mini-C file ending in `.mc`, or an assembly file ending in `.s`.

use lvp_isa::{AsmProfile, Assembler, Program};
use lvp_lang::OptLevel;
use lvp_predictor::{LoadProfiler, LocalityMeter, LvpConfig, LvpUnit};
use lvp_sim::Machine;
use lvp_trace::{dump_text, Trace};
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use lvp_workloads::Workload;
use std::fmt;
use std::fmt::Write as _;

/// Error produced by a CLI command.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> CliError {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line options shared by the commands.
#[derive(Debug, Clone)]
pub struct Options {
    /// Codegen profile for compilation/assembly.
    pub profile: AsmProfile,
    /// Optimization level for mini-C compilation.
    pub opt: OptLevel,
    /// LVP configuration for `annotate`/`simulate`.
    pub config: LvpConfig,
    /// Machine model for `simulate`.
    pub machine: MachineSel,
    /// Row limit for `profile`.
    pub top: usize,
    /// Run the static verifier after `asm`.
    pub lint: bool,
    /// Join static load classes against the dynamic LCT in `check`.
    pub compare_lct: bool,
    /// Worker threads for `bench` (`None` = one per available CPU).
    pub threads: Option<usize>,
    /// Run `bench` on the fast 4-workload smoke subset.
    pub fast: bool,
    /// Run every registered experiment in `bench`.
    pub all: bool,
    /// Emit `bench` reports as CSV instead of fixed-width text.
    pub csv: bool,
}

/// Which timing model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSel {
    /// PowerPC 620 (out-of-order baseline).
    Ppc620,
    /// PowerPC 620+ (widened).
    Ppc620Plus,
    /// Alpha 21164 (in-order).
    Alpha21164,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            profile: AsmProfile::Toc,
            opt: OptLevel::O0,
            config: LvpConfig::simple(),
            machine: MachineSel::Ppc620,
            top: 10,
            lint: false,
            compare_lct: false,
            threads: None,
            fast: false,
            all: false,
            csv: false,
        }
    }
}

/// Parses `--flag value` pairs (and the valueless `--lint` /
/// `--compare-lct` switches) from `args`, returning the options and the
/// remaining positional arguments.
///
/// # Errors
///
/// Returns [`CliError`] for unknown flags or bad values.
pub fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), CliError> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let take_value = |i: &mut usize| -> Result<String, CliError> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| CliError::new(format!("{a} requires a value")))
        };
        match a.as_str() {
            "--profile" => {
                opts.profile = match take_value(&mut i)?.as_str() {
                    "toc" => AsmProfile::Toc,
                    "gp" => AsmProfile::Gp,
                    other => return Err(CliError::new(format!("unknown profile `{other}`"))),
                };
            }
            "--config" => {
                opts.config = match take_value(&mut i)?.as_str() {
                    "simple" => LvpConfig::simple(),
                    "constant" => LvpConfig::constant(),
                    "limit" => LvpConfig::limit(),
                    "perfect" => LvpConfig::perfect(),
                    other => return Err(CliError::new(format!("unknown config `{other}`"))),
                };
            }
            "--machine" => {
                opts.machine = match take_value(&mut i)?.as_str() {
                    "620" => MachineSel::Ppc620,
                    "620+" => MachineSel::Ppc620Plus,
                    "21164" => MachineSel::Alpha21164,
                    other => return Err(CliError::new(format!("unknown machine `{other}`"))),
                };
            }
            "--opt" => {
                opts.opt = match take_value(&mut i)?.as_str() {
                    "0" => OptLevel::O0,
                    "1" => OptLevel::O1,
                    other => return Err(CliError::new(format!("unknown opt level `{other}`"))),
                };
            }
            "--top" => {
                opts.top = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError::new("--top requires a number"))?;
            }
            "--threads" => {
                let n: usize = take_value(&mut i)?
                    .parse()
                    .map_err(|_| CliError::new("--threads requires a number"))?;
                if n == 0 {
                    return Err(CliError::new("--threads must be at least 1"));
                }
                opts.threads = Some(n);
            }
            "--lint" => opts.lint = true,
            "--compare-lct" => opts.compare_lct = true,
            "--fast" => opts.fast = true,
            "--all" => opts.all = true,
            "--csv" => opts.csv = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown flag `{flag}`")));
            }
            _ => positional.push(a.clone()),
        }
        i += 1;
    }
    Ok((opts, positional))
}

/// Resolves a program argument: a workload name, a `.mc` mini-C file, or
/// a `.s` assembly file.
///
/// # Errors
///
/// Returns [`CliError`] if the name is unknown, the file is unreadable,
/// or compilation/assembly fails.
pub fn load_program(target: &str, profile: AsmProfile) -> Result<Program, CliError> {
    load_program_with(target, profile, OptLevel::O0)
}

/// [`load_program`] with an explicit mini-C optimization level.
///
/// # Errors
///
/// Same conditions as [`load_program`].
pub fn load_program_with(
    target: &str,
    profile: AsmProfile,
    opt: OptLevel,
) -> Result<Program, CliError> {
    if let Some(w) = Workload::by_name(target) {
        return lvp_lang::compile_with(w.source, profile, opt)
            .map_err(|e| CliError::new(format!("workload `{target}`: {e}")));
    }
    if target.ends_with(".mc") {
        let src = std::fs::read_to_string(target)
            .map_err(|e| CliError::new(format!("cannot read {target}: {e}")))?;
        return lvp_lang::compile_with(&src, profile, opt)
            .map_err(|e| CliError::new(e.to_string()));
    }
    if target.ends_with(".s") {
        let src = std::fs::read_to_string(target)
            .map_err(|e| CliError::new(format!("cannot read {target}: {e}")))?;
        return Assembler::new(profile)
            .assemble(&src)
            .map_err(|e| CliError::new(e.to_string()));
    }
    Err(CliError::new(format!(
        "`{target}` is not a workload name (see `lvp suite`), a .mc file, or a .s file"
    )))
}

fn trace_program(program: &Program) -> Result<(Trace, Vec<u64>), CliError> {
    let mut machine = Machine::new(program);
    let trace = machine
        .run_traced(200_000_000)
        .map_err(|e| CliError::new(e.to_string()))?;
    Ok((trace, machine.output().to_vec()))
}

/// `lvp suite` — lists the workload registry.
pub fn cmd_suite() -> String {
    let mut out = String::from("name       fp  description\n");
    for w in lvp_workloads::suite() {
        let _ = writeln!(
            out,
            "{:10} {}  {} [{}]",
            w.name,
            if w.floating_point { "y" } else { "." },
            w.description,
            w.input
        );
    }
    out
}

/// `lvp run <target>` — compiles and runs, printing output and counts.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_run(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, output) = trace_program(&program)?;
    let s = trace.stats();
    let mut out = String::new();
    let _ = writeln!(out, "output: {output:?}");
    let _ = writeln!(
        out,
        "instructions {}  loads {}  stores {}  branches {}  jumps {}  fp {}",
        s.instructions, s.loads, s.stores, s.cond_branches, s.jumps, s.fp_ops
    );
    Ok(out)
}

/// `lvp asm <file.s>` — assembles and returns the disassembly listing.
/// With `--lint`, also runs the static verifier and fails on any
/// diagnostic.
///
/// # Errors
///
/// Propagates file and assembly errors; with `--lint`, any lint
/// diagnostic is an error whose message lists every finding.
pub fn cmd_asm(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let mut out = program.disassemble();
    let _ = writeln!(
        out,
        "\n{} instructions, {} data bytes, entry {:#x}, pool base {:#x}",
        program.text().len(),
        program.data().len(),
        program.entry(),
        program.pool_base()
    );
    if opts.lint {
        let diags = lvp_analyze::verify(&program);
        if diags.is_empty() {
            let _ = writeln!(out, "lint: clean (0 diagnostics)");
        } else {
            return Err(CliError::new(render_diagnostics(target, &diags)));
        }
    }
    Ok(out)
}

fn render_diagnostics(target: &str, diags: &[lvp_analyze::Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{target}: {d}");
    }
    let _ = write!(
        out,
        "{target}: {} diagnostic{} found",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    out
}

/// `lvp check <target>` — runs the static verifier over the program and
/// fails if any lint fires. With `--compare-lct`, also traces the
/// program, trains the LVP unit's Load Classification Table, and prints
/// the static-class vs LCT-outcome comparison table.
///
/// # Errors
///
/// Propagates program-resolution errors; any lint diagnostic becomes an
/// error whose message lists every finding (one per line). With
/// `--compare-lct`, simulation errors are also propagated.
pub fn cmd_check(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let diags = lvp_analyze::verify(&program);
    if !diags.is_empty() {
        return Err(CliError::new(render_diagnostics(target, &diags)));
    }
    let mut out = format!(
        "{target}: ok ({} instructions, 0 diagnostics)\n",
        program.text().len()
    );
    if opts.compare_lct {
        let (trace, _) = trace_program(&program)?;
        let mut unit = LvpUnit::new(opts.config.clone());
        let _ = unit.annotate(&trace);
        let static_loads = lvp_analyze::classify_loads(&program);
        let cmp = lvp_analyze::LctComparison::build(&static_loads, unit.lct(), &trace);
        let _ = write!(out, "\n{cmp}");
    }
    Ok(out)
}

/// `lvp locality <target>` — Figure 1-style locality report.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_locality(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut meter = LocalityMeter::paper_default();
    for e in trace.iter() {
        meter.observe(e);
    }
    Ok(format!(
        "{} dynamic loads\nvalue locality: {:.1}% at history depth 1, {:.1}% at depth 16\n",
        meter.loads(),
        100.0 * meter.locality(1),
        100.0 * meter.locality(16)
    ))
}

/// `lvp annotate <target>` — LVP unit statistics under `--config`.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_annotate(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut unit = LvpUnit::new(opts.config.clone());
    let _ = unit.annotate(&trace);
    let s = unit.stats();
    Ok(format!(
        "config: {}\nloads {}  predictions {} ({:.1}% of loads)\naccuracy {:.1}%  constants (CVU-verified) {:.1}% of loads\nLCT: {:.1}% of unpredictable and {:.1}% of predictable loads identified\n",
        opts.config,
        s.loads,
        s.predictions,
        100.0 * s.predictions as f64 / s.loads.max(1) as f64,
        100.0 * s.accuracy(),
        100.0 * s.constant_rate(),
        100.0 * s.unpredictable_hit_rate(),
        100.0 * s.predictable_hit_rate(),
    ))
}

/// `lvp profile <target>` — hottest static loads with per-PC locality.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_profile(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut profiler = LoadProfiler::new();
    for e in trace.iter() {
        profiler.observe(e);
    }
    let report = profiler.report();
    let mut out = format!(
        "{} static loads; top {} cover {:.1}% of dynamic loads\n\n",
        profiler.static_loads(),
        opts.top,
        100.0 * profiler.coverage_of_top(opts.top)
    );
    let _ = writeln!(
        out,
        "{:>10}  {:>9}  {:>8}  {:>8}  kind",
        "pc", "count", "local@1", "values"
    );
    for s in report.iter().take(opts.top) {
        let values = if s.distinct_values as usize >= LoadProfiler::DISTINCT_CAP {
            ">16".to_string()
        } else {
            s.distinct_values.to_string()
        };
        let _ = writeln!(
            out,
            "{:#10x}  {:>9}  {:>7.1}%  {:>8}  {}{}",
            s.pc,
            s.count,
            100.0 * s.locality(),
            values,
            if s.fp { "fp" } else { "int" },
            if s.is_constant() { " constant" } else { "" }
        );
    }
    Ok(out)
}

/// `lvp trace <target>` — dumps the first `--top` lines (default 10) of
/// the dynamic trace in the greppable text format.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_trace(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let text = dump_text(&trace);
    let mut out: String = text
        .lines()
        .take(opts.top + 1)
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    let _ = writeln!(
        out,
        "... {} entries total ({} loads, {} stores)",
        trace.len(),
        trace.stats().loads,
        trace.stats().stores
    );
    Ok(out)
}

/// `lvp simulate <target>` — cycle-accurate run under `--machine`, with
/// the no-LVP baseline and the selected `--config` side by side.
///
/// # Errors
///
/// Propagates program-resolution and simulation errors.
pub fn cmd_simulate(target: &str, opts: &Options) -> Result<String, CliError> {
    let program = load_program_with(target, opts.profile, opts.opt)?;
    let (trace, _) = trace_program(&program)?;
    let mut unit = LvpUnit::new(opts.config.clone());
    let outcomes = unit.annotate(&trace);
    let (name, base, lvp) = match opts.machine {
        MachineSel::Ppc620 => {
            let m = Ppc620Config::base();
            (
                m.name,
                simulate_620(&trace, None, &m),
                simulate_620(&trace, Some(&outcomes), &m),
            )
        }
        MachineSel::Ppc620Plus => {
            let m = Ppc620Config::plus();
            (
                m.name,
                simulate_620(&trace, None, &m),
                simulate_620(&trace, Some(&outcomes), &m),
            )
        }
        MachineSel::Alpha21164 => {
            let m = Alpha21164Config::base();
            (
                m.name,
                simulate_21164(&trace, None, &m),
                simulate_21164(&trace, Some(&outcomes), &m),
            )
        }
    };
    Ok(format!(
        "machine {name}, config {}\nbaseline: {base}\nwith LVP: {lvp}\nspeedup: {:.3}\n",
        opts.config,
        lvp.speedup_over(&base)
    ))
}

/// `lvp bench` with no arguments — lists the experiment registry.
fn bench_listing() -> String {
    let mut out = String::from(
        "usage: lvp bench <name>... [--all] [--fast] [--threads N] [--csv]\n\nexperiments:\n",
    );
    for def in lvp_harness::experiments() {
        let _ = writeln!(out, "  {:22} {}", def.name, def.title);
    }
    out
}

/// `lvp bench <names...>` — regenerates paper experiments through the
/// shared [`lvp_harness::Engine`]: one process, one set of caches, so
/// every (workload, profile, opt) trace is generated exactly once no
/// matter how many experiments consume it. `--fast` restricts the suite
/// to the 4-workload smoke subset, `--threads N` bounds the worker pool,
/// `--all` selects the whole registry, `--csv` swaps the renderer.
///
/// Each report is followed by a `[name: wall-time]` line and the run
/// ends with an engine cache-counter summary, so CI logs show where the
/// time went and that caching is effective.
///
/// # Errors
///
/// Returns [`CliError`] for unknown experiment names and propagates the
/// first harness failure (which names the workload and pipeline phase).
pub fn cmd_bench(names: &[String], opts: &Options) -> Result<String, CliError> {
    let selected: Vec<&lvp_harness::ExperimentDef> = if opts.all {
        lvp_harness::experiments().iter().collect()
    } else {
        if names.is_empty() {
            return Ok(bench_listing());
        }
        names
            .iter()
            .map(|n| {
                lvp_harness::experiment(n).ok_or_else(|| {
                    CliError::new(format!(
                        "unknown experiment `{n}` (run `lvp bench` for the list)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };

    let mut engine = if opts.fast {
        lvp_harness::Engine::fast()
    } else {
        lvp_harness::Engine::new()
    };
    if let Some(n) = opts.threads {
        engine = engine.with_threads(n);
    }

    let started = std::time::Instant::now();
    let mut out = String::new();
    for def in &selected {
        let t0 = std::time::Instant::now();
        let report = (def.run)(&engine).map_err(|e| CliError::new(e.to_string()))?;
        out.push_str(&if opts.csv {
            report.render_csv()
        } else {
            report.render_text()
        });
        let _ = writeln!(out, "[{}: {:.2}s]\n", def.name, t0.elapsed().as_secs_f64());
    }
    let s = engine.stats();
    let _ = writeln!(
        out,
        "engine: {} experiment{}, {} thread{}, {:.2}s total | traces {} computed / {} cached, \
         annotations {} computed / {} cached, timings {} computed / {} cached",
        selected.len(),
        if selected.len() == 1 { "" } else { "s" },
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" },
        started.elapsed().as_secs_f64(),
        s.traces_computed,
        s.trace_hits,
        s.annotations_computed,
        s.annotation_hits,
        s.timings_computed,
        s.timing_hits,
    );
    Ok(out)
}

/// Usage text.
pub fn usage() -> &'static str {
    "usage: lvp <command> [args]\n\n\
     commands:\n\
     \x20 suite                         list the 17 workloads\n\
     \x20 run      <prog|workload>      compile + run, print output\n\
     \x20 asm      <file.s|file.mc>     assemble + disassembly listing\n\
     \x20 locality <prog|workload>      value-locality report\n\
     \x20 annotate <prog|workload>      LVP unit statistics\n\
     \x20 profile  <prog|workload>      hottest static loads\n\
     \x20 simulate <prog|workload>      cycle-accurate timing\n\
     \x20 trace    <prog|workload>      dump the text trace\n\
     \x20 check    <prog|workload>      static verifier (lints LVP001-006)\n\
     \x20 bench    [names|--all]        regenerate paper tables/figures\n\n\
     options: --profile toc|gp  --config simple|constant|limit|perfect\n\
     \x20        --machine 620|620+|21164  --opt 0|1  --top N\n\
     \x20        --lint (verify after asm)  --compare-lct (with check)\n\
     \x20        --threads N  --fast  --all  --csv (with bench)\n"
}

/// Dispatches a full argument vector (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for any failure.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::new(usage()));
    };
    let rest = &args[1..];
    let (opts, positional) = parse_options(rest)?;
    let target = || -> Result<&String, CliError> {
        positional
            .first()
            .ok_or_else(|| CliError::new(format!("`{cmd}` requires a program argument")))
    };
    match cmd.as_str() {
        "suite" => Ok(cmd_suite()),
        "run" => cmd_run(target()?, &opts),
        "asm" => cmd_asm(target()?, &opts),
        "locality" => cmd_locality(target()?, &opts),
        "annotate" => cmd_annotate(target()?, &opts),
        "profile" => cmd_profile(target()?, &opts),
        "simulate" => cmd_simulate(target()?, &opts),
        "trace" => cmd_trace(target()?, &opts),
        "check" => cmd_check(target()?, &opts),
        "bench" => cmd_bench(&positional, &opts),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::new(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let (o, pos) = parse_options(&args(&[
            "xlisp",
            "--profile",
            "gp",
            "--config",
            "limit",
            "--machine",
            "21164",
            "--top",
            "5",
        ]))
        .unwrap();
        assert_eq!(o.profile, AsmProfile::Gp);
        assert_eq!(o.config.name, "Limit");
        assert_eq!(o.machine, MachineSel::Alpha21164);
        assert_eq!(o.top, 5);
        assert_eq!(pos, vec!["xlisp"]);
    }

    #[test]
    fn option_errors() {
        assert!(parse_options(&args(&["--profile"])).is_err());
        assert!(parse_options(&args(&["--profile", "mips"])).is_err());
        assert!(parse_options(&args(&["--bogus"])).is_err());
        assert!(parse_options(&args(&["--top", "abc"])).is_err());
    }

    #[test]
    fn suite_lists_everything() {
        let s = cmd_suite();
        for w in lvp_workloads::suite() {
            assert!(s.contains(w.name), "missing {}", w.name);
        }
    }

    #[test]
    fn run_on_workload() {
        let out = cmd_run("xlisp", &Options::default()).unwrap();
        assert!(
            out.contains("output: [4,"),
            "xlisp prints 4 solutions: {out}"
        );
        assert!(out.contains("instructions"));
    }

    #[test]
    fn locality_and_annotate_on_workload() {
        let opts = Options::default();
        let loc = cmd_locality("xlisp", &opts).unwrap();
        assert!(loc.contains("value locality"));
        let ann = cmd_annotate("xlisp", &opts).unwrap();
        assert!(ann.contains("accuracy"));
    }

    #[test]
    fn profile_reports_top_loads() {
        let out = cmd_profile(
            "xlisp",
            &Options {
                top: 3,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("static loads"));
        // summary + blank + header + 3 rows
        assert_eq!(out.lines().count(), 6, "unexpected layout: {out}");
    }

    #[test]
    fn simulate_all_machines() {
        for machine in [
            MachineSel::Ppc620,
            MachineSel::Ppc620Plus,
            MachineSel::Alpha21164,
        ] {
            let out = cmd_simulate(
                "xlisp",
                &Options {
                    machine,
                    ..Options::default()
                },
            )
            .unwrap();
            assert!(out.contains("speedup:"), "{out}");
        }
    }

    #[test]
    fn trace_dump_is_bounded() {
        let out = cmd_trace(
            "xlisp",
            &Options {
                top: 5,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("entries total"));
        assert!(out.lines().count() <= 8, "{out}");
    }

    #[test]
    fn check_reports_clean_workload() {
        let out = cmd_check("quick", &Options::default()).unwrap();
        assert!(out.contains("ok"), "{out}");
        assert!(out.contains("0 diagnostics"), "{out}");
    }

    #[test]
    fn check_flags_buggy_assembly() {
        let dir = std::env::temp_dir().join("lvp-cli-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buggy.s");
        std::fs::write(&path, "main:\n add a1, a0, a0\n out a1\n halt\n").unwrap();
        let err = cmd_check(path.to_str().unwrap(), &Options::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("LVP001"), "{msg}");
        assert!(msg.contains("1 diagnostic found"), "{msg}");

        // The same program fails `asm --lint` but passes plain `asm`.
        let opts = Options {
            lint: true,
            ..Options::default()
        };
        assert!(cmd_asm(path.to_str().unwrap(), &opts).is_err());
        assert!(cmd_asm(path.to_str().unwrap(), &Options::default()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_compare_lct_prints_table() {
        let opts = Options {
            compare_lct: true,
            ..Options::default()
        };
        let out = cmd_check("quick", &opts).unwrap();
        for class in ["constant", "stack-reload", "global", "computed"] {
            assert!(out.contains(class), "missing `{class}` row:\n{out}");
        }
    }

    #[test]
    fn asm_lint_clean_appends_summary() {
        let opts = Options {
            lint: true,
            ..Options::default()
        };
        let out = cmd_asm("quick", &opts).unwrap();
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn bool_flags_parse_without_values() {
        let (o, pos) = parse_options(&args(&["quick", "--lint", "--compare-lct"])).unwrap();
        assert!(o.lint && o.compare_lct);
        assert_eq!(pos, vec!["quick"]);
    }

    #[test]
    fn bench_flags_parse() {
        let (o, pos) =
            parse_options(&args(&["table3", "--threads", "2", "--fast", "--csv"])).unwrap();
        assert_eq!(o.threads, Some(2));
        assert!(o.fast && o.csv && !o.all);
        assert_eq!(pos, vec!["table3"]);
        assert!(parse_options(&args(&["--threads", "0"])).is_err());
        assert!(parse_options(&args(&["--threads", "two"])).is_err());
    }

    #[test]
    fn bench_without_names_lists_registry() {
        let out = cmd_bench(&[], &Options::default()).unwrap();
        for def in lvp_harness::experiments() {
            assert!(out.contains(def.name), "missing {} in:\n{out}", def.name);
        }
    }

    #[test]
    fn bench_rejects_unknown_experiment() {
        let err = cmd_bench(&args(&["table99"]), &Options::default()).unwrap_err();
        assert!(err.to_string().contains("table99"), "{err}");
    }

    #[test]
    fn bench_runs_static_experiments_with_timing_and_stats() {
        let opts = Options {
            fast: true,
            threads: Some(2),
            ..Options::default()
        };
        // table2/table5 are static (no simulation), so this stays fast.
        let out = cmd_bench(&args(&["table2", "table5"]), &opts).unwrap();
        assert!(out.contains("[table2:"), "{out}");
        assert!(out.contains("[table5:"), "{out}");
        assert!(out.contains("engine: 2 experiments, 2 threads"), "{out}");
        assert!(out.contains("traces 0 computed / 0 cached"), "{out}");

        let csv = cmd_bench(
            &args(&["table2"]),
            &Options {
                csv: true,
                ..opts.clone()
            },
        )
        .unwrap();
        assert!(csv.starts_with("# Table 2:"), "{csv}");
        assert!(csv.contains("config,LVPT entries"), "{csv}");
    }

    #[test]
    fn dispatch_errors_are_helpful() {
        assert!(dispatch(&args(&["frobnicate"]))
            .unwrap_err()
            .to_string()
            .contains("usage"));
        assert!(dispatch(&args(&["run"]))
            .unwrap_err()
            .to_string()
            .contains("requires"));
        assert!(dispatch(&args(&["run", "nonesuch"])).is_err());
        assert!(dispatch(&args(&["help"])).unwrap().contains("commands"));
    }
}
