//! # lvp-bench — the per-experiment binaries
//!
//! This crate hosts the standalone binaries that regenerate the paper's
//! evaluation (`table1`, `fig6`, `ablation_lvpt`, ...). Since the
//! experiment engine moved into [`lvp_harness`], each binary is a
//! one-line wrapper over [`lvp_harness::experiments::bin_main`], and
//! this library is a thin compatibility layer over the harness:
//!
//! * experiment definitions live in [`lvp_harness::experiments`],
//! * the parallel, trace-caching executor is [`lvp_harness::Engine`],
//! * rendering lives in [`lvp_harness::report`].
//!
//! Prefer `lvp bench <name>` (one process, shared caches, parallel) over
//! the standalone binaries when regenerating more than one experiment.
//!
//! The free functions here keep the original `lvp-bench` entry points
//! alive, now returning `Result` ([`HarnessError`] names the failing
//! workload and pipeline phase) instead of panicking.

pub use lvp_harness::report::{geo_mean, pct, pct1, speedup, TablePrinter};
pub use lvp_harness::{address_ranges, HarnessError, Phase};

use lvp_isa::AsmProfile;
use lvp_predictor::{LvpConfig, LvpStats, LvpUnit};
use lvp_trace::{PredOutcome, Trace};
use lvp_workloads::{Workload, WorkloadRun};

/// Generates the trace for one workload under a profile (phase 1).
///
/// # Errors
///
/// Returns [`HarnessError`] (phase [`Phase::Trace`]) naming the workload
/// if compilation, simulation, or the output self-check fails.
pub fn workload_trace(w: &Workload, profile: AsmProfile) -> Result<WorkloadRun, HarnessError> {
    lvp_harness::run_workload(w, profile, lvp_lang::OptLevel::O0)
}

/// Runs the LVP unit simulation (phase 2) over a trace, returning the
/// per-load annotations and the unit's statistics.
///
/// # Errors
///
/// Infallible today (the LVP unit cannot fail on a well-formed trace),
/// but returns `Result` so callers are insulated from future phases that
/// can — and to match [`workload_trace`].
pub fn annotate(
    trace: &Trace,
    config: &LvpConfig,
) -> Result<(Vec<PredOutcome>, LvpStats), HarnessError> {
    let mut unit = LvpUnit::new(config.clone());
    let outcomes = unit.annotate(trace);
    let stats = *unit.stats();
    Ok((outcomes, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_predictor::presets;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.856), "86%");
        assert_eq!(pct1(0.8567), "85.7%");
        assert_eq!(speedup(1.0567), "1.057");
    }

    #[test]
    fn workload_trace_reports_failures_with_phase_and_name() {
        // All real workloads succeed; the error path is covered by the
        // harness's own tests. Here we pin the success contract.
        let w = Workload::by_name("xlisp").unwrap();
        let run = workload_trace(&w, AsmProfile::Gp).unwrap();
        assert!(run.trace.stats().loads > 0);
    }

    #[test]
    fn annotate_produces_one_outcome_per_load() {
        let w = Workload::by_name("xlisp").unwrap();
        let run = workload_trace(&w, AsmProfile::Gp).unwrap();
        let (outcomes, stats) = annotate(&run.trace, &presets::simple()).unwrap();
        assert_eq!(outcomes.len() as u64, run.trace.stats().loads);
        assert_eq!(stats.loads, run.trace.stats().loads);
    }
}
