//! # lvp-bench — the experiment harness
//!
//! Shared plumbing for the per-table/per-figure binaries that regenerate
//! the paper's evaluation (see DESIGN.md section 4 for the index):
//!
//! | Binary    | Reproduces                                             |
//! |-----------|--------------------------------------------------------|
//! | `table1`  | benchmark descriptions & dynamic counts                |
//! | `fig1`    | load value locality @ depth 1 and 16, both profiles    |
//! | `fig2`    | PowerPC value locality by data type                    |
//! | `table2`  | LVP unit configurations                                |
//! | `table3`  | LCT hit rates                                          |
//! | `table4`  | constant identification rates                          |
//! | `table5`  | machine latencies                                      |
//! | `fig6`    | base machine speedups (620 + 21164)                    |
//! | `table6`  | 620+ speedups                                          |
//! | `fig7`    | load verification latency distribution                 |
//! | `fig8`    | operand-wait (dependency resolution) latencies         |
//! | `fig9`    | cycles with bank conflicts                             |
//! | `ablation_*` | beyond-paper sweeps (stride predictor, table sizes) |

use lvp_isa::{AsmProfile, Program};
use lvp_predictor::{AddressRanges, LvpConfig, LvpStats, LvpUnit};
use lvp_trace::{PredOutcome, Trace};
use lvp_workloads::{Workload, WorkloadRun};

/// Generates the trace for one workload under a profile, panicking with a
/// readable message on failure (harness binaries treat workload failures
/// as fatal).
pub fn workload_trace(w: &Workload, profile: AsmProfile) -> WorkloadRun {
    w.run(profile)
        .unwrap_or_else(|e| panic!("workload {} failed under {profile}: {e}", w.name))
}

/// Runs the LVP unit simulation (phase 2) over a trace, returning the
/// per-load annotations and the unit's statistics.
pub fn annotate(trace: &Trace, config: LvpConfig) -> (Vec<PredOutcome>, LvpStats) {
    let mut unit = LvpUnit::new(config);
    let outcomes = unit.annotate(trace);
    let stats = *unit.stats();
    (outcomes, stats)
}

/// Builds the Figure 2 value classifier from a program's layout.
pub fn address_ranges(program: &Program) -> AddressRanges {
    let l = program.layout();
    AddressRanges {
        text: l.text_base()..l.text_end(),
        data: l.data_base()..l.data_end(),
        stack: l.stack_top().saturating_sub(1 << 20)..l.stack_top() + 1,
    }
}

/// Geometric mean of a slice (the paper reports GM rows); 0 for empty
/// input.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Minimal fixed-width table printer for harness output.
#[derive(Debug, Default)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TablePrinter {
        TablePrinter {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align names.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cell, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with no decimals (paper style).
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct1(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a speedup with three decimals (paper's Table 6 style).
pub fn speedup(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TablePrinter::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.856), "86%");
        assert_eq!(pct1(0.8567), "85.7%");
        assert_eq!(speedup(1.0567), "1.057");
    }

    #[test]
    fn annotate_produces_one_outcome_per_load() {
        let w = Workload::by_name("xlisp").unwrap();
        let run = workload_trace(&w, AsmProfile::Gp);
        let (outcomes, stats) = annotate(&run.trace, LvpConfig::simple());
        assert_eq!(outcomes.len() as u64, run.trace.stats().loads);
        assert_eq!(stats.loads, run.trace.stats().loads);
    }
}
