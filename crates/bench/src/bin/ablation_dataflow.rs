//! Ablation — distance to the dataflow limit, and how LVP moves it.
//!
//! The dataflow limit (true dependencies + latencies only) is the bound a
//! conventional machine can never beat; value prediction is the rare
//! technique that can, because a correct prediction removes a true
//! dependence edge. For each benchmark we report the 620's fraction of
//! the dataflow-limit IPC, and the limit itself without LVP, with the
//! Simple unit, and with perfect prediction.

use lvp_bench::{annotate, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{dataflow_limit, simulate_620, LatencyTable, Ppc620Config};
use lvp_workloads::suite;

fn main() {
    println!("Ablation: dataflow limits and the effect of value prediction (620 latencies)\n");
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "620 IPC",
        "dataflow IPC",
        "620/limit",
        "limit+Simple",
        "limit+Perfect",
    ]);
    let lat = LatencyTable::ppc620();
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        let machine = simulate_620(&run.trace, None, &Ppc620Config::base());
        let base = dataflow_limit(&run.trace, None, &lat);
        let (o_simple, _) = annotate(&run.trace, LvpConfig::simple());
        let simple = dataflow_limit(&run.trace, Some(&o_simple), &lat);
        let (o_perfect, _) = annotate(&run.trace, LvpConfig::perfect());
        let perfect = dataflow_limit(&run.trace, Some(&o_perfect), &lat);
        t.row(vec![
            w.name.to_string(),
            format!("{:.2}", machine.ipc()),
            format!("{:.1}", base.ipc()),
            format!("{:.0}%", 100.0 * machine.ipc() / base.ipc()),
            format!("{:.1}", simple.ipc()),
            format!("{:.1}", perfect.ipc()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: real machines capture a small fraction of the dataflow\n\
         limit; LVP raises the limit itself — dramatically under perfect\n\
         prediction — because correct predictions delete true dependence\n\
         edges (the paper's core argument)."
    );
}
