//! Table 2 — the four LVP unit configurations.
//!
//! Thin wrapper: the experiment is defined in `lvp_harness::experiments`
//! and shares the engine's trace/annotation/timing caches when run via
//! `lvp bench`. This binary runs it standalone on the full suite.

fn main() {
    lvp_harness::experiments::bin_main("table2");
}
