//! Table 2 — the four LVP unit configurations.

use lvp_bench::TablePrinter;
use lvp_predictor::LvpConfig;

fn main() {
    println!("Table 2: LVP Unit Configurations\n");
    let mut t = TablePrinter::new(vec![
        "config",
        "LVPT entries",
        "history depth",
        "LCT entries",
        "LCT bits",
        "CVU entries",
    ]);
    for c in LvpConfig::table2() {
        if c.perfect {
            t.row(vec![
                c.name.to_string(),
                "inf".to_string(),
                "perfect".to_string(),
                "-".to_string(),
                "-".to_string(),
                "0".to_string(),
            ]);
        } else {
            let depth = if c.lvpt.perfect_selection {
                format!("{}/perf", c.lvpt.history_depth)
            } else {
                c.lvpt.history_depth.to_string()
            };
            t.row(vec![
                c.name.to_string(),
                c.lvpt.entries.to_string(),
                depth,
                c.lct.entries.to_string(),
                c.lct.counter_bits.to_string(),
                c.cvu.entries.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("History depth > 1 assumes the paper's hypothetical perfect selection mechanism.");
}
