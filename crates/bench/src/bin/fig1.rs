//! Figure 1 — load value locality per benchmark at history depths 1
//! (light bars in the paper) and 16 (dark bars), measured with the
//! paper's 1K-entry untagged direct-mapped history table, for both
//! "architectures" (Gp ≈ Alpha panel, Toc ≈ PowerPC panel).

use lvp_bench::{geo_mean, pct1, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LocalityMeter;
use lvp_workloads::suite;

fn main() {
    println!("Figure 1: Load Value Locality (history depth 1 / depth 16)\n");
    for (panel, profile) in [
        ("Alpha-style (Gp)", AsmProfile::Gp),
        ("PowerPC-style (Toc)", AsmProfile::Toc),
    ] {
        println!("== {panel} ==");
        let mut t = TablePrinter::new(vec!["benchmark", "depth 1", "depth 16"]);
        let (mut d1s, mut d16s) = (Vec::new(), Vec::new());
        for w in suite() {
            let run = workload_trace(&w, profile);
            let mut meter = LocalityMeter::paper_default();
            for e in run.trace.iter() {
                meter.observe(e);
            }
            let (d1, d16) = (meter.locality(1), meter.locality(16));
            d1s.push(d1);
            d16s.push(d16);
            t.row(vec![w.name.to_string(), pct1(d1), pct1(d16)]);
        }
        t.row(vec![
            "GM".to_string(),
            pct1(geo_mean(&d1s)),
            pct1(geo_mean(&d16s)),
        ]);
        println!("{}", t.render());
    }
    println!(
        "Paper shape: most integer benchmarks near 50% at depth 1 and 80%+ at\n\
         depth 16; cjpeg, swm256 and tomcatv show poor locality."
    );
}
