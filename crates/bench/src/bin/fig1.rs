//! Figure 1 — load value locality at history depths 1 and 16, both profiles.
//!
//! Thin wrapper: the experiment is defined in `lvp_harness::experiments`
//! and shares the engine's trace/annotation/timing caches when run via
//! `lvp bench`. This binary runs it standalone on the full suite.

fn main() {
    lvp_harness::experiments::bin_main("fig1");
}
