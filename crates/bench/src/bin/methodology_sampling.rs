//! Methodology validation — sampled vs. full-trace simulation.
//!
//! The paper simulates full runs; at 100M+ instructions most trace-driven
//! studies sample instead. This binary quantifies the error that sampling
//! would introduce on our suite: the 620 model runs over every benchmark's
//! full trace and over 10%-coverage periodic windows, and we compare IPC
//! and Simple-LVP speedup. Small errors justify the scaled-down inputs
//! used throughout this reproduction.

use lvp_bench::{annotate, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{simulate_620, Ppc620Config, SimResult};
use lvp_workloads::suite;

const WINDOW: usize = 50_000;
const STRIDE: usize = 500_000; // 10% coverage

fn main() {
    println!("Methodology: full-trace vs sampled (window {WINDOW}, stride {STRIDE}) on the 620\n");
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "IPC full",
        "IPC sampled",
        "err",
        "speedup full",
        "speedup sampled",
    ]);
    let machine = Ppc620Config::base();
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        let (outcomes, _) = annotate(&run.trace, LvpConfig::simple());
        let full_base = simulate_620(&run.trace, None, &machine);
        let full_lvp = simulate_620(&run.trace, Some(&outcomes), &machine);

        // Sampled: sum cycles/instructions over the windows.
        let mut base_acc = SimResult::default();
        let mut lvp_acc = SimResult::default();
        for window in run.trace.windows(WINDOW, STRIDE) {
            let b = simulate_620(&window.trace, None, &machine);
            let l = simulate_620(&window.trace, Some(window.outcomes(&outcomes)), &machine);
            base_acc.cycles += b.cycles;
            base_acc.instructions += b.instructions;
            lvp_acc.cycles += l.cycles;
            lvp_acc.instructions += l.instructions;
        }

        let err = (base_acc.ipc() - full_base.ipc()).abs() / full_base.ipc();
        t.row(vec![
            w.name.to_string(),
            format!("{:.3}", full_base.ipc()),
            format!("{:.3}", base_acc.ipc()),
            format!("{:.1}%", 100.0 * err),
            format!("{:.3}", full_lvp.speedup_over(&full_base)),
            format!("{:.3}", lvp_acc.speedup_over(&base_acc)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Sampled windows inherit warm predictor annotations but cold caches and\n\
         branch predictors, so sampled IPC is biased slightly low; speedup\n\
         ratios are more stable than absolute IPC, which is why the paper (and\n\
         this reproduction) reports speedups."
    );
}
