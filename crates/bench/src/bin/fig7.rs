//! Figure 7 — distribution of load verification latencies: the number of
//! cycles between dispatch and verification of correctly-predicted
//! loads, summed over all benchmarks, for each LVP configuration on the
//! 620 and 620+.

use lvp_bench::{annotate, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{simulate_620, Ppc620Config, VerifyLatencyHistogram};
use lvp_workloads::suite;

fn main() {
    println!("Figure 7: Load Verification Latency Distribution (% of correct predictions)\n");
    let configs = [
        LvpConfig::simple(),
        LvpConfig::constant(),
        LvpConfig::limit(),
        LvpConfig::perfect(),
    ];
    let machines = [Ppc620Config::base(), Ppc620Config::plus()];
    // totals[machine][config]
    let mut totals = vec![vec![VerifyLatencyHistogram::default(); configs.len()]; machines.len()];
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        for (ci, cfg) in configs.iter().enumerate() {
            let (outcomes, _) = annotate(&run.trace, *cfg);
            for (mi, machine) in machines.iter().enumerate() {
                let r = simulate_620(&run.trace, Some(&outcomes), machine);
                totals[mi][ci].merge(&r.verify_latency);
            }
        }
    }
    for (mi, machine) in machines.iter().enumerate() {
        println!("== PPC {} ==", machine.name);
        let mut t = TablePrinter::new(vec![
            "config",
            VerifyLatencyHistogram::LABELS[0],
            VerifyLatencyHistogram::LABELS[1],
            VerifyLatencyHistogram::LABELS[2],
            VerifyLatencyHistogram::LABELS[3],
            VerifyLatencyHistogram::LABELS[4],
            VerifyLatencyHistogram::LABELS[5],
        ]);
        for (ci, cfg) in configs.iter().enumerate() {
            let pcts = totals[mi][ci].percentages();
            let mut row = vec![cfg.name.to_string()];
            for p in pcts {
                row.push(format!("{p:.1}%"));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!(
        "Paper shape: the four configurations look virtually identical, and the\n\
         620+ distribution shifts right (time dilation from its higher\n\
         performance)."
    );
}
