//! Ablation (paper future work §7, third item) — "the microarchitectural
//! design space should be explored more extensively, since load value
//! prediction can dramatically alter the available program parallelism in
//! ways that may not match current levels of machine parallelism very
//! well." We sweep the 620's machine parallelism from half-size to
//! double-wide and measure how much the Simple and Perfect LVP
//! configurations buy at each point, aggregated over the suite.

use lvp_bench::{annotate, geo_mean, speedup, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{simulate_620, Ppc620Config};
use lvp_workloads::suite;

fn scaled(name: &'static str, factor: f64, n_lsu: usize, mem_per_cycle: usize) -> Ppc620Config {
    let base = Ppc620Config::base();
    let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
    Ppc620Config {
        name,
        rs_per_class: scale(base.rs_per_class),
        gpr_renames: scale(base.gpr_renames),
        fpr_renames: scale(base.fpr_renames),
        completion_buffer: scale(base.completion_buffer),
        n_lsu,
        mem_dispatch_per_cycle: mem_per_cycle,
        ..base
    }
}

fn main() {
    println!("Ablation: machine parallelism vs. LVP benefit (620 family, Toc traces)\n");
    let machines = [
        scaled("620/2", 0.5, 1, 1),
        scaled("620", 1.0, 1, 1),
        scaled("620+", 2.0, 2, 2),
        scaled("620x4", 4.0, 2, 2),
    ];
    let mut t = TablePrinter::new(vec![
        "machine",
        "GM base IPC",
        "GM Simple speedup",
        "GM Perfect speedup",
    ]);
    for m in &machines {
        let (mut ipcs, mut s_simple, mut s_perfect) = (Vec::new(), Vec::new(), Vec::new());
        for w in suite() {
            let run = workload_trace(&w, AsmProfile::Toc);
            let base = simulate_620(&run.trace, None, m);
            ipcs.push(base.ipc());
            let (o_simple, _) = annotate(&run.trace, LvpConfig::simple());
            let simple = simulate_620(&run.trace, Some(&o_simple), m);
            s_simple.push(simple.speedup_over(&base));
            let (o_perfect, _) = annotate(&run.trace, LvpConfig::perfect());
            let perfect = simulate_620(&run.trace, Some(&o_perfect), m);
            s_perfect.push(perfect.speedup_over(&base));
        }
        t.row(vec![
            m.name.to_string(),
            format!("{:.3}", geo_mean(&ipcs)),
            speedup(geo_mean(&s_simple)),
            speedup(geo_mean(&s_perfect)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: the narrow machine cannot exploit the parallelism LVP\n\
         exposes; the benefit grows with machine width and saturates once\n\
         the window exceeds what prediction uncovers — the mismatch the\n\
         paper's future-work section predicts."
    );
}
