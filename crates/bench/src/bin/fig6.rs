//! Figure 6 — base machine model speedups: the PowerPC 620 with the
//! Simple, Constant, Limit and Perfect LVP configurations, and the Alpha
//! 21164 with Simple, Limit and Perfect (the paper omits Constant on the
//! 21164).

use lvp_bench::{annotate, geo_mean, speedup, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use lvp_workloads::suite;

fn main() {
    println!("Figure 6: Base Machine Model Speedups\n");

    // ---- PowerPC 620 (Toc traces) ----
    println!("== PowerPC 620 (Toc profile traces) ==");
    let configs_620 = [
        LvpConfig::simple(),
        LvpConfig::constant(),
        LvpConfig::limit(),
        LvpConfig::perfect(),
    ];
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "base IPC",
        "Simple",
        "Constant",
        "Limit",
        "Perfect",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let machine = Ppc620Config::base();
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        let base = simulate_620(&run.trace, None, &machine);
        let mut row = vec![w.name.to_string(), format!("{:.3}", base.ipc())];
        for (i, cfg) in configs_620.iter().enumerate() {
            let (outcomes, _) = annotate(&run.trace, *cfg);
            let r = simulate_620(&run.trace, Some(&outcomes), &machine);
            let s = r.speedup_over(&base);
            gms[i].push(s);
            row.push(speedup(s));
        }
        t.row(row);
    }
    let mut gm = vec!["GM".to_string(), String::new()];
    for g in &gms {
        gm.push(speedup(geo_mean(g)));
    }
    t.row(gm);
    println!("{}", t.render());

    // ---- Alpha 21164 (Gp traces) ----
    println!("== Alpha AXP 21164 (Gp profile traces) ==");
    let configs_alpha = [
        LvpConfig::simple(),
        LvpConfig::limit(),
        LvpConfig::perfect(),
    ];
    let mut t = TablePrinter::new(vec!["benchmark", "base IPC", "Simple", "Limit", "Perfect"]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let machine = Alpha21164Config::base();
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Gp);
        let base = simulate_21164(&run.trace, None, &machine);
        let mut row = vec![w.name.to_string(), format!("{:.3}", base.ipc())];
        for (i, cfg) in configs_alpha.iter().enumerate() {
            let (outcomes, _) = annotate(&run.trace, *cfg);
            let r = simulate_21164(&run.trace, Some(&outcomes), &machine);
            let s = r.speedup_over(&base);
            gms[i].push(s);
            row.push(speedup(s));
        }
        t.row(row);
    }
    let mut gm = vec!["GM".to_string(), String::new()];
    for g in &gms {
        gm.push(speedup(geo_mean(g)));
    }
    t.row(gm);
    println!("{}", t.render());

    println!(
        "Paper shape: 620 GM 1.03 (Simple/Constant), 1.06 (Limit), 1.16-ish (Perfect);\n\
         21164 GM 1.06 (Simple), 1.09 (Limit), 1.16 (Perfect); the 21164 gains\n\
         roughly twice as much as the 620; grep and gawk stand out on both."
    );
}
