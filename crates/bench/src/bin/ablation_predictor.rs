//! Ablation — predictor backend zoo x table geometry.
//!
//! Thin wrapper: the experiment is defined in `lvp_harness::experiments`
//! and shares the engine's trace/annotation/timing caches when run via
//! `lvp bench`. The sweep itself is restricted to the fast workload
//! subset (5 backends x 5 geometries is a 25-config matrix).

fn main() {
    lvp_harness::experiments::bin_main("ablation_predictor");
}
