//! Ablation — LVPT size sweep: prediction accuracy and coverage of the
//! Simple configuration as the value table grows from 64 to 8192
//! entries (untagged aliasing shrinks with table size), aggregated over
//! the suite.

use lvp_bench::{annotate, pct1, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::{CvuConfig, LctConfig, LvpConfig, LvptConfig};
use lvp_workloads::suite;

fn sized(entries: usize) -> LvpConfig {
    LvpConfig {
        name: "sweep",
        lvpt: LvptConfig {
            entries,
            history_depth: 1,
            perfect_selection: false,
        },
        lct: LctConfig {
            entries: 256,
            counter_bits: 2,
        },
        cvu: CvuConfig { entries: 32 },
        perfect: false,
    }
}

fn main() {
    println!("Ablation: LVPT size sweep (LCT 256x2b, CVU 32 fixed)\n");
    let sizes = [64usize, 256, 1024, 4096, 8192];
    let mut t = TablePrinter::new(vec![
        "LVPT entries",
        "accuracy",
        "correct/loads",
        "constants/loads",
    ]);
    for &n in &sizes {
        let (mut correct, mut predictions, mut loads, mut constants) = (0u64, 0u64, 0u64, 0u64);
        for w in suite() {
            let run = workload_trace(&w, AsmProfile::Toc);
            let (_, stats) = annotate(&run.trace, sized(n));
            correct += stats.correct;
            predictions += stats.predictions;
            loads += stats.loads;
            constants += stats.constants_verified;
        }
        t.row(vec![
            n.to_string(),
            pct1(correct as f64 / predictions.max(1) as f64),
            pct1(correct as f64 / loads.max(1) as f64),
            pct1(constants as f64 / loads.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: accuracy and coverage rise with size and saturate near 1K-4K.");
}
