//! Table 4 — successful constant identification rates: the fraction of
//! all dynamic loads verified by the CVU without accessing the memory
//! hierarchy (equivalently, the L1 bandwidth reduction), for the Simple
//! and Limit configurations under both profiles.

use lvp_bench::{annotate, geo_mean, pct, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_workloads::suite;

fn main() {
    println!("Table 4: Successful Constant Identification Rates\n");
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "Gp/Simple",
        "Gp/Limit",
        "Toc/Simple",
        "Toc/Limit",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for w in suite() {
        let mut row = vec![w.name.to_string()];
        let mut col = 0;
        for profile in [AsmProfile::Gp, AsmProfile::Toc] {
            let run = workload_trace(&w, profile);
            for config in [LvpConfig::simple(), LvpConfig::limit()] {
                let (_, stats) = annotate(&run.trace, config);
                let r = stats.constant_rate();
                gms[col].push(r);
                row.push(pct(r));
                col += 1;
            }
        }
        t.row(row);
    }
    let mut gm = vec!["GM".to_string()];
    for g in &gms {
        gm.push(pct(geo_mean(g)));
    }
    t.row(gm);
    println!("{}", t.render());
    println!(
        "Paper shape: roughly 6-20% of dynamic loads identified as constants;\n\
         near 0% for quick and tomcatv, 30%+ for compress/gperf/sc."
    );
}
