//! Table 6 — PowerPC 620+ speedups: the widened machine relative to the
//! base 620 without LVP, and the additional speedup of each LVP
//! configuration relative to the baseline 620+.

use lvp_bench::{annotate, geo_mean, speedup, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{simulate_620, Ppc620Config};
use lvp_workloads::suite;

fn main() {
    println!("Table 6: PowerPC 620+ Speedups\n");
    let configs = [
        LvpConfig::simple(),
        LvpConfig::constant(),
        LvpConfig::limit(),
        LvpConfig::perfect(),
    ];
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "cycles(620+)",
        "620+/620",
        "Simple",
        "Constant",
        "Limit",
        "Perfect",
    ]);
    let base_machine = Ppc620Config::base();
    let plus_machine = Ppc620Config::plus();
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        let base_620 = simulate_620(&run.trace, None, &base_machine);
        let base_plus = simulate_620(&run.trace, None, &plus_machine);
        let uplift = base_plus.speedup_over(&base_620);
        gms[0].push(uplift);
        let mut row = vec![
            w.name.to_string(),
            base_plus.cycles.to_string(),
            speedup(uplift),
        ];
        for (i, cfg) in configs.iter().enumerate() {
            let (outcomes, _) = annotate(&run.trace, *cfg);
            let r = simulate_620(&run.trace, Some(&outcomes), &plus_machine);
            let s = r.speedup_over(&base_plus);
            gms[i + 1].push(s);
            row.push(speedup(s));
        }
        t.row(row);
    }
    let mut gm = vec!["GM".to_string(), String::new()];
    for g in &gms {
        gm.push(speedup(geo_mean(g)));
    }
    t.row(gm);
    println!("{}", t.render());
    println!(
        "Paper shape (GM): 620+ is ~1.06x the 620; LVP adds ~1.05 (Simple),\n\
         ~1.04 (Constant), ~1.08 (Limit), ~1.11 (Perfect) on top — the relative\n\
         LVP gains are larger on the wider machine than on the base 620."
    );
}
