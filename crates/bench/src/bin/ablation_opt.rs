//! Ablation (paper Section 2) — the effect of compiler optimization on
//! value locality. The paper notes that "loop unrolling, loop peeling,
//! tail replication, etc." change per-static-load locality by splitting
//! one static load into several. We compile each benchmark at O0 and O1
//! (constant folding + dead branches + small-loop unrolling) and compare
//! dynamic loads, static loads, and locality.

use lvp_bench::{pct1, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_lang::{compile_with, OptLevel};
use lvp_predictor::{LoadProfiler, LocalityMeter};
use lvp_sim::Machine;
use lvp_workloads::suite;

fn main() {
    println!("Ablation: compiler optimization vs. value locality (Toc profile)\n");
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "instr O0",
        "instr O1",
        "static loads O0",
        "static loads O1",
        "local@1 O0",
        "local@1 O1",
    ]);
    for w in suite() {
        let mut cells = vec![w.name.to_string()];
        let mut per_level: Vec<(u64, usize, f64)> = Vec::new();
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = compile_with(w.source, AsmProfile::Toc, opt)
                .unwrap_or_else(|e| panic!("{} failed at {opt:?}: {e}", w.name));
            let mut machine = Machine::new(&program);
            let trace = machine
                .run_traced(200_000_000)
                .unwrap_or_else(|e| panic!("{} run failed at {opt:?}: {e}", w.name));
            let mut meter = LocalityMeter::paper_default();
            let mut profiler = LoadProfiler::new();
            for e in trace.iter() {
                meter.observe(e);
                profiler.observe(e);
            }
            per_level.push((
                trace.stats().instructions,
                profiler.static_loads(),
                meter.locality(1),
            ));
        }
        let m = |v: u64| format!("{:.2}M", v as f64 / 1e6);
        cells.push(m(per_level[0].0));
        cells.push(m(per_level[1].0));
        cells.push(per_level[0].1.to_string());
        cells.push(per_level[1].1.to_string());
        cells.push(pct1(per_level[0].2));
        cells.push(pct1(per_level[1].2));
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "Expected: O1 trims dynamic instructions; where small loops unroll,\n\
         static load counts rise (one load becomes several copies) and their\n\
         per-copy locality shifts — the effect the paper attributes to\n\
         unrolling-style transformations."
    );
}
