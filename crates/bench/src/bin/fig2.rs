//! Figure 2 — PowerPC value locality by data type: FP data, integer
//! data, instruction addresses, and data addresses, at history depths 1
//! and 16. Values are classified by where they point: into text =
//! instruction address, into data/stack = data address.

use lvp_bench::{address_ranges, geo_mean, pct1, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::{LocalityMeter, ValueClass};
use lvp_workloads::suite;

fn main() {
    println!("Figure 2: PowerPC (Toc) Value Locality by Data Type (depth 1 / 16)\n");
    let mut per_class: Vec<(ValueClass, Vec<f64>, Vec<f64>)> = ValueClass::ALL
        .iter()
        .map(|&c| (c, Vec::new(), Vec::new()))
        .collect();

    let mut t = TablePrinter::new(vec![
        "benchmark",
        "fp d1",
        "fp d16",
        "int d1",
        "int d16",
        "iaddr d1",
        "iaddr d16",
        "daddr d1",
        "daddr d16",
    ]);
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        let ranges = address_ranges(&run.program);
        let mut meter = LocalityMeter::paper_default().with_ranges(ranges);
        for e in run.trace.iter() {
            meter.observe(e);
        }
        let mut row = vec![w.name.to_string()];
        for (class, d1s, d16s) in per_class.iter_mut() {
            let loads = meter.class_loads(*class);
            if loads == 0 {
                row.push("-".to_string());
                row.push("-".to_string());
                continue;
            }
            let d1 = meter.class_locality(*class, 1);
            let d16 = meter.class_locality(*class, 16);
            d1s.push(d1);
            d16s.push(d16);
            row.push(pct1(d1));
            row.push(pct1(d16));
        }
        t.row(row);
    }
    let mut gm_row = vec!["GM".to_string()];
    for (_, d1s, d16s) in &per_class {
        gm_row.push(pct1(geo_mean(d1s)));
        gm_row.push(pct1(geo_mean(d16s)));
    }
    t.row(gm_row);
    println!("{}", t.render());
    println!(
        "Paper shape: address loads (instruction > data) beat data loads;\n\
         integer data beats floating-point data."
    );
}
