//! Ablation — LCT counter width sweep (1 to 4 bits): classification
//! quality (Table 3's two hit rates) and the resulting prediction
//! accuracy, aggregated over the suite. The paper's design choice is the
//! 2-bit counter; this quantifies what 1 bit loses and 3+ bits buy.

use lvp_bench::{annotate, pct1, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::{CvuConfig, LctConfig, LvpConfig, LvptConfig};
use lvp_workloads::suite;

fn with_bits(bits: u8) -> LvpConfig {
    LvpConfig {
        name: "sweep",
        lvpt: LvptConfig {
            entries: 1024,
            history_depth: 1,
            perfect_selection: false,
        },
        lct: LctConfig {
            entries: 256,
            counter_bits: bits,
        },
        cvu: CvuConfig { entries: 32 },
        perfect: false,
    }
}

fn main() {
    println!("Ablation: LCT saturating-counter width sweep (LVPT 1024x1, CVU 32)\n");
    let mut t = TablePrinter::new(vec![
        "counter bits",
        "unpred identified",
        "pred identified",
        "accuracy",
        "mispredictions/1k loads",
    ]);
    for bits in 1..=4u8 {
        let (mut unpred_n, mut unpred_d) = (0u64, 0u64);
        let (mut pred_n, mut pred_d) = (0u64, 0u64);
        let (mut correct, mut predictions, mut incorrect, mut loads) = (0u64, 0u64, 0u64, 0u64);
        for w in suite() {
            let run = workload_trace(&w, AsmProfile::Toc);
            let (_, s) = annotate(&run.trace, with_bits(bits));
            unpred_n += s.unpredictable_identified;
            unpred_d += s.unpredictable();
            pred_n += s.predictable_identified;
            pred_d += s.predictable;
            correct += s.correct;
            predictions += s.predictions;
            incorrect += s.incorrect;
            loads += s.loads;
        }
        t.row(vec![
            bits.to_string(),
            pct1(unpred_n as f64 / unpred_d.max(1) as f64),
            pct1(pred_n as f64 / pred_d.max(1) as f64),
            pct1(correct as f64 / predictions.max(1) as f64),
            format!("{:.1}", 1000.0 * incorrect as f64 / loads.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Expected: wider counters suppress more mispredictions (higher accuracy)\n\
         but identify fewer predictable loads (slower to warm up)."
    );
}
