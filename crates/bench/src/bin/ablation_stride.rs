//! Ablation (paper future work) — history-based last-value prediction
//! vs. computed stride prediction, per benchmark: coverage, accuracy,
//! and overall hit rate of each predictor, plus a hybrid upper bound
//! (either predictor correct).

use lvp_bench::{geo_mean, pct1, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::{
    evaluate_predictor, BhrIndexedPredictor, FcmPredictor, LastValuePredictor, StridePredictor,
    ValuePredictor,
};
use lvp_trace::OpKind;
use lvp_workloads::suite;

fn main() {
    println!(
        "Ablation: value predictor families (1024-entry L1 tables, hit rate = correct/loads)\n"
    );
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "last-value",
        "stride",
        "fcm(2)",
        "bhr-indexed",
        "any-of-4",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for w in suite() {
        let run = workload_trace(&w, AsmProfile::Toc);
        let mut lv = LastValuePredictor::new(1024);
        let e_lv = evaluate_predictor(&mut lv, &run.trace);
        let mut st = StridePredictor::new(1024);
        let e_st = evaluate_predictor(&mut st, &run.trace);
        let mut fcm = FcmPredictor::new(1024, 16384);
        let e_fcm = evaluate_predictor(&mut fcm, &run.trace);

        // The BHR-indexed predictor needs branch outcomes interleaved, so
        // it is driven manually; the same pass computes the any-of-4
        // oracle bound.
        let mut bhr = BhrIndexedPredictor::new(4096, 4);
        let mut lv2 = LastValuePredictor::new(1024);
        let mut st2 = StridePredictor::new(1024);
        let mut fcm2 = FcmPredictor::new(1024, 16384);
        let (mut bhr_correct, mut any_correct, mut loads) = (0u64, 0u64, 0u64);
        for e in run.trace.iter() {
            if e.kind == OpKind::CondBranch {
                let taken = e.branch.expect("branch outcome").taken;
                bhr.on_branch(taken);
                continue;
            }
            if !e.is_load() {
                continue;
            }
            let Some(mem) = e.mem else { continue };
            loads += 1;
            let b = bhr.predict(e.pc) == Some(mem.value);
            let others = lv2.predict(e.pc) == Some(mem.value)
                || st2.predict(e.pc) == Some(mem.value)
                || fcm2.predict(e.pc) == Some(mem.value);
            bhr_correct += b as u64;
            any_correct += (b || others) as u64;
            bhr.train(e.pc, mem.value);
            lv2.train(e.pc, mem.value);
            st2.train(e.pc, mem.value);
            fcm2.train(e.pc, mem.value);
        }
        let hits = [
            e_lv.hit_rate(),
            e_st.hit_rate(),
            e_fcm.hit_rate(),
            bhr_correct as f64 / loads.max(1) as f64,
            any_correct as f64 / loads.max(1) as f64,
        ];
        let mut row = vec![w.name.to_string()];
        for (i, h) in hits.iter().enumerate() {
            gms[i].push(*h);
            row.push(pct1(*h));
        }
        t.row(row);
    }
    let mut gm = vec!["GM".to_string()];
    for g in &gms {
        gm.push(pct1(geo_mean(g)));
    }
    t.row(gm);
    println!("{}", t.render());
    println!(
        "Expected: stride wins on induction loads, FCM on periodic sequences,\n\
         BHR-indexing on control-dependent values; the any-of-4 oracle bound\n\
         shows the headroom the paper's future-work section anticipates."
    );
}
