//! Figure 8 — average data-dependency resolution latency: the time
//! instructions spend in reservation stations waiting for their true
//! dependencies, by functional-unit type, normalized to the no-LVP
//! baseline, averaged over all benchmarks, on the 620 and 620+.

use lvp_bench::{annotate, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_trace::OpKind;
use lvp_uarch::{simulate_620, OperandWaitStats, Ppc620Config};
use lvp_workloads::suite;

/// The 620's functional units as the paper groups them in Figure 8.
const FU_GROUPS: [(&str, &[OpKind]); 5] = [
    (
        "BRU",
        &[OpKind::CondBranch, OpKind::Jump, OpKind::IndirectJump],
    ),
    ("MCFX", &[OpKind::IntComplex]),
    ("FPU", &[OpKind::FpSimple, OpKind::FpComplex]),
    ("SCFX", &[OpKind::IntSimple, OpKind::System]),
    ("LSU", &[OpKind::Load, OpKind::Store]),
];

fn main() {
    println!("Figure 8: Average Dependency Resolution Latencies (normalized to no-LVP)\n");
    let configs = [
        LvpConfig::simple(),
        LvpConfig::constant(),
        LvpConfig::limit(),
        LvpConfig::perfect(),
    ];
    for machine in [Ppc620Config::base(), Ppc620Config::plus()] {
        println!("== PPC {} ==", machine.name);
        // Aggregate operand-wait stats across the whole suite.
        let mut base_waits = OperandWaitStats::default();
        let mut cfg_waits: Vec<OperandWaitStats> = configs
            .iter()
            .map(|_| OperandWaitStats::default())
            .collect();
        for w in suite() {
            let run = workload_trace(&w, AsmProfile::Toc);
            let base = simulate_620(&run.trace, None, &machine);
            base_waits.merge(&base.operand_wait);
            for (i, cfg) in configs.iter().enumerate() {
                let (outcomes, _) = annotate(&run.trace, *cfg);
                let r = simulate_620(&run.trace, Some(&outcomes), &machine);
                cfg_waits[i].merge(&r.operand_wait);
            }
        }
        let mut t = TablePrinter::new(vec![
            "FU type",
            "base (cyc)",
            "Simple",
            "Constant",
            "Limit",
            "Perfect",
        ]);
        for (name, kinds) in FU_GROUPS {
            let base_avg = base_waits.average_of(kinds);
            let mut row = vec![name.to_string(), format!("{base_avg:.2}")];
            for waits in &cfg_waits {
                let avg = waits.average_of(kinds);
                let norm = if base_avg > 0.0 {
                    100.0 * avg / base_avg
                } else {
                    100.0
                };
                row.push(format!("{norm:.0}%"));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!(
        "Paper shape: BRU and MCFX barely change (their operands are not\n\
         predicted); FPU, SCFX and especially LSU waits drop sharply — LSU by\n\
         about half even with the Simple configuration."
    );
}
