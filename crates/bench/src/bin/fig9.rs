//! Figure 9 — the percentage of cycles with a data-cache bank conflict,
//! per benchmark, on the 620 and 620+ without LVP and with the Simple
//! and Constant configurations (the CVU removes constant loads from the
//! banks entirely).

use lvp_bench::{annotate, pct1, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_uarch::{simulate_620, Ppc620Config};
use lvp_workloads::suite;

fn main() {
    println!("Figure 9: Percentage of Cycles with Bank Conflicts\n");
    for machine in [Ppc620Config::base(), Ppc620Config::plus()] {
        println!("== PPC {} ==", machine.name);
        let mut t = TablePrinter::new(vec!["benchmark", "base", "Simple", "Constant"]);
        let (mut sb, mut ss, mut sc) = (0.0f64, 0.0f64, 0.0f64);
        let mut n = 0usize;
        for w in suite() {
            let run = workload_trace(&w, AsmProfile::Toc);
            let base = simulate_620(&run.trace, None, &machine);
            let (o1, _) = annotate(&run.trace, LvpConfig::simple());
            let simple = simulate_620(&run.trace, Some(&o1), &machine);
            let (o2, _) = annotate(&run.trace, LvpConfig::constant());
            let constant = simulate_620(&run.trace, Some(&o2), &machine);
            sb += base.bank_conflict_rate();
            ss += simple.bank_conflict_rate();
            sc += constant.bank_conflict_rate();
            n += 1;
            t.row(vec![
                w.name.to_string(),
                pct1(base.bank_conflict_rate()),
                pct1(simple.bank_conflict_rate()),
                pct1(constant.bank_conflict_rate()),
            ]);
        }
        t.row(vec![
            "Mean".to_string(),
            pct1(sb / n as f64),
            pct1(ss / n as f64),
            pct1(sc / n as f64),
        ]);
        println!("{}", t.render());
    }
    println!(
        "Paper shape: conflicts in ~2.6% of 620 cycles and ~6.9% of 620+ cycles\n\
         (the extra LSU shares the same two banks); Simple cuts them ~5-9% and\n\
         Constant ~14%, with occasional small relative increases from time\n\
         dilation."
    );
}
