//! Table 1 — benchmark descriptions and dynamic instruction/load counts,
//! for both codegen profiles (the paper's PowerPC and Alpha columns).

use lvp_bench::{workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_workloads::suite;

fn main() {
    println!("Table 1: Benchmark Descriptions (counts in millions)\n");
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "description",
        "input",
        "instr(Toc)",
        "loads(Toc)",
        "instr(Gp)",
        "loads(Gp)",
    ]);
    let m = |v: u64| format!("{:.2}M", v as f64 / 1e6);
    let (mut ti, mut tl, mut gi, mut gl) = (0u64, 0u64, 0u64, 0u64);
    for w in suite() {
        let toc = workload_trace(&w, AsmProfile::Toc);
        let gp = workload_trace(&w, AsmProfile::Gp);
        let (st, sg) = (toc.trace.stats(), gp.trace.stats());
        ti += st.instructions;
        tl += st.loads;
        gi += sg.instructions;
        gl += sg.loads;
        t.row(vec![
            w.name.to_string(),
            w.description.to_string(),
            w.input.to_string(),
            m(st.instructions),
            m(st.loads),
            m(sg.instructions),
            m(sg.loads),
        ]);
    }
    t.row(vec![
        "Total".to_string(),
        String::new(),
        String::new(),
        m(ti),
        m(tl),
        m(gi),
        m(gl),
    ]);
    println!("{}", t.render());
    println!(
        "Note: Toc = PowerPC-style codegen (TOC address loads), Gp = Alpha-style\n\
         (ALU address synthesis); the Toc load count is higher for the same program,\n\
         as on the paper's PowerPC vs Alpha binaries."
    );
}
