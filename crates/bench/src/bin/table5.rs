//! Table 5 — instruction latencies of the two machine models.

use lvp_bench::TablePrinter;
use lvp_uarch::LatencyTable;

fn main() {
    println!("Table 5: Instruction Latencies (result latency, cycles)\n");
    let p = LatencyTable::ppc620();
    let a = LatencyTable::alpha21164();
    let mut t = TablePrinter::new(vec!["instruction class", "PPC 620", "AXP 21164"]);
    t.row(vec![
        "Simple Integer".to_string(),
        p.int_simple.to_string(),
        a.int_simple.to_string(),
    ]);
    t.row(vec![
        "Complex Integer".to_string(),
        p.int_complex.to_string(),
        a.int_complex.to_string(),
    ]);
    t.row(vec![
        "Load/Store".to_string(),
        p.load.to_string(),
        a.load.to_string(),
    ]);
    t.row(vec![
        "Simple FP".to_string(),
        p.fp_simple.to_string(),
        a.fp_simple.to_string(),
    ]);
    t.row(vec![
        "Complex FP".to_string(),
        p.fp_complex.to_string(),
        a.fp_complex.to_string(),
    ]);
    t.row(vec![
        "Branch mispredict".to_string(),
        p.mispredict_penalty.to_string(),
        a.mispredict_penalty.to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "Complex integer and complex FP use the midpoint of the paper's ranges\n\
         (620: 1-35 and 18; 21164: 16 and 36-65)."
    );
}
