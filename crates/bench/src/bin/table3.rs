//! Table 3 — LCT hit rates: the fraction of (ground-truth) unpredictable
//! loads the LCT classifies as don't-predict, and of predictable loads it
//! classifies as predictable/constant, for the Simple and Limit
//! configurations under both profiles.

use lvp_bench::{annotate, geo_mean, pct, workload_trace, TablePrinter};
use lvp_isa::AsmProfile;
use lvp_predictor::LvpConfig;
use lvp_workloads::suite;

fn main() {
    println!("Table 3: LCT Hit Rates\n");
    let mut t = TablePrinter::new(vec![
        "benchmark",
        "Gp/Simple unpred",
        "Gp/Simple pred",
        "Gp/Limit unpred",
        "Gp/Limit pred",
        "Toc/Simple unpred",
        "Toc/Simple pred",
        "Toc/Limit unpred",
        "Toc/Limit pred",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for w in suite() {
        let mut row = vec![w.name.to_string()];
        let mut col = 0;
        for profile in [AsmProfile::Gp, AsmProfile::Toc] {
            let run = workload_trace(&w, profile);
            for config in [LvpConfig::simple(), LvpConfig::limit()] {
                let (_, stats) = annotate(&run.trace, config);
                let u = stats.unpredictable_hit_rate();
                let p = stats.predictable_hit_rate();
                gms[col].push(u);
                gms[col + 1].push(p);
                row.push(pct(u));
                row.push(pct(p));
                col += 2;
            }
        }
        t.row(row);
    }
    let mut gm = vec!["GM".to_string()];
    for g in &gms {
        gm.push(pct(geo_mean(g)));
    }
    t.row(gm);
    println!("{}", t.render());
    println!(
        "Paper shape (GM row): ~85-90% of unpredictable and ~75-90% of predictable\n\
         loads correctly classified."
    );
}
