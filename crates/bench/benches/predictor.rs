//! Criterion microbenchmarks for the LVP unit structures: raw
//! predictions/updates per second of the LVPT, LCT, CVU, and the
//! composed unit, on a synthetic load stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lvp_predictor::{
    presets, Cvu, CvuConfig, Lct, LctConfig, LvpUnit, Lvpt, LvptConfig, StridePredictor,
    ValuePredictor,
};
use std::hint::black_box;

/// A deterministic synthetic load stream: 256 static loads, 80% of which
/// repeat their value (roughly the suite's measured locality).
fn stream(n: usize) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::with_capacity(n);
    let mut state = 0x1234_5678_9abc_def0u64;
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pc = 0x10000 + 4 * ((state >> 16) % 256);
        let addr = 0x10_0000 + 8 * ((state >> 24) % 4096);
        let value = if state % 10 < 8 { pc * 3 } else { state >> 32 };
        out.push((pc, addr, value));
    }
    out
}

fn bench_lvpt(c: &mut Criterion) {
    let s = stream(10_000);
    let mut g = c.benchmark_group("lvpt");
    g.throughput(Throughput::Elements(s.len() as u64));
    g.bench_function("predict+update depth1", |b| {
        b.iter(|| {
            let mut t = Lvpt::new(LvptConfig {
                entries: 1024,
                history_depth: 1,
                perfect_selection: false,
            });
            for &(pc, _, v) in &s {
                black_box(t.predict(pc));
                t.update(pc, v);
            }
        })
    });
    g.bench_function("predict+update depth16", |b| {
        b.iter(|| {
            let mut t = Lvpt::new(LvptConfig {
                entries: 4096,
                history_depth: 16,
                perfect_selection: true,
            });
            for &(pc, _, v) in &s {
                black_box(t.would_predict_correctly(pc, v));
                t.update(pc, v);
            }
        })
    });
    g.finish();
}

fn bench_lct(c: &mut Criterion) {
    let s = stream(10_000);
    c.bench_function("lct classify+update", |b| {
        b.iter(|| {
            let mut t = Lct::new(LctConfig {
                entries: 256,
                counter_bits: 2,
            });
            for &(pc, _, v) in &s {
                let cls = t.classify(pc);
                t.update(pc, v % 2 == 0);
                black_box(cls);
            }
        })
    });
}

fn bench_cvu(c: &mut Criterion) {
    let s = stream(10_000);
    c.bench_function("cvu lookup+insert+invalidate", |b| {
        b.iter(|| {
            let mut cvu = Cvu::new(CvuConfig { entries: 32 });
            for &(pc, addr, v) in &s {
                if !cvu.lookup(pc as usize & 1023, addr) {
                    cvu.insert(pc as usize & 1023, addr, 8);
                }
                if v % 16 == 0 {
                    cvu.invalidate_store(addr, 8);
                }
            }
        })
    });
}

fn bench_unit(c: &mut Criterion) {
    let s = stream(10_000);
    let mut g = c.benchmark_group("lvp-unit");
    g.throughput(Throughput::Elements(s.len() as u64));
    for cfg in [presets::simple(), presets::limit()] {
        g.bench_function(cfg.name, |b| {
            b.iter(|| {
                let mut unit = LvpUnit::new(cfg);
                for &(pc, addr, v) in &s {
                    black_box(unit.on_load(pc, addr, 8, v));
                }
            })
        });
    }
    g.finish();
}

fn bench_stride(c: &mut Criterion) {
    let s = stream(10_000);
    c.bench_function("stride predictor", |b| {
        b.iter(|| {
            let mut p = StridePredictor::new(1024);
            for &(pc, _, v) in &s {
                black_box(p.predict(pc));
                p.train(pc, v);
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lvpt, bench_lct, bench_cvu, bench_unit, bench_stride
}
criterion_main!(benches);
