//! Criterion benchmarks for the full three-phase pipeline on a real
//! workload (xlisp, the smallest suite member): trace generation, LVP
//! annotation, and both timing models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lvp_isa::AsmProfile;
use lvp_predictor::presets;
use lvp_predictor::{LvpConfig, LvpUnit};
use lvp_sim::Machine;
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use lvp_workloads::Workload;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let w = Workload::by_name("xlisp").expect("xlisp registered");
    let program = w.compile(AsmProfile::Toc).expect("compile");
    let run = w.run(AsmProfile::Toc).expect("run");
    let n = run.trace.stats().instructions;

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));

    g.bench_function("phase1 trace generation", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program);
            black_box(m.run_traced(u64::MAX).expect("run"))
        })
    });

    g.bench_function("phase2 lvp annotation (Simple)", |b| {
        b.iter(|| {
            let mut unit = LvpUnit::new(presets::simple());
            black_box(unit.annotate(&run.trace))
        })
    });

    let mut unit = LvpUnit::new(presets::simple());
    let outcomes = unit.annotate(&run.trace);

    g.bench_function("phase3 620 baseline", |b| {
        b.iter(|| black_box(simulate_620(&run.trace, None, &Ppc620Config::base())))
    });
    g.bench_function("phase3 620 with LVP", |b| {
        b.iter(|| {
            black_box(simulate_620(
                &run.trace,
                Some(&outcomes),
                &Ppc620Config::base(),
            ))
        })
    });
    g.bench_function("phase3 21164 baseline", |b| {
        b.iter(|| black_box(simulate_21164(&run.trace, None, &Alpha21164Config::base())))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_pipeline
}
criterion_main!(benches);
