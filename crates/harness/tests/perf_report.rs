//! Corruption matrix for the `lvp-perf/1` baseline format, mirroring
//! the LVPT-v2 trace-file one: every mutilated document must come back
//! as a typed [`PerfError`], never a panic, and a pristine document
//! must survive a parse/emit round trip.

use lvp_harness::{check, BenchResult, PerfConfig, PerfError, PerfReport};

fn sample_report() -> PerfReport {
    PerfReport {
        config: PerfConfig {
            iters: 5,
            warmup: 1,
        },
        results: vec![
            BenchResult {
                name: "unit_dispatch_1m".to_string(),
                median_ns: 120_000,
                p10_ns: 110_000,
                p90_ns: 140_000,
                samples_ns: vec![120_000, 110_000, 140_000, 121_000, 119_000],
            },
            BenchResult {
                name: "trace_codec_256k".to_string(),
                median_ns: 64_000,
                p10_ns: 60_000,
                p90_ns: 70_000,
                samples_ns: vec![64_000, 60_000, 70_000, 65_000, 63_000],
            },
        ],
    }
}

#[test]
fn pristine_document_round_trips() {
    let report = sample_report();
    let parsed = PerfReport::from_json(&report.to_json()).expect("round trip");
    assert_eq!(parsed, report);
}

/// Every proper prefix of the document is a typed parse error (except
/// trimming trailing whitespace, which leaves it well-formed).
#[test]
fn all_truncations_are_typed_errors() {
    let text = sample_report().to_json();
    for len in 0..text.trim_end().len() {
        if !text.is_char_boundary(len) {
            continue;
        }
        let truncated = &text[..len];
        match PerfReport::from_json(truncated) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} bytes parsed successfully"),
        }
    }
}

/// Flipping any single character to a hostile byte either still parses
/// (benign positions like digits or key names that stay well-formed
/// are fine) or fails with a typed error — never a panic.
#[test]
fn single_character_flips_never_panic() {
    let text = sample_report().to_json();
    for (i, _) in text.char_indices() {
        for replacement in ['\u{0}', '{', '"', 'x', '9'] {
            let mut mutated = String::with_capacity(text.len());
            mutated.push_str(&text[..i]);
            mutated.push(replacement);
            let rest = &text[i..];
            let mut chars = rest.chars();
            chars.next();
            mutated.push_str(chars.as_str());
            // Must return, not panic; the result itself may be Ok or Err.
            let _ = PerfReport::from_json(&mutated);
        }
    }
}

#[test]
fn removed_fields_are_missing_field_errors() {
    let text = sample_report().to_json();
    for field in [
        "format",
        "iters",
        "warmup",
        "benches",
        "name",
        "median_ns",
        "samples_ns",
    ] {
        let needle = format!("\"{field}\"");
        let start = text.find(&needle).expect("field present");
        // Remove the whole `"key": value,\n` line (every field in the
        // emitted document is on its own line).
        let line_start = text[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let line_end = text[start..].find('\n').map(|p| start + p + 1).unwrap();
        let mutated = format!("{}{}", &text[..line_start], &text[line_end..]);
        match PerfReport::from_json(&mutated) {
            Err(PerfError::MissingField(_)) | Err(PerfError::Parse { .. }) => {}
            other => panic!("removing {field} produced {other:?}"),
        }
    }
}

#[test]
fn wrong_types_are_typed_errors() {
    let text = sample_report().to_json();
    let cases = [
        ("\"iters\": 5", "\"iters\": \"five\""),
        ("\"warmup\": 1", "\"warmup\": true"),
        ("\"median_ns\": 120000", "\"median_ns\": null"),
        (
            "\"samples_ns\": [120000, 110000, 140000, 121000, 119000]",
            "\"samples_ns\": 3",
        ),
        ("\"name\": \"unit_dispatch_1m\"", "\"name\": 7"),
    ];
    for (from, to) in cases {
        assert!(text.contains(from), "fixture drifted: {from}");
        let mutated = text.replacen(from, to, 1);
        match PerfReport::from_json(&mutated) {
            Err(PerfError::MissingField(_)) => {}
            other => panic!("mistyping {from:?} produced {other:?}"),
        }
    }
}

#[test]
fn non_integer_numbers_are_rejected() {
    let text = sample_report().to_json().replacen("120000", "120000.5", 1);
    assert!(matches!(
        PerfReport::from_json(&text),
        Err(PerfError::Parse { .. })
    ));
    let text = sample_report().to_json().replacen("120000", "-120000", 1);
    assert!(PerfReport::from_json(&text).is_err());
}

#[test]
fn wrong_format_tag_is_rejected() {
    let text = sample_report()
        .to_json()
        .replace("lvp-perf/1", "lvp-perf/2");
    match PerfReport::from_json(&text) {
        Err(PerfError::BadFormat(tag)) => assert_eq!(tag, "lvp-perf/2"),
        other => panic!("wrong tag produced {other:?}"),
    }
    // A completely different document with valid JSON is BadFormat or
    // MissingField, not a panic.
    assert!(PerfReport::from_json("{\"hello\": 1}").is_err());
    assert!(PerfReport::from_json("[1, 2, 3]").is_err());
    assert!(PerfReport::from_json("").is_err());
}

#[test]
fn zero_iters_in_baseline_is_rejected() {
    let text = sample_report()
        .to_json()
        .replacen("\"iters\": 5", "\"iters\": 0", 1);
    assert!(PerfReport::from_json(&text).is_err());
}

/// A synthetic slowdown must trip the regression gate: against a
/// baseline with artificially tiny medians, every bench regresses.
#[test]
fn synthetic_slowdown_fails_the_check() {
    let current = sample_report();
    let mut tiny = current.clone();
    for r in &mut tiny.results {
        r.median_ns = 1;
    }
    let regressions = check(&current, &tiny, 40);
    assert_eq!(regressions.len(), current.results.len());
    for r in &regressions {
        assert_eq!(r.baseline_ns, 1);
        assert!(r.slowdown_pct > 40);
    }
    // And the same reports compared against themselves pass.
    assert!(check(&current, &current, 0).is_empty());
}
