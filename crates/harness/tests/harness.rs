//! Integration tests for the experiment engine: determinism across
//! worker counts, exactly-once caching across experiments, and golden
//! comparison of fast-subset rows against the committed full-suite
//! `results/*.txt` files.

use lvp_harness::{experiment, Engine, FAST_WORKLOADS};

fn run_named(engine: &Engine, name: &str) -> String {
    let def = experiment(name).unwrap_or_else(|| panic!("unknown experiment {name}"));
    (def.run)(engine)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
        .render_text()
}

/// Acceptance: output is byte-identical at any worker count. The engine
/// merges results in plan order, so a serial run and a heavily
/// oversubscribed run must render the same bytes.
#[test]
fn parallel_output_is_byte_identical_to_serial() {
    for name in ["fig1", "table3"] {
        let serial = run_named(&Engine::fast().with_threads(1), name);
        let parallel = run_named(&Engine::fast().with_threads(8), name);
        assert_eq!(serial, parallel, "{name} differs between 1 and 8 threads");
        assert!(!serial.is_empty());
    }
}

/// Acceptance: two experiments in one process generate each (workload,
/// profile) trace exactly once. table3 and table4 plan the identical
/// (profile × config) matrix, so table4 must be served entirely from
/// the caches table3 populated.
#[test]
fn traces_and_annotations_are_computed_exactly_once() {
    let engine = Engine::new()
        .with_workload_names(&["sc"])
        .unwrap()
        .with_threads(4);

    run_named(&engine, "table3");
    let after_t3 = engine.stats();
    // One workload under two profiles: exactly two phase-1 runs; two
    // configs per profile: exactly four annotation passes.
    assert_eq!(after_t3.traces_computed, 2, "{after_t3:?}");
    assert_eq!(after_t3.annotations_computed, 4, "{after_t3:?}");

    run_named(&engine, "table4");
    let after_t4 = engine.stats();
    assert_eq!(
        after_t4.traces_computed, 2,
        "table4 re-traced: {after_t4:?}"
    );
    assert_eq!(
        after_t4.annotations_computed, 4,
        "table4 re-annotated: {after_t4:?}"
    );
    assert!(
        after_t4.annotation_hits > after_t3.annotation_hits,
        "table4 did not hit the annotation cache: {after_t4:?}"
    );
}

/// Rows for the fast workloads, tokenized by whitespace. Aggregate rows
/// (GM/Total/Mean) and full-suite-only rows are excluded, since those
/// legitimately differ between the fast subset and the committed
/// full-suite output; column widths differ too, which is why rows are
/// compared token-wise rather than byte-wise.
fn fast_rows(text: &str) -> Vec<Vec<String>> {
    text.lines()
        .filter(|l| {
            l.split_whitespace()
                .next()
                .is_some_and(|first| FAST_WORKLOADS.contains(&first))
        })
        .map(|l| l.split_whitespace().map(str::to_string).collect())
        .collect()
}

/// Golden test: the harness reproduces the committed `results/*.txt`
/// numbers for the fast-subset workloads. Every measurement in these
/// experiments is per-workload, so fast-subset rows must match the
/// full-suite files exactly (modulo alignment).
#[test]
fn fast_subset_matches_committed_results() {
    let engine = Engine::fast().with_threads(4);
    for name in ["table1", "fig1", "fig6"] {
        let rendered = run_named(&engine, name);
        let golden_path = format!("{}/../../results/{name}.txt", env!("CARGO_MANIFEST_DIR"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("cannot read {golden_path}: {e}"));
        let got = fast_rows(&rendered);
        let want = fast_rows(&golden);
        assert!(
            !want.is_empty(),
            "{name}: no fast-workload rows in {golden_path}"
        );
        assert_eq!(
            got, want,
            "{name}: fast-subset rows diverge from {golden_path}"
        );
    }
}
