//! Integration tests for the persistent disk cache: a second engine
//! sharing the same cache directory (standing in for a second process —
//! the caches it would inherit in-process are fresh) must compute zero
//! traces, serve everything from disk, and render byte-identical output.

use lvp_harness::{experiment, Engine};
use std::path::PathBuf;

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lvp-disk-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_named(engine: &Engine, name: &str) -> String {
    let def = experiment(name).unwrap_or_else(|| panic!("unknown experiment {name}"));
    (def.run)(engine)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
        .render_text()
}

/// Acceptance: with a shared cache dir, the second engine (fresh
/// in-memory caches, as a second process would have) performs zero
/// phase-1 runs and produces byte-identical experiment output.
#[test]
fn second_engine_is_served_entirely_from_disk() {
    let dir = temp_cache_dir("rerun");

    let cold = Engine::new()
        .with_workload_names(&["sc", "grep"])
        .unwrap()
        .with_threads(4)
        .with_disk_cache(&dir);
    let cold_out = run_named(&cold, "table3");
    let cold_stats = cold.stats();
    assert!(cold_stats.traces_computed > 0, "{cold_stats:?}");
    assert_eq!(cold_stats.traces_disk_hit, 0, "{cold_stats:?}");

    let warm = Engine::new()
        .with_workload_names(&["sc", "grep"])
        .unwrap()
        .with_threads(4)
        .with_disk_cache(&dir);
    let warm_out = run_named(&warm, "table3");
    let warm_stats = warm.stats();
    assert_eq!(
        warm_stats.traces_computed, 0,
        "warm run re-traced: {warm_stats:?}"
    );
    assert_eq!(
        warm_stats.traces_disk_hit, cold_stats.traces_computed,
        "{warm_stats:?}"
    );
    assert_eq!(cold_out, warm_out, "disk-cached rerun changed the output");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The disk cache only changes *where* traces come from, never what the
/// downstream phases see: annotation work and results are unchanged.
#[test]
fn disk_cache_is_transparent_to_annotations() {
    let dir = temp_cache_dir("transparent");

    let hermetic = Engine::new().with_workload_names(&["xlisp"]).unwrap();
    let baseline = run_named(&hermetic, "table4");

    let cached = Engine::new()
        .with_workload_names(&["xlisp"])
        .unwrap()
        .with_disk_cache(&dir);
    run_named(&cached, "table4");

    let warm = Engine::new()
        .with_workload_names(&["xlisp"])
        .unwrap()
        .with_disk_cache(&dir);
    let warm_out = run_named(&warm, "table4");
    let warm_stats = warm.stats();
    assert_eq!(warm_stats.traces_computed, 0, "{warm_stats:?}");
    assert!(warm_stats.traces_disk_hit > 0, "{warm_stats:?}");
    assert!(
        warm_stats.annotations_computed > 0,
        "annotations are per-process and must still run: {warm_stats:?}"
    );
    assert_eq!(baseline, warm_out, "cached trace altered table4 output");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Engines without an attached disk cache never touch the filesystem —
/// the library default stays hermetic.
#[test]
fn engine_without_disk_cache_writes_nothing() {
    let dir = temp_cache_dir("hermetic");
    let engine = Engine::new().with_workload_names(&["sc"]).unwrap();
    assert!(engine.disk_cache_dir().is_none());
    run_named(&engine, "table3");
    assert!(!dir.exists());

    // And the builder is reversible.
    let detached = Engine::new().with_disk_cache(&dir).without_disk_cache();
    assert!(detached.disk_cache_dir().is_none());
}
