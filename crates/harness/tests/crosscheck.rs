//! Integration test for the static/dynamic cross-check oracle
//! (acceptance criterion of the provenance pass): on the fast workload
//! subset, at every profile × opt level, no statically must-constant
//! load is ever contradicted by a store, a CVU invalidation, or a
//! changed value.

use lvp_harness::{Engine, ExperimentPlan};
use lvp_isa::AsmProfile;
use lvp_lang::OptLevel;
use lvp_predictor::presets;

#[test]
fn oracle_holds_on_fast_subset_at_every_profile_and_opt() {
    let engine = Engine::fast().with_threads(4);
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .profiles([AsmProfile::Gp, AsmProfile::Toc])
        .opt_levels([OptLevel::O0, OptLevel::O1])
        .configs([presets::simple()])
        .map(|job, ctx| ctx.job_cross_check(job));
    let reports = engine.run(plan).expect("cross-check plan failed");
    assert_eq!(reports.len(), 4 * 2 * 2);

    let mut toc_must_constant = 0usize;
    for r in &reports {
        assert!(r.passed(), "oracle violated:\n{r}");
        if r.cell.contains("/toc/") {
            toc_must_constant += r.must_constant_pcs;
        }
    }
    // The Toc profile materializes addresses through the constant pool,
    // so the static pass must actually prove something there — an empty
    // must-constant class would make the oracle vacuous.
    assert!(
        toc_must_constant > 0,
        "no must-constant loads proved under the Toc profile"
    );
}

#[test]
fn cross_check_results_are_cached_by_config_content() {
    let engine = Engine::fast()
        .with_workload_names(&["sc"])
        .expect("sc exists")
        .with_threads(2);
    let w = engine.suite()[0];
    let ctx = engine.ctx();
    let a = ctx
        .cross_check(&w, AsmProfile::Toc, OptLevel::O0, &presets::simple())
        .expect("first cross-check");
    // Same content, different name: must be served from cache.
    let renamed = presets::simple().builder().named("renamed").build();
    let b = ctx
        .cross_check(&w, AsmProfile::Toc, OptLevel::O0, &renamed)
        .expect("second cross-check");
    assert_eq!(a.cell, b.cell);
    let stats = engine.stats();
    assert_eq!(stats.crosschecks_computed, 1, "{stats:?}");
    assert_eq!(stats.crosscheck_hits, 1, "{stats:?}");
}
