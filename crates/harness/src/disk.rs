//! Persistent, content-addressed on-disk trace cache.
//!
//! The in-memory caches in [`crate::cache`] make traces exactly-once
//! *per process*; this layer makes them exactly-once *per machine*. A
//! cache entry is a single **LVPC** file holding everything a
//! [`WorkloadRun`] needs that cannot be cheaply recomputed — the
//! workload's output values, its output checksum, and the full dynamic
//! trace serialized in the checksummed LVPT v2 format. The compiled
//! [`Program`](lvp_isa::Program) is *not* stored: compilation is
//! milliseconds (it is the simulation of tens of millions of
//! instructions that the cache exists to skip) and the cache key hashes
//! the exact compiler inputs, so recompiling on a hit reproduces the
//! identical program.
//!
//! **Keying.** The file name embeds an FNV-1a hash of the workload's
//! *source text*, the codegen profile, the optimization level, the LVPT
//! format version, and the LVPC container version. Any change to the
//! workload, the requested build, or either on-disk format therefore
//! misses cleanly and regenerates; stale entries are simply never read
//! again.
//!
//! **Atomicity.** Entries are written to a process-unique temp file in
//! the cache directory and `rename`d into place, so concurrent
//! processes racing on the same key each publish a complete file and
//! readers never observe a partial write.
//!
//! **Robustness.** Loading is fail-soft: any I/O error, container or
//! trace corruption (surfaced by the LVPT v2 checksums), or an output
//! mismatch against the workload's golden values is treated as a miss,
//! and the entry is regenerated and rewritten.
//!
//! ```text
//! LVPC container (little-endian):
//!   magic "LVPC", version u16, reserved u16
//!   output checksum u64
//!   output count u64, output values u64 × count
//!   meta crc32 u32            (over checksum..outputs bytes)
//!   LVPT v2 trace stream      (self-checksummed)
//! ```

use lvp_isa::AsmProfile;
use lvp_lang::OptLevel;
use lvp_trace::{crc32, read_trace, write_trace, FORMAT_VERSION};
use lvp_workloads::{Workload, WorkloadRun};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"LVPC";
const CONTAINER_VERSION: u16 = 1;
/// Sanity cap on the stored output count; every suite workload emits a
/// handful of values, so anything huge is corruption.
const MAX_OUTPUTS: u64 = 1 << 16;

/// A content-addressed trace cache rooted at one directory.
///
/// Cheap to clone (it is only the root path); all state lives on disk.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

/// 64-bit FNV-1a; chosen over `DefaultHasher` because the on-disk key
/// must be stable across processes, toolchain versions, and platforms.
fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Chunk separator so ("ab","c") and ("a","bc") key differently.
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DiskCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache { dir: dir.into() }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache file path for one `(workload, profile, opt)` artifact.
    /// Human-scannable prefix, content-addressed suffix.
    pub fn entry_path(&self, w: &Workload, profile: AsmProfile, opt: OptLevel) -> PathBuf {
        let profile_tag = match profile {
            AsmProfile::Toc => "toc",
            AsmProfile::Gp => "gp",
        };
        let key = fnv1a64(&[
            w.name.as_bytes(),
            w.source.as_bytes(),
            profile_tag.as_bytes(),
            format!("{opt:?}").as_bytes(),
            &FORMAT_VERSION.to_le_bytes(),
            &CONTAINER_VERSION.to_le_bytes(),
        ]);
        self.dir
            .join(format!("{}-{profile_tag}-{opt:?}-{key:016x}.lvpc", w.name))
    }

    /// Attempts to serve a complete [`WorkloadRun`] from disk.
    ///
    /// Returns `None` on any miss: absent file, unreadable file, corrupt
    /// container or trace (all typed failures in the underlying
    /// formats), output values that no longer match the workload's
    /// goldens, or a failed recompile. Never panics and never returns a
    /// partially-populated run.
    pub fn load(&self, w: &Workload, profile: AsmProfile, opt: OptLevel) -> Option<WorkloadRun> {
        let path = self.entry_path(w, profile, opt);
        let file = File::open(&path).ok()?;
        let mut reader = BufReader::new(file);

        let mut head = [0u8; 8];
        reader.read_exact(&mut head).ok()?;
        if &head[0..4] != MAGIC {
            return None;
        }
        if u16::from_le_bytes([head[4], head[5]]) != CONTAINER_VERSION {
            return None;
        }
        let mut meta = [0u8; 16];
        reader.read_exact(&mut meta).ok()?;
        let count = u64::from_le_bytes(meta[8..16].try_into().ok()?);
        if count > MAX_OUTPUTS {
            return None;
        }
        let mut meta_bytes = meta.to_vec();
        let mut outputs = Vec::with_capacity(count as usize);
        let mut word = [0u8; 8];
        for _ in 0..count {
            reader.read_exact(&mut word).ok()?;
            meta_bytes.extend_from_slice(&word);
            outputs.push(u64::from_le_bytes(word));
        }
        let mut crc_bytes = [0u8; 4];
        reader.read_exact(&mut crc_bytes).ok()?;
        if crc32(&meta_bytes) != u32::from_le_bytes(crc_bytes) {
            return None;
        }
        let checksum = u64::from_le_bytes(meta[0..8].try_into().ok()?);

        // Integrity gate: a cached run must still match the workload's
        // golden output (guards against hash-collision-level freak
        // accidents and hand-edited cache files alike).
        if outputs != w.expected_output() {
            return None;
        }

        let trace = read_trace(&mut reader).ok()?;

        // Recompile (cheap, deterministic) instead of storing programs.
        let program = lvp_lang::compile_with(w.source, profile, opt).ok()?;

        Some(WorkloadRun {
            trace,
            output: outputs,
            checksum,
            program,
        })
    }

    /// Writes a run's artifact atomically (temp file + rename).
    ///
    /// Best-effort by design: the caller treats a failed store as "no
    /// cache this time", so the error is returned only for tests and
    /// tooling that want to assert on it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created or the entry cannot be written or renamed into place.
    pub fn store(
        &self,
        w: &Workload,
        profile: AsmProfile,
        opt: OptLevel,
        run: &WorkloadRun,
    ) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(w, profile, opt);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));

        let result = (|| {
            let mut writer = BufWriter::new(File::create(&tmp)?);
            writer.write_all(MAGIC)?;
            writer.write_all(&CONTAINER_VERSION.to_le_bytes())?;
            writer.write_all(&0u16.to_le_bytes())?;
            let mut meta_bytes = Vec::with_capacity(16 + run.output.len() * 8);
            meta_bytes.extend_from_slice(&run.checksum.to_le_bytes());
            meta_bytes.extend_from_slice(&(run.output.len() as u64).to_le_bytes());
            for &v in &run.output {
                meta_bytes.extend_from_slice(&v.to_le_bytes());
            }
            writer.write_all(&meta_bytes)?;
            writer.write_all(&crc32(&meta_bytes).to_le_bytes())?;
            write_trace(&mut writer, &run.trace).map_err(std::io::Error::other)?;
            writer.flush()?;
            drop(writer);
            fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_trace::{OpKind, Trace, TraceEntry};

    fn temp_cache(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!("lvp-disk-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskCache::new(dir)
    }

    fn tiny_run(w: &Workload) -> WorkloadRun {
        let trace: Trace = (0..64)
            .map(|i| TraceEntry::simple(0x1000 + 4 * i, OpKind::IntSimple))
            .collect();
        WorkloadRun {
            trace,
            output: w.expected_output().to_vec(),
            checksum: 0xfeed_beef,
            program: lvp_lang::compile_with(w.source, AsmProfile::Toc, OptLevel::O0).unwrap(),
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = temp_cache("roundtrip");
        let w = Workload::by_name("quick").unwrap();
        let run = tiny_run(&w);
        cache
            .store(&w, AsmProfile::Toc, OptLevel::O0, &run)
            .unwrap();
        let loaded = cache.load(&w, AsmProfile::Toc, OptLevel::O0).unwrap();
        assert_eq!(loaded.trace.entries(), run.trace.entries());
        assert_eq!(loaded.output, run.output);
        assert_eq!(loaded.checksum, run.checksum);
        assert_eq!(loaded.program.text().len(), run.program.text().len());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn missing_and_corrupt_entries_are_misses_not_errors() {
        let cache = temp_cache("corrupt");
        let w = Workload::by_name("quick").unwrap();
        assert!(cache.load(&w, AsmProfile::Toc, OptLevel::O0).is_none());

        let run = tiny_run(&w);
        cache
            .store(&w, AsmProfile::Toc, OptLevel::O0, &run)
            .unwrap();
        let path = cache.entry_path(&w, AsmProfile::Toc, OptLevel::O0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte in the trace payload: the LVPT v2 checksum makes
        // this a silent miss instead of a wrong-data hit.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&w, AsmProfile::Toc, OptLevel::O0).is_none());

        // Truncation is also a miss.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load(&w, AsmProfile::Toc, OptLevel::O0).is_none());

        // Garbage is also a miss.
        fs::write(&path, b"not a cache entry").unwrap();
        assert!(cache.load(&w, AsmProfile::Toc, OptLevel::O0).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_separates_profiles_opts_and_sources() {
        let cache = DiskCache::new("target/lvp-cache");
        let quick = Workload::by_name("quick").unwrap();
        let grep = Workload::by_name("grep").unwrap();
        let paths = [
            cache.entry_path(&quick, AsmProfile::Toc, OptLevel::O0),
            cache.entry_path(&quick, AsmProfile::Gp, OptLevel::O0),
            cache.entry_path(&quick, AsmProfile::Toc, OptLevel::O1),
            cache.entry_path(&grep, AsmProfile::Toc, OptLevel::O0),
        ];
        for (i, a) in paths.iter().enumerate() {
            for b in paths.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Stable across calls (content-addressed, no RandomState).
        assert_eq!(
            cache.entry_path(&quick, AsmProfile::Toc, OptLevel::O0),
            cache.entry_path(&quick, AsmProfile::Toc, OptLevel::O0)
        );
    }
}
