//! Content-keyed caches shared by every experiment in a process.
//!
//! Three layers, one per pipeline phase:
//!
//! * **traces** — keyed by `(workload, profile, opt level)`; each trace
//!   is generated exactly once per process no matter how many
//!   experiments consume it.
//! * **annotations** — keyed by `(trace key, config content)`. The key
//!   uses the configuration's *content* (table geometries, counter
//!   widths, oracle bit), never its display name, so differently-named
//!   but identical configs share one annotation pass.
//! * **timings** — keyed by `(trace key, config content, machine
//!   content)`; a `(trace, outcomes, machine)` simulation shared by
//!   e.g. `fig6`, `fig9` and `table6` runs once.
//!
//! Concurrent requests for the same key block on a per-key
//! [`OnceLock`]: the first requester computes, the rest wait and share
//! the `Arc`'d result. Hit/computed counters are exposed through
//! [`EngineStats`].

use crate::crosscheck::CrossCheckReport;
use crate::error::HarnessError;
use crate::valueflow::ValueFlowCheckReport;
use lvp_isa::AsmProfile;
use lvp_lang::OptLevel;
use lvp_predictor::{LvpConfig, LvpStats, PredictorKind};
use lvp_trace::PredOutcome;
use lvp_uarch::SimResult;
use lvp_workloads::WorkloadRun;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key for one generated trace.
pub(crate) type TraceKey = (&'static str, AsmProfile, OptLevel);

/// Content key for an LVP configuration: everything *except* the display
/// name.
pub(crate) type ConfigKey = (PredictorKind, usize, usize, bool, usize, u8, usize, bool);

/// Derives the content key of a configuration.
pub(crate) fn config_key(c: &LvpConfig) -> ConfigKey {
    (
        c.kind,
        c.lvpt.entries,
        c.lvpt.history_depth,
        c.lvpt.perfect_selection,
        c.lct.entries,
        c.lct.counter_bits,
        c.cvu.entries,
        c.perfect,
    )
}

/// The phase-2 result for one `(trace, config)` pair: the per-load
/// prediction outcomes plus the LVP unit's statistics.
#[derive(Debug)]
pub struct Annotation {
    /// One outcome per dynamic load, in trace order.
    pub outcomes: Vec<PredOutcome>,
    /// The unit's counters after the full pass.
    pub stats: LvpStats,
}

/// Snapshot of the engine's cache counters.
///
/// `*_computed` counts cache misses (the work actually performed);
/// `*_hits` counts requests served from an already-computed entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Traces generated (phase-1 runs performed). Requests served from
    /// the persistent disk cache do **not** count here.
    pub traces_computed: u64,
    /// Trace requests served from the in-memory cache.
    pub trace_hits: u64,
    /// Trace requests served from the persistent on-disk cache (no
    /// phase-1 run performed in this process).
    pub traces_disk_hit: u64,
    /// Annotation passes performed.
    pub annotations_computed: u64,
    /// Annotation requests served from cache.
    pub annotation_hits: u64,
    /// Timing simulations performed.
    pub timings_computed: u64,
    /// Timing requests served from cache.
    pub timing_hits: u64,
    /// Static/dynamic cross-checks performed.
    pub crosschecks_computed: u64,
    /// Cross-check requests served from cache.
    pub crosscheck_hits: u64,
    /// Value-flow cross-checks performed.
    pub value_flows_computed: u64,
    /// Value-flow cross-check requests served from cache.
    pub value_flow_hits: u64,
    /// Wall nanoseconds spent generating traces (phase 1, cache misses
    /// only; disk-cache loads count here too — they are the phase-1
    /// cost actually paid).
    pub trace_ns: u64,
    /// Wall nanoseconds spent in LVP annotation passes (phase 2).
    pub annotate_ns: u64,
    /// Wall nanoseconds spent in timing simulations (phase 3).
    pub timing_ns: u64,
    /// Wall nanoseconds spent in static/dynamic cross-checks.
    pub crosscheck_ns: u64,
    /// Wall nanoseconds spent in value-flow cross-checks.
    pub value_flow_ns: u64,
}

impl EngineStats {
    /// Sum of the per-stage wall-time counters, in nanoseconds.
    ///
    /// This is *work* time summed across workers, not elapsed time: with
    /// N threads busy it accumulates up to N ns per wall nanosecond.
    pub fn total_stage_ns(&self) -> u64 {
        self.trace_ns + self.annotate_ns + self.timing_ns + self.crosscheck_ns + self.value_flow_ns
    }
}

/// A per-key slot; the `OnceLock` makes concurrent first requests block
/// until the single computation finishes.
type Slot<V> = Arc<OnceLock<Result<Arc<V>, HarnessError>>>;

/// Generic keyed once-cache with hit accounting.
pub(crate) struct KeyedCache<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    computed: AtomicU64,
    hits: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> KeyedCache<K, V> {
    pub(crate) fn new() -> KeyedCache<K, V> {
        KeyedCache {
            slots: Mutex::new(HashMap::new()),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, computing it with `f` exactly
    /// once per process (errors are cached too, so a failing workload is
    /// not re-run by every consumer).
    pub(crate) fn get_or_compute(
        &self,
        key: K,
        f: impl FnOnce() -> Result<V, HarnessError>,
    ) -> Result<Arc<V>, HarnessError> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache poisoned");
            slots.entry(key).or_default().clone()
        };
        // Only the thread that runs the closure counts a computation;
        // everyone else (including blocked concurrent requesters) counts
        // a hit.
        let mut computed_here = false;
        let out = slot.get_or_init(|| {
            computed_here = true;
            f().map(Arc::new)
        });
        if computed_here {
            self.computed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out.clone()
    }

    pub(crate) fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn clear(&self) {
        self.slots.lock().expect("cache poisoned").clear();
    }
}

/// The engine's three cache layers.
///
/// The trace layer splits its "computed" accounting in two: the keyed
/// cache's own `computed` counter says how many closure executions
/// happened, but with a persistent [`DiskCache`](crate::DiskCache)
/// attached a closure execution may be a cheap disk *load* rather than a
/// phase-1 run. `traces_generated` / `traces_disk_hits` record which of
/// the two actually happened, and [`EngineStats`] reports those.
pub(crate) struct Cache {
    pub(crate) traces: KeyedCache<TraceKey, WorkloadRun>,
    pub(crate) annotations: KeyedCache<(TraceKey, ConfigKey), Annotation>,
    pub(crate) timings: KeyedCache<(TraceKey, Option<ConfigKey>, String), SimResult>,
    pub(crate) crosschecks: KeyedCache<(TraceKey, ConfigKey), CrossCheckReport>,
    pub(crate) value_flows: KeyedCache<TraceKey, ValueFlowCheckReport>,
    /// Phase-1 runs actually performed in this process.
    pub(crate) traces_generated: AtomicU64,
    /// Trace requests satisfied by the persistent disk cache.
    pub(crate) traces_disk_hits: AtomicU64,
    /// Wall nanoseconds spent per stage (cache misses only).
    pub(crate) trace_ns: AtomicU64,
    pub(crate) annotate_ns: AtomicU64,
    pub(crate) timing_ns: AtomicU64,
    pub(crate) crosscheck_ns: AtomicU64,
    pub(crate) value_flow_ns: AtomicU64,
}

impl Cache {
    pub(crate) fn new() -> Cache {
        Cache {
            traces: KeyedCache::new(),
            annotations: KeyedCache::new(),
            timings: KeyedCache::new(),
            crosschecks: KeyedCache::new(),
            value_flows: KeyedCache::new(),
            traces_generated: AtomicU64::new(0),
            traces_disk_hits: AtomicU64::new(0),
            trace_ns: AtomicU64::new(0),
            annotate_ns: AtomicU64::new(0),
            timing_ns: AtomicU64::new(0),
            crosscheck_ns: AtomicU64::new(0),
            value_flow_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> EngineStats {
        EngineStats {
            traces_computed: self.traces_generated.load(Ordering::Relaxed),
            trace_hits: self.traces.hits(),
            traces_disk_hit: self.traces_disk_hits.load(Ordering::Relaxed),
            annotations_computed: self.annotations.computed(),
            annotation_hits: self.annotations.hits(),
            timings_computed: self.timings.computed(),
            timing_hits: self.timings.hits(),
            crosschecks_computed: self.crosschecks.computed(),
            crosscheck_hits: self.crosschecks.hits(),
            value_flows_computed: self.value_flows.computed(),
            value_flow_hits: self.value_flows.hits(),
            trace_ns: self.trace_ns.load(Ordering::Relaxed),
            annotate_ns: self.annotate_ns.load(Ordering::Relaxed),
            timing_ns: self.timing_ns.load(Ordering::Relaxed),
            crosscheck_ns: self.crosscheck_ns.load(Ordering::Relaxed),
            value_flow_ns: self.value_flow_ns.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached trace, annotation and timing result (the
    /// counters are preserved). Useful for long-lived embedders that
    /// want to bound resident memory between experiment batches.
    pub(crate) fn clear(&self) {
        self.traces.clear();
        self.annotations.clear();
        self.timings.clear();
        self.crosschecks.clear();
        self.value_flows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Phase;
    use lvp_predictor::presets;

    #[test]
    fn computes_once_then_hits() {
        let cache: KeyedCache<u32, u32> = KeyedCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache
                .get_or_compute(7, || {
                    calls += 1;
                    Ok(41 + calls)
                })
                .unwrap();
            assert_eq!(*v, 42);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn errors_are_cached_and_shared() {
        let cache: KeyedCache<u32, u32> = KeyedCache::new();
        let mut calls = 0;
        for _ in 0..2 {
            let e = cache
                .get_or_compute(1, || {
                    calls += 1;
                    Err(HarnessError::new(Phase::Trace, "w", "boom"))
                })
                .unwrap_err();
            assert_eq!(e.message, "boom");
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn concurrent_requests_compute_exactly_once() {
        let cache: KeyedCache<u32, u64> = KeyedCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = cache.get_or_compute(0, || Ok(99)).unwrap();
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(cache.computed(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn config_key_ignores_name() {
        let a = presets::simple();
        let b = presets::simple().builder().named("renamed").build();
        assert_eq!(config_key(&a), config_key(&b));
        let c = presets::simple().builder().lvpt_entries(4096).build();
        assert_ne!(config_key(&a), config_key(&c));
        let d = presets::simple()
            .builder()
            .kind(PredictorKind::Hybrid)
            .build();
        assert_ne!(config_key(&a), config_key(&d), "kind is part of the key");
    }
}
