//! Structured experiment results, separated from rendering.
//!
//! Experiments produce a [`Report`] — sections of [`ExperimentTable`]s
//! whose rows are typed [`Cell`]s — and renderers turn reports into
//! output. Two renderers ship today: the fixed-width text renderer
//! (built on [`TablePrinter`], byte-compatible with the pre-harness
//! binaries and the committed `results/*.txt`) and a CSV renderer.

use std::fmt;

/// One typed cell of an experiment row.
///
/// Percentage cells hold *fractions* (0.856 renders as `86%` / `85.7%`),
/// matching the [`pct`]/[`pct1`] helpers. [`Cell::Text`] doubles as the
/// escape hatch for pre-formatted values whose exact float expression
/// must be preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Label or pre-formatted text.
    Text(String),
    /// Integer count.
    Count(u64),
    /// Count rendered in millions with two decimals: `12.34M`.
    Millions(u64),
    /// Fraction rendered `{:.0}%`.
    Pct(f64),
    /// Fraction rendered `{:.1}%`.
    Pct1(f64),
    /// Value rendered `{:.N}` (N ≤ 17).
    Fixed(f64, u8),
    /// A `-` placeholder (no data).
    Dash,
    /// An empty cell.
    Empty,
}

impl Cell {
    /// Shorthand for [`Cell::Text`].
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// Renders the cell to its display string.
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Count(v) => v.to_string(),
            Cell::Millions(v) => format!("{:.2}M", *v as f64 / 1e6),
            Cell::Pct(x) => format!("{:.0}%", 100.0 * x),
            Cell::Pct1(x) => format!("{:.1}%", 100.0 * x),
            Cell::Fixed(x, n) => format!("{x:.*}", *n as usize),
            Cell::Dash => "-".to_string(),
            Cell::Empty => String::new(),
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One row of typed cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentRow {
    /// The cells, one per table column.
    pub cells: Vec<Cell>,
}

impl From<Vec<Cell>> for ExperimentRow {
    fn from(cells: Vec<Cell>) -> ExperimentRow {
        ExperimentRow { cells }
    }
}

/// A table of typed rows under fixed headers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<ExperimentRow>,
}

impl ExperimentTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> ExperimentTable {
        ExperimentTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch — a bug in the experiment definition.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(ExperimentRow { cells });
    }

    /// Renders with the fixed-width text renderer.
    pub fn render_text(&self) -> String {
        let mut p = TablePrinter::new(self.headers.clone());
        for r in &self.rows {
            p.row(r.cells.iter().map(Cell::render).collect());
        }
        p.render()
    }
}

/// A report section: an optional `== heading ==` plus one table.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section heading, rendered as `== heading ==`.
    pub heading: Option<String>,
    /// The section's table.
    pub table: ExperimentTable,
}

/// A complete experiment result, independent of any output format.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The experiment's registry name (`table1`, `fig6`, ...).
    pub name: String,
    /// The headline printed before the tables.
    pub title: String,
    /// The tables, in order.
    pub sections: Vec<Section>,
    /// Trailing note paragraphs (each rendered as its own lines).
    pub notes: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            name: name.into(),
            title: title.into(),
            sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn section(&mut self, heading: Option<&str>, table: ExperimentTable) {
        self.sections.push(Section {
            heading: heading.map(str::to_string),
            table,
        });
    }

    /// Appends a trailing note paragraph.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Text renderer: byte-compatible with the pre-harness binary
    /// output (title, `== heading ==` sections, aligned tables, note
    /// paragraphs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push_str("\n\n");
        for s in &self.sections {
            if let Some(h) = &s.heading {
                out.push_str(&format!("== {h} ==\n"));
            }
            out.push_str(&s.table.render_text());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// CSV renderer: one block per section, preceded by `# name/heading`
    /// comment lines; cells render exactly as in the text output.
    pub fn render_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = format!("# {}\n", self.title);
        for s in &self.sections {
            if let Some(h) = &s.heading {
                out.push_str(&format!("# {h}\n"));
            }
            let headers: Vec<String> = s.table.headers.iter().map(|h| esc(h)).collect();
            out.push_str(&headers.join(","));
            out.push('\n');
            for r in &s.table.rows {
                let cells: Vec<String> = r.cells.iter().map(|c| esc(&c.render())).collect();
                out.push_str(&cells.join(","));
                out.push('\n');
            }
        }
        out
    }
}

/// Minimal fixed-width table printer — the text renderer's core, kept
/// API-compatible with the original `lvp-bench` version.
#[derive(Debug, Default)]
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TablePrinter {
        TablePrinter {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align names.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cell, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Geometric mean of a slice (the paper reports GM rows); 0 for empty
/// input.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a ratio as a percentage with no decimals (paper style).
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct1(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a speedup with three decimals (paper's Table 6 style).
pub fn speedup(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TablePrinter::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn cells_render_like_the_helpers() {
        assert_eq!(Cell::Pct(0.856).render(), pct(0.856));
        assert_eq!(Cell::Pct1(0.8567).render(), pct1(0.8567));
        assert_eq!(Cell::Fixed(1.0567, 3).render(), speedup(1.0567));
        assert_eq!(Cell::Millions(2_330_000).render(), "2.33M");
        assert_eq!(Cell::Count(42).render(), "42");
        assert_eq!(Cell::Dash.render(), "-");
        assert_eq!(Cell::Empty.render(), "");
        assert_eq!(Cell::text("GM").to_string(), "GM");
    }

    #[test]
    fn report_text_layout_matches_legacy_binaries() {
        let mut r = Report::new("demo", "Demo: a title");
        let mut t = ExperimentTable::new(vec!["benchmark", "value"]);
        t.row(vec![Cell::text("quick"), Cell::Fixed(1.5, 3)]);
        r.section(Some("panel A"), t);
        r.note("Trailing note.");
        let s = r.render_text();
        assert_eq!(
            s,
            "Demo: a title\n\n\
             == panel A ==\n\
             benchmark  value\n\
             ----------------\n\
             quick      1.500\n\
             \n\
             Trailing note.\n"
        );
    }

    #[test]
    fn csv_renderer_escapes_and_flattens() {
        let mut r = Report::new("demo", "Demo");
        let mut t = ExperimentTable::new(vec!["a", "b"]);
        t.row(vec![Cell::text("x,y"), Cell::Count(1)]);
        r.section(None, t);
        let csv = r.render_csv();
        assert!(csv.contains("\"x,y\",1"), "{csv}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn experiment_table_rejects_ragged_rows() {
        let mut t = ExperimentTable::new(vec!["a", "b"]);
        t.row(vec![Cell::Dash]);
    }
}
