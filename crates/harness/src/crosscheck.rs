//! The static/dynamic cross-check oracle.
//!
//! `lvp-analyze`'s provenance pass claims some loads are
//! **must-constant**: their exact address lies in the initialized data
//! image and no store in the program may alias it. This module puts that
//! claim on trial against a real execution:
//!
//! 1. **Store sweep** — no dynamic store's byte range may overlap a
//!    must-constant slot ([`ViolationKind::StoreOverlap`]);
//! 2. **CVU events** — replaying the trace through an [`LvpUnit`] with a
//!    [`CvuEventLog`] watching the must-constant slots, no certification
//!    of such a slot may ever be destroyed by a store
//!    ([`ViolationKind::CvuInvalidated`]);
//! 3. **Value stability** — a must-constant pc must load the same value
//!    on every execution ([`ViolationKind::ValueChanged`]).
//!
//! Check 3 deliberately replaces the naive "a constant-classified load
//! never mispredicts": the LVPT and LCT are untagged and direct-mapped,
//! so two pcs can alias one table entry and mispredict each other's
//! values without any store being involved — a predictor-geometry
//! artifact, not a provenance failure. Value stability is the
//! geometry-independent ground truth.
//!
//! A passing report across every workload × profile × opt cell validates
//! both the points-to analysis and its pool-ownership assumption (see
//! `lvp-analyze`'s `regions` module); CI runs exactly that matrix.

use lvp_analyze::{analyze_memory, Region, RegionMap};
use lvp_isa::Program;
use lvp_predictor::{CvuEventLog, LvpConfig, LvpUnit};
use lvp_trace::Trace;
use std::collections::BTreeMap;
use std::fmt;

/// How a must-constant claim was contradicted dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A dynamic store's byte range overlapped the slot.
    StoreOverlap,
    /// A store destroyed the CVU certification of the slot.
    CvuInvalidated,
    /// The load observed two different values at the same pc.
    ValueChanged,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::StoreOverlap => "store-overlap",
            ViolationKind::CvuInvalidated => "cvu-invalidated",
            ViolationKind::ValueChanged => "value-changed",
        })
    }
}

/// One contradiction of a static must-constant claim.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrossCheckViolation {
    /// Pc of the must-constant load whose claim was contradicted.
    pub load_pc: u64,
    /// The kind of contradiction.
    pub kind: ViolationKind,
    /// The slot's data address.
    pub addr: u64,
    /// The abstract region the slot lives in.
    pub region: Region,
    /// Pc of the offending store, when one exists
    /// (`StoreOverlap`/`CvuInvalidated`).
    pub store_pc: Option<u64>,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for CrossCheckViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#x}: {} ({} slot {:#x})",
            self.load_pc, self.kind, self.region, self.addr
        )?;
        if let Some(spc) = self.store_pc {
            write!(f, " by store at {:#x}", spc)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The cross-check result for one workload × profile × opt × config cell.
#[derive(Debug, Clone)]
pub struct CrossCheckReport {
    /// The cell, rendered `workload/profile/opt`.
    pub cell: String,
    /// Static loads the provenance pass proved must-constant.
    pub must_constant_pcs: usize,
    /// Dynamic executions of those loads in the trace.
    pub dynamic_must_constant_loads: u64,
    /// CVU-verified (memory-bypassing) executions among them.
    pub cvu_verified: u64,
    /// Contradictions found; empty means the oracle holds.
    pub violations: Vec<CrossCheckViolation>,
}

impl CrossCheckReport {
    /// Whether the oracle holds for this cell.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CrossCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} must-constant pc(s), {} dynamic load(s), {} CVU-verified: {}",
            self.cell,
            self.must_constant_pcs,
            self.dynamic_must_constant_loads,
            self.cvu_verified,
            if self.passed() { "ok" } else { "FAILED" }
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Byte-range overlap of `[a, a + aw)` and `[b, b + bw)`.
fn overlaps(a: u64, aw: u8, b: u64, bw: u8) -> bool {
    (a as u128) < b as u128 + bw as u128 && (b as u128) < a as u128 + aw as u128
}

/// Runs the cross-check oracle for one compiled program and its trace
/// under `config`; `cell` labels the report (`workload/profile/opt`).
pub fn cross_check(
    program: &Program,
    trace: &Trace,
    config: &LvpConfig,
    cell: String,
) -> CrossCheckReport {
    let memory = analyze_memory(program);
    let regions = RegionMap::new(program);
    let slots = memory.must_constant_slots();
    let mut violations: Vec<CrossCheckViolation> = Vec::new();

    // Check 1 + 3: one pass over the trace. Stores sweep the slot
    // intervals; loads at must-constant pcs must repeat their first
    // observed value.
    let by_pc: BTreeMap<u64, (u64, u8)> = slots.iter().map(|&(pc, a, w)| (pc, (a, w))).collect();
    let mut first_value: BTreeMap<u64, u64> = BTreeMap::new();
    let mut dynamic_loads = 0u64;
    for entry in trace.iter() {
        let Some(mem) = entry.mem else { continue };
        if entry.is_load() {
            let Some(&(addr, _)) = by_pc.get(&entry.pc) else {
                continue;
            };
            dynamic_loads += 1;
            match first_value.get(&entry.pc) {
                None => {
                    first_value.insert(entry.pc, mem.value);
                }
                Some(&v) if v != mem.value => {
                    violations.push(CrossCheckViolation {
                        load_pc: entry.pc,
                        kind: ViolationKind::ValueChanged,
                        addr,
                        region: regions.classify(addr),
                        store_pc: None,
                        detail: format!("loaded {:#x} then {:#x}", v, mem.value),
                    });
                }
                Some(_) => {}
            }
        } else {
            for &(pc, addr, width) in &slots {
                if overlaps(mem.addr, mem.width, addr, width) {
                    violations.push(CrossCheckViolation {
                        load_pc: pc,
                        kind: ViolationKind::StoreOverlap,
                        addr,
                        region: regions.classify(addr),
                        store_pc: Some(entry.pc),
                        detail: format!(
                            "store of {} byte(s) at {:#x} hits the slot",
                            mem.width, mem.addr
                        ),
                    });
                }
            }
        }
    }

    // Check 2: replay through the LVP unit with an event log watching
    // exactly the must-constant slots.
    let watch: Vec<(u64, u8)> = slots.iter().map(|&(_, a, w)| (a, w)).collect();
    let mut unit = LvpUnit::new(config.clone()).with_event_log(CvuEventLog::watching(watch));
    unit.annotate(trace);
    let log = unit.take_events().expect("event log attached above");
    for inv in &log.invalidations {
        for &(pc, addr, width) in &slots {
            if overlaps(inv.entry_addr, inv.entry_width, addr, width) {
                violations.push(CrossCheckViolation {
                    load_pc: pc,
                    kind: ViolationKind::CvuInvalidated,
                    addr,
                    region: regions.classify(addr),
                    store_pc: Some(inv.store_pc),
                    detail: format!(
                        "store of {} byte(s) at {:#x} destroyed the certification",
                        inv.store_width, inv.store_addr
                    ),
                });
            }
        }
    }
    let cvu_verified = by_pc
        .keys()
        .filter_map(|pc| log.verifications.get(pc))
        .sum();

    // Canonical order, duplicates (e.g. a hot store in a loop) collapsed.
    violations.sort();
    violations
        .dedup_by(|a, b| a.load_pc == b.load_pc && a.kind == b.kind && a.store_pc == b.store_pc);

    CrossCheckReport {
        cell,
        must_constant_pcs: slots.len(),
        dynamic_must_constant_loads: dynamic_loads,
        cvu_verified,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};
    use lvp_predictor::presets;
    use lvp_sim::Machine;

    fn run(src: &str) -> (Program, Trace) {
        let p = Assembler::new(AsmProfile::Toc).assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run_traced(10_000_000).unwrap();
        (p, t)
    }

    #[test]
    fn clean_constant_loop_passes() {
        // A loop re-loading a pool constant: must-constant statically,
        // never stored dynamically.
        let (p, t) = run(
            ".data\nv: .dword 42\n.text\nmain:\n li t0, 5\nloop:\n la a0, v\n \
             ld a1, 0(a0)\n addi t0, t0, -1\n bne t0, zero, loop\n out a1\n halt\n",
        );
        let r = cross_check(&p, &t, &presets::simple(), "test/toc/O0".into());
        assert!(r.passed(), "{r}");
        assert!(r.must_constant_pcs > 0);
        assert!(r.dynamic_must_constant_loads >= 5);
    }

    #[test]
    fn violated_assumption_is_reported() {
        // A store through a *computed* address hits the pool: statically
        // invisible (the pool-ownership assumption hides it), so the
        // pool slot stays must-constant — and the dynamic oracle must
        // catch the contradiction.
        // `mul` is opaque to the points-to transfer, so `t1` is an
        // unknown pointer (assumed non-pool) that dynamically equals gp.
        let (p, t) = run(
            ".data\nv: .dword 42\n.text\nmain:\n la a0, v\n ld a1, 0(a0)\n \
             li t3, 1\n mul t1, gp, t3\n li t2, 7\n sd t2, 0(t1)\n \
             out a1\n halt\n",
        );
        let r = cross_check(&p, &t, &presets::simple(), "test/toc/O0".into());
        assert!(!r.passed(), "the computed pool store must be caught");
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::StoreOverlap && v.store_pc.is_some()));
        // The report names the pool region.
        assert!(r.violations.iter().any(|v| v.region == Region::ConstPool));
    }

    #[test]
    fn value_change_without_store_sweep_gap_is_caught() {
        // Same shape, but assert the changed loaded value specifically:
        // the second `la`-load of v sees the stored 7 instead of 42.
        let (p, t) = run(
            ".data\nv: .dword 42\n.text\nmain:\n la a0, v\n ld a1, 0(a0)\n \
             li t2, 7\n sd t2, 0(a0)\n ld a3, 0(a0)\n out a3\n halt\n",
        );
        // Here the store IS statically visible, so `v`'s load is not
        // must-constant and nothing should fire: the oracle only guards
        // claims actually made.
        let r = cross_check(&p, &t, &presets::simple(), "test/toc/O0".into());
        assert!(r.passed(), "{r}");
    }

    #[test]
    fn report_renders_cell_and_counts() {
        let (p, t) =
            run(".data\nv: .dword 1\n.text\nmain:\n la a0, v\n ld a1, 0(a0)\n out a1\n halt\n");
        let r = cross_check(&p, &t, &presets::simple(), "unit/toc/O0".into());
        let s = r.to_string();
        assert!(s.starts_with("unit/toc/O0:"), "{s}");
        assert!(s.contains("ok"), "{s}");
    }
}
