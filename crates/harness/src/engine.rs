//! The experiment engine: a parallel, cache-backed plan executor.

use crate::cache::{config_key, Annotation, Cache, EngineStats, TraceKey};
use crate::crosscheck::{cross_check, CrossCheckReport};
use crate::disk::DiskCache;
use crate::error::{HarnessError, Phase};
use crate::plan::{JobSpec, MachineModel, Plan};
use crate::valueflow::{value_flow_check, ValueFlowCheckReport};
use lvp_isa::AsmProfile;
use lvp_lang::OptLevel;
use lvp_predictor::{LvpConfig, LvpUnit, PredictorKind};
use lvp_sim::Machine;
use lvp_uarch::SimResult;
use lvp_workloads::{Workload, WorkloadRun, DEFAULT_FUEL};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The workload subset used by `--fast` smoke runs: the smallest suite
/// members (all under 2.5M dynamic instructions), mixing integer and
/// floating-point benchmarks. Per-workload result rows are identical to
/// a full run because every measurement is per-workload.
pub const FAST_WORKLOADS: [&str; 4] = ["sc", "xlisp", "grep", "doduc"];

/// Runs one workload end to end (phase 1): compile under `(profile,
/// opt)`, simulate to completion, collect the trace, and validate the
/// output against the workload's golden values.
///
/// This is the non-panicking replacement for the old `lvp-bench`
/// `workload_trace` free function.
///
/// # Errors
///
/// Returns [`HarnessError`] (phase [`Phase::Trace`]) if compilation
/// fails, simulation faults or exhausts its fuel, or the self-check
/// fails.
pub fn run_workload(
    w: &Workload,
    profile: AsmProfile,
    opt: OptLevel,
) -> Result<WorkloadRun, HarnessError> {
    let err = |e: &dyn std::fmt::Display| {
        HarnessError::new(
            Phase::Trace,
            w.name,
            format!("under {profile}/{opt:?}: {e}"),
        )
    };
    if opt == OptLevel::O0 {
        return w.run(profile).map_err(|e| err(&e));
    }
    // Optimized builds go through the compiler directly; the output is
    // still golden-checked so a miscompiling optimizer fails loudly.
    let program = lvp_lang::compile_with(w.source, profile, opt).map_err(|e| err(&e))?;
    let mut machine = Machine::new(&program);
    let trace = machine.run_traced(DEFAULT_FUEL).map_err(|e| err(&e))?;
    let output = machine.output().to_vec();
    if output != w.expected_output() {
        return Err(err(&format!("self-check failed; output {output:?}")));
    }
    Ok(WorkloadRun {
        trace,
        output,
        checksum: machine.output_checksum(),
        program,
    })
}

/// The experiment engine: owns the worker budget, the workload suite
/// under evaluation, and the process-wide caches.
///
/// One engine should be shared by every experiment a process runs — the
/// caches are what make `lvp bench --all` amortize trace generation
/// across the whole evaluation.
pub struct Engine {
    threads: usize,
    suite: Vec<Workload>,
    predictor: Option<PredictorKind>,
    cache: Cache,
    disk: Option<DiskCache>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Engine over the full 17-workload suite with one worker per
    /// available CPU.
    pub fn new() -> Engine {
        Engine {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            suite: lvp_workloads::suite(),
            predictor: None,
            cache: Cache::new(),
            disk: None,
        }
    }

    /// Engine over the [`FAST_WORKLOADS`] smoke subset.
    pub fn fast() -> Engine {
        Engine::new()
            .with_workload_names(&FAST_WORKLOADS)
            .expect("fast subset names are valid")
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_threads(mut self, n: usize) -> Engine {
        self.threads = n.max(1);
        self
    }

    /// Overrides the predictor backend for every annotation this
    /// engine computes: each configuration's [`LvpConfig::kind`] is
    /// replaced by `kind` before the predict phase runs (and before
    /// cache keying, so distinct kinds never collide). The cross-check
    /// oracle is unaffected — it always judges the paper's last-value
    /// unit.
    pub fn with_predictor(mut self, kind: PredictorKind) -> Engine {
        self.predictor = Some(kind);
        self
    }

    /// The predictor-kind override, if one was set.
    pub fn predictor(&self) -> Option<PredictorKind> {
        self.predictor
    }

    /// Attaches a persistent on-disk trace cache rooted at `dir`.
    ///
    /// With a disk cache attached, phase-1 results are served from disk
    /// when a valid content-addressed entry exists (counted in
    /// [`EngineStats::traces_disk_hit`], *not* in `traces_computed`) and
    /// written back after every generation, so a rerun in a fresh
    /// process computes zero traces. The engine defaults to **no** disk
    /// cache — library users and tests stay hermetic unless they opt in.
    pub fn with_disk_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Engine {
        self.disk = Some(DiskCache::new(dir));
        self
    }

    /// Detaches the persistent disk cache (the default state).
    pub fn without_disk_cache(mut self) -> Engine {
        self.disk = None;
        self
    }

    /// The attached disk cache's root directory, if any.
    pub fn disk_cache_dir(&self) -> Option<&std::path::Path> {
        self.disk.as_ref().map(DiskCache::dir)
    }

    /// Restricts the engine to a named workload subset, in suite order.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError`] (phase [`Phase::Plan`]) for unknown
    /// names.
    pub fn with_workload_names(mut self, names: &[&str]) -> Result<Engine, HarnessError> {
        for n in names {
            if Workload::by_name(n).is_none() {
                return Err(HarnessError::new(
                    Phase::Plan,
                    *n,
                    "unknown workload (see `lvp suite`)",
                ));
            }
        }
        self.suite = lvp_workloads::suite()
            .into_iter()
            .filter(|w| names.contains(&w.name))
            .collect();
        Ok(self)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The workload suite experiments should plan over.
    pub fn suite(&self) -> &[Workload] {
        &self.suite
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> EngineStats {
        self.cache.stats()
    }

    /// Drops all cached traces/annotations/timings to release memory;
    /// counters are preserved.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// A pipeline context for ad-hoc (non-plan) use of the caches.
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx { engine: self }
    }

    /// Executes a plan's job matrix and merges the per-job results.
    ///
    /// Jobs are distributed over `threads` scoped workers; results are
    /// merged **in plan order**, never completion order, so the output
    /// is identical at any worker count. On failure the error of the
    /// lowest-indexed failing job is returned (also deterministic).
    ///
    /// # Errors
    ///
    /// Propagates the first (by job index) [`HarnessError`] any job
    /// produced.
    pub fn run<T: Send>(&self, plan: Plan<T>) -> Result<Vec<T>, HarnessError> {
        let n = plan.jobs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let ctx = self.ctx();
        let slots: Vec<Mutex<Option<Result<T, HarnessError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = (plan.run)(&plan.jobs[i], &ctx);
                    if out.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        let mut results = Vec::with_capacity(n);
        let mut first_error: Option<HarnessError> = None;
        for slot in slots {
            match slot.into_inner().expect("result slot poisoned") {
                Some(Ok(v)) => results.push(v),
                // Slots are visited in job-index order, so the error
                // kept is the lowest-indexed one — deterministic at any
                // worker count. `None` slots were skipped because the
                // run aborted after that error.
                Some(Err(e)) if first_error.is_none() => first_error = Some(e),
                _ => {}
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }
}

/// Cached access to the three pipeline phases; handed to every plan job
/// and available directly via [`Engine::ctx`].
pub struct Ctx<'e> {
    engine: &'e Engine,
}

impl Ctx<'_> {
    fn trace_key(w: &Workload, profile: AsmProfile, opt: OptLevel) -> TraceKey {
        (w.name, profile, opt)
    }

    /// Runs `f`, charging its wall time to the per-stage counter
    /// `counter` (the cheap ns accounting behind `lvp bench`'s stage
    /// breakdown; one `Instant` pair per cache miss, nothing per entry).
    fn timed<T>(
        counter: &std::sync::atomic::AtomicU64,
        f: impl FnOnce() -> Result<T, HarnessError>,
    ) -> Result<T, HarnessError> {
        let start = std::time::Instant::now();
        let out = f();
        counter.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Phase 1, cached: the full workload run (trace + program +
    /// output) for `(workload, profile, opt)`. Computed exactly once
    /// per process and shared across all consumers. With a disk cache
    /// attached (see [`Engine::with_disk_cache`]) the run is served
    /// from a valid persistent entry when one exists, and written back
    /// after generation otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`run_workload`] failures. Disk-cache problems are
    /// never errors: a bad entry is a miss (regenerated and rewritten)
    /// and a failed write-back is ignored.
    pub fn workload_run(
        &self,
        w: &Workload,
        profile: AsmProfile,
        opt: OptLevel,
    ) -> Result<Arc<WorkloadRun>, HarnessError> {
        let w = *w;
        let cache = &self.engine.cache;
        let disk = self.engine.disk.as_ref();
        cache
            .traces
            .get_or_compute(Self::trace_key(&w, profile, opt), move || {
                Self::timed(&cache.trace_ns, || {
                    if let Some(run) = disk.and_then(|d| d.load(&w, profile, opt)) {
                        cache.traces_disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(run);
                    }
                    let run = run_workload(&w, profile, opt)?;
                    cache.traces_generated.fetch_add(1, Ordering::Relaxed);
                    if let Some(d) = disk {
                        // Best-effort write-back: a full disk or read-only
                        // cache dir must not fail the experiment.
                        let _ = d.store(&w, profile, opt, &run);
                    }
                    Ok(run)
                })
            })
    }

    /// Phase 2, cached: the LVP-unit annotation of a trace under a
    /// configuration. Keyed by config *content*, not name.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn annotation(
        &self,
        w: &Workload,
        profile: AsmProfile,
        opt: OptLevel,
        config: &LvpConfig,
    ) -> Result<Arc<Annotation>, HarnessError> {
        // Apply the engine-wide backend override before keying, so
        // sweeps over kinds are cached per kind.
        let rekinded;
        let config = match self.engine.predictor {
            Some(kind) if config.kind != kind => {
                rekinded = config.clone().builder().kind(kind).build();
                &rekinded
            }
            _ => config,
        };
        let run = self.workload_run(w, profile, opt)?;
        let key = (Self::trace_key(w, profile, opt), config_key(config));
        let cache = &self.engine.cache;
        cache.annotations.get_or_compute(key, || {
            Self::timed(&cache.annotate_ns, || {
                let mut unit = LvpUnit::new(config.clone());
                let outcomes = unit.annotate(&run.trace);
                Ok(Annotation {
                    outcomes,
                    stats: *unit.stats(),
                })
            })
        })
    }

    /// Phase 3, cached: the timing simulation of a trace on a machine
    /// model, with (`Some`) or without (`None`) LVP annotations.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn timing(
        &self,
        w: &Workload,
        profile: AsmProfile,
        opt: OptLevel,
        config: Option<&LvpConfig>,
        machine: &MachineModel,
    ) -> Result<Arc<SimResult>, HarnessError> {
        let run = self.workload_run(w, profile, opt)?;
        let annotation = config
            .map(|c| self.annotation(w, profile, opt, c))
            .transpose()?;
        let key = (
            Self::trace_key(w, profile, opt),
            config.map(config_key),
            machine.cache_key(),
        );
        let cache = &self.engine.cache;
        cache.timings.get_or_compute(key, || {
            Self::timed(&cache.timing_ns, || {
                let outcomes = annotation.as_ref().map(|a| a.outcomes.as_slice());
                Ok(machine.simulate(&run.trace, outcomes))
            })
        })
    }

    /// The static/dynamic cross-check oracle for one cell, cached like
    /// annotations (keyed by trace key + config *content*): the
    /// provenance pass's must-constant claims are verified against the
    /// cell's real trace and CVU event stream.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures (phase
    /// [`Phase::Analyze`](crate::Phase) belongs to the report itself,
    /// which never errors — a violated oracle is a *failing report*, not
    /// a harness error, so callers decide how loudly to fail).
    pub fn cross_check(
        &self,
        w: &Workload,
        profile: AsmProfile,
        opt: OptLevel,
        config: &LvpConfig,
    ) -> Result<Arc<CrossCheckReport>, HarnessError> {
        let run = self.workload_run(w, profile, opt)?;
        let key = (Self::trace_key(w, profile, opt), config_key(config));
        let cache = &self.engine.cache;
        cache.crosschecks.get_or_compute(key, || {
            Self::timed(&cache.crosscheck_ns, || {
                let cell = format!("{}/{profile}/{opt:?}", w.name);
                Ok(cross_check(&run.program, &run.trace, config, cell))
            })
        })
    }

    /// The value-flow cross-check for one cell, cached by trace key
    /// alone (the check has no config axis — the emulated predictors
    /// are fixed): the value-flow pass's affine-stride and
    /// must-constant claims are judged against the cell's real trace,
    /// and `LVP014` under-approximations are collected.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures (a refuted claim is a
    /// *failing report*, not a harness error — same policy as
    /// [`Ctx::cross_check`]).
    pub fn value_flow_check(
        &self,
        w: &Workload,
        profile: AsmProfile,
        opt: OptLevel,
    ) -> Result<Arc<ValueFlowCheckReport>, HarnessError> {
        let run = self.workload_run(w, profile, opt)?;
        let key = Self::trace_key(w, profile, opt);
        let cache = &self.engine.cache;
        cache.value_flows.get_or_compute(key, || {
            Self::timed(&cache.value_flow_ns, || {
                let cell = format!("{}/{profile}/{opt:?}", w.name);
                Ok(value_flow_check(&run.program, &run.trace, cell))
            })
        })
    }

    /// [`Ctx::workload_run`] for a job's own axes.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn job_run(&self, job: &JobSpec) -> Result<Arc<WorkloadRun>, HarnessError> {
        self.workload_run(&job.workload, job.profile, job.opt)
    }

    /// [`Ctx::annotation`] for a job's own axes (requires a config
    /// axis).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn job_annotation(&self, job: &JobSpec) -> Result<Arc<Annotation>, HarnessError> {
        self.annotation(&job.workload, job.profile, job.opt, job.config()?)
    }

    /// [`Ctx::cross_check`] for a job's own axes (requires a config
    /// axis).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn job_cross_check(&self, job: &JobSpec) -> Result<Arc<CrossCheckReport>, HarnessError> {
        self.cross_check(&job.workload, job.profile, job.opt, job.config()?)
    }

    /// [`Ctx::value_flow_check`] for a job's own axes.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn job_value_flow(&self, job: &JobSpec) -> Result<Arc<ValueFlowCheckReport>, HarnessError> {
        self.value_flow_check(&job.workload, job.profile, job.opt)
    }

    /// [`Ctx::timing`] for a job's own axes (requires a machine axis;
    /// `with_lvp` selects whether the job's config axis is applied).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn job_timing(
        &self,
        job: &JobSpec,
        with_lvp: bool,
    ) -> Result<Arc<SimResult>, HarnessError> {
        let config = if with_lvp { Some(job.config()?) } else { None };
        self.timing(&job.workload, job.profile, job.opt, config, job.machine()?)
    }
}
