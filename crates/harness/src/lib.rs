//! # lvp-harness — the experiment engine
//!
//! A typed, parallel, trace-caching harness for the paper's evaluation.
//! It replaces the ad-hoc per-binary plumbing that `lvp-bench` grew up
//! with:
//!
//! * [`ExperimentPlan`] — a builder describing a job matrix over
//!   (workload × [`AsmProfile`](lvp_isa::AsmProfile) ×
//!   [`OptLevel`](lvp_lang::OptLevel) ×
//!   [`LvpConfig`](lvp_predictor::LvpConfig) × [`MachineModel`]).
//! * [`Engine`] — a parallel executor over scoped threads with a
//!   configurable worker count and deterministic (plan-order) result
//!   merging, backed by content-keyed caches so each trace, annotation
//!   and timing simulation is computed exactly once per process.
//! * [`DiskCache`] — an opt-in persistent, content-addressed trace
//!   cache ([`Engine::with_disk_cache`]) that makes phase 1 exactly-once
//!   per *machine*: reruns in fresh processes load checksummed LVPT v2
//!   artifacts from disk instead of re-simulating.
//! * [`Report`] / [`ExperimentRow`] / [`Cell`] — structured results
//!   separated from rendering; the classic fixed-width text output is
//!   one renderer ([`Report::render_text`]), CSV another.
//! * [`experiments`] — the registry of all paper experiments (tables,
//!   figures, ablations), each a thin declarative plan. The `lvp bench`
//!   subcommand and the per-experiment binaries both dispatch through
//!   it.
//!
//! ## Pipeline
//!
//! ```text
//!   plan (job matrix) ──► engine (parallel, cached) ──► rows ──► renderer
//!        ExperimentPlan        Engine::run                Report   text/CSV
//! ```
//!
//! ## Example
//!
//! ```
//! use lvp_harness::{Engine, ExperimentPlan};
//!
//! let engine = Engine::fast().with_threads(2);
//! let plan = ExperimentPlan::new()
//!     .workloads(engine.suite().to_vec())
//!     .configs([lvp_predictor::presets::simple()])
//!     .map(|job, ctx| {
//!         let ann = ctx.job_annotation(job)?;
//!         Ok((job.workload.name, ann.stats.accuracy()))
//!     });
//! # let _ = plan; // executing would trace real workloads; see `lvp bench`
//! ```

pub mod cache;
pub mod crosscheck;
pub mod disk;
pub mod engine;
pub mod error;
pub mod experiments;
pub mod perf;
pub mod plan;
pub mod report;
pub mod valueflow;

pub use cache::{Annotation, EngineStats};
pub use crosscheck::{cross_check, CrossCheckReport, CrossCheckViolation, ViolationKind};
pub use disk::DiskCache;
pub use engine::{run_workload, Ctx, Engine, FAST_WORKLOADS};
pub use error::{ErrorKind, HarnessError, Phase};
pub use experiments::{address_ranges, experiment, experiments, ExperimentDef};
pub use perf::{
    benches, check, run as run_benches, BenchDef, BenchResult, PerfConfig, PerfError, PerfReport,
    Regression,
};
pub use plan::{ExperimentPlan, JobSpec, MachineModel, Plan};
pub use report::{
    geo_mean, pct, pct1, speedup, Cell, ExperimentRow, ExperimentTable, Report, Section,
    TablePrinter,
};
pub use valueflow::{
    value_flow_check, value_flow_check_with, ValueFlowCheckReport, ValueFlowViolation,
    ValueFlowViolationKind, MIN_EXECUTIONS, STRIDE_ACCURACY_FLOOR,
};
