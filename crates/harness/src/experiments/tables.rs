//! The paper's tables (1–6) as harness plans.
//!
//! Output is byte-compatible with the original standalone binaries (and
//! the committed `results/*.txt`): same titles, headers, cell formats
//! and trailing notes.

use crate::engine::Engine;
use crate::error::HarnessError;
use crate::plan::{ExperimentPlan, MachineModel};
use crate::report::{geo_mean, Cell, ExperimentTable, Report};
use lvp_isa::AsmProfile;
use lvp_predictor::presets;
use lvp_uarch::LatencyTable;

/// Table 1 — benchmark descriptions and dynamic instruction/load counts,
/// for both codegen profiles (the paper's PowerPC and Alpha columns).
pub(super) fn table1(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .profiles([AsmProfile::Toc, AsmProfile::Gp])
        .map(|job, ctx| {
            let run = ctx.job_run(job)?;
            let s = run.trace.stats();
            Ok((s.instructions, s.loads))
        });
    let counts = engine.run(plan)?;

    let mut report = Report::new(
        "table1",
        "Table 1: Benchmark Descriptions (counts in millions)",
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "description",
        "input",
        "instr(Toc)",
        "loads(Toc)",
        "instr(Gp)",
        "loads(Gp)",
    ]);
    let (mut ti, mut tl, mut gi, mut gl) = (0u64, 0u64, 0u64, 0u64);
    for (i, w) in engine.suite().iter().enumerate() {
        let (toc_i, toc_l) = counts[2 * i];
        let (gp_i, gp_l) = counts[2 * i + 1];
        ti += toc_i;
        tl += toc_l;
        gi += gp_i;
        gl += gp_l;
        t.row(vec![
            Cell::text(w.name),
            Cell::text(w.description),
            Cell::text(w.input),
            Cell::Millions(toc_i),
            Cell::Millions(toc_l),
            Cell::Millions(gp_i),
            Cell::Millions(gp_l),
        ]);
    }
    t.row(vec![
        Cell::text("Total"),
        Cell::Empty,
        Cell::Empty,
        Cell::Millions(ti),
        Cell::Millions(tl),
        Cell::Millions(gi),
        Cell::Millions(gl),
    ]);
    report.section(None, t);
    report.note(
        "Note: Toc = PowerPC-style codegen (TOC address loads), Gp = Alpha-style\n\
         (ALU address synthesis); the Toc load count is higher for the same program,\n\
         as on the paper's PowerPC vs Alpha binaries.",
    );
    Ok(report)
}

/// Table 2 — the four LVP unit configurations. Static: no jobs.
pub(super) fn table2(_engine: &Engine) -> Result<Report, HarnessError> {
    let mut report = Report::new("table2", "Table 2: LVP Unit Configurations");
    let mut t = ExperimentTable::new(vec![
        "config",
        "LVPT entries",
        "history depth",
        "LCT entries",
        "LCT bits",
        "CVU entries",
    ]);
    for c in presets::table2() {
        if c.perfect {
            t.row(vec![
                Cell::text(c.name.to_string()),
                Cell::text("inf"),
                Cell::text("perfect"),
                Cell::Dash,
                Cell::Dash,
                Cell::text("0"),
            ]);
        } else {
            let depth = if c.lvpt.perfect_selection {
                format!("{}/perf", c.lvpt.history_depth)
            } else {
                c.lvpt.history_depth.to_string()
            };
            t.row(vec![
                Cell::text(c.name.to_string()),
                Cell::Count(c.lvpt.entries as u64),
                Cell::text(depth),
                Cell::Count(c.lct.entries as u64),
                Cell::Count(c.lct.counter_bits as u64),
                Cell::Count(c.cvu.entries as u64),
            ]);
        }
    }
    report.section(None, t);
    report.note("History depth > 1 assumes the paper's hypothetical perfect selection mechanism.");
    Ok(report)
}

/// Table 3 — LCT hit rates for Simple and Limit under both profiles.
pub(super) fn table3(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .profiles([AsmProfile::Gp, AsmProfile::Toc])
        .configs([presets::simple(), presets::limit()])
        .map(|job, ctx| {
            let ann = ctx.job_annotation(job)?;
            Ok((
                ann.stats.unpredictable_hit_rate(),
                ann.stats.predictable_hit_rate(),
            ))
        });
    let rates = engine.run(plan)?;

    let mut report = Report::new("table3", "Table 3: LCT Hit Rates");
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "Gp/Simple unpred",
        "Gp/Simple pred",
        "Gp/Limit unpred",
        "Gp/Limit pred",
        "Toc/Simple unpred",
        "Toc/Simple pred",
        "Toc/Limit unpred",
        "Toc/Limit pred",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for (i, w) in engine.suite().iter().enumerate() {
        let mut row = vec![Cell::text(w.name)];
        for (j, &(u, p)) in rates[4 * i..4 * i + 4].iter().enumerate() {
            gms[2 * j].push(u);
            gms[2 * j + 1].push(p);
            row.push(Cell::Pct(u));
            row.push(Cell::Pct(p));
        }
        t.row(row);
    }
    let mut gm = vec![Cell::text("GM")];
    for g in &gms {
        gm.push(Cell::Pct(geo_mean(g)));
    }
    t.row(gm);
    report.section(None, t);
    report.note(
        "Paper shape (GM row): ~85-90% of unpredictable and ~75-90% of predictable\n\
         loads correctly classified.",
    );
    Ok(report)
}

/// Table 4 — successful constant identification rates.
pub(super) fn table4(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .profiles([AsmProfile::Gp, AsmProfile::Toc])
        .configs([presets::simple(), presets::limit()])
        .map(|job, ctx| Ok(ctx.job_annotation(job)?.stats.constant_rate()));
    let rates = engine.run(plan)?;

    let mut report = Report::new(
        "table4",
        "Table 4: Successful Constant Identification Rates",
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "Gp/Simple",
        "Gp/Limit",
        "Toc/Simple",
        "Toc/Limit",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (i, w) in engine.suite().iter().enumerate() {
        let mut row = vec![Cell::text(w.name)];
        for (j, &r) in rates[4 * i..4 * i + 4].iter().enumerate() {
            gms[j].push(r);
            row.push(Cell::Pct(r));
        }
        t.row(row);
    }
    let mut gm = vec![Cell::text("GM")];
    for g in &gms {
        gm.push(Cell::Pct(geo_mean(g)));
    }
    t.row(gm);
    report.section(None, t);
    report.note(
        "Paper shape: roughly 6-20% of dynamic loads identified as constants;\n\
         near 0% for quick and tomcatv, 30%+ for compress/gperf/sc.",
    );
    Ok(report)
}

/// Table 5 — instruction latencies of the two machine models. Static.
pub(super) fn table5(_engine: &Engine) -> Result<Report, HarnessError> {
    let p = LatencyTable::ppc620();
    let a = LatencyTable::alpha21164();
    let mut report = Report::new(
        "table5",
        "Table 5: Instruction Latencies (result latency, cycles)",
    );
    let mut t = ExperimentTable::new(vec!["instruction class", "PPC 620", "AXP 21164"]);
    for (label, pv, av) in [
        ("Simple Integer", p.int_simple, a.int_simple),
        ("Complex Integer", p.int_complex, a.int_complex),
        ("Load/Store", p.load, a.load),
        ("Simple FP", p.fp_simple, a.fp_simple),
        ("Complex FP", p.fp_complex, a.fp_complex),
        (
            "Branch mispredict",
            p.mispredict_penalty,
            a.mispredict_penalty,
        ),
    ] {
        t.row(vec![Cell::text(label), Cell::Count(pv), Cell::Count(av)]);
    }
    report.section(None, t);
    report.note(
        "Complex integer and complex FP use the midpoint of the paper's ranges\n\
         (620: 1-35 and 18; 21164: 16 and 36-65).",
    );
    Ok(report)
}

/// Table 6 — PowerPC 620+ speedups over the base 620, and the additional
/// speedup of each LVP configuration on the 620+.
pub(super) fn table6(engine: &Engine) -> Result<Report, HarnessError> {
    let configs = [
        presets::simple(),
        presets::constant(),
        presets::limit(),
        presets::perfect(),
    ];
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .map(move |job, ctx| {
            let w = &job.workload;
            let base_620 = ctx.timing(w, job.profile, job.opt, None, &MachineModel::ppc620())?;
            let plus = MachineModel::ppc620_plus();
            let base_plus = ctx.timing(w, job.profile, job.opt, None, &plus)?;
            let uplift = base_plus.speedup_over(&base_620);
            let mut speedups = Vec::new();
            for cfg in &configs {
                let r = ctx.timing(w, job.profile, job.opt, Some(cfg), &plus)?;
                speedups.push(r.speedup_over(&base_plus));
            }
            Ok((base_plus.cycles, uplift, speedups))
        });
    let results = engine.run(plan)?;

    let mut report = Report::new("table6", "Table 6: PowerPC 620+ Speedups");
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "cycles(620+)",
        "620+/620",
        "Simple",
        "Constant",
        "Limit",
        "Perfect",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for (w, (cycles, uplift, speedups)) in engine.suite().iter().zip(&results) {
        gms[0].push(*uplift);
        let mut row = vec![
            Cell::text(w.name),
            Cell::Count(*cycles),
            Cell::Fixed(*uplift, 3),
        ];
        for (i, &s) in speedups.iter().enumerate() {
            gms[i + 1].push(s);
            row.push(Cell::Fixed(s, 3));
        }
        t.row(row);
    }
    let mut gm = vec![Cell::text("GM"), Cell::Empty];
    for g in &gms {
        gm.push(Cell::Fixed(geo_mean(g), 3));
    }
    t.row(gm);
    report.section(None, t);
    report.note(
        "Paper shape (GM): 620+ is ~1.06x the 620; LVP adds ~1.05 (Simple),\n\
         ~1.04 (Constant), ~1.08 (Limit), ~1.11 (Perfect) on top — the relative\n\
         LVP gains are larger on the wider machine than on the base 620.",
    );
    Ok(report)
}
