//! Methodology validation — sampled vs. full-trace simulation.

use crate::engine::Engine;
use crate::error::HarnessError;
use crate::plan::{ExperimentPlan, MachineModel};
use crate::report::{Cell, ExperimentTable, Report};
use lvp_predictor::presets;
use lvp_uarch::{simulate_620, Ppc620Config, SimResult};

const WINDOW: usize = 50_000;
const STRIDE: usize = 500_000; // 10% coverage

/// Methodology — quantifies the error periodic sampling would introduce:
/// the 620 model over every benchmark's full trace vs. 10%-coverage
/// windows, comparing IPC and Simple-LVP speedup.
pub(super) fn methodology_sampling(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .map(|job, ctx| {
            let w = &job.workload;
            let run = ctx.job_run(job)?;
            let ann = ctx.annotation(w, job.profile, job.opt, &presets::simple())?;
            let model = MachineModel::ppc620();
            let full_base = ctx.timing(w, job.profile, job.opt, None, &model)?;
            let full_lvp = ctx.timing(w, job.profile, job.opt, Some(&presets::simple()), &model)?;

            // Sampled: sum cycles/instructions over the windows. The
            // windows are unique to this experiment, so they bypass the
            // timing cache.
            let machine = Ppc620Config::base();
            let mut base_acc = SimResult::default();
            let mut lvp_acc = SimResult::default();
            for window in run.trace.windows(WINDOW, STRIDE) {
                let b = simulate_620(&window.trace, None, &machine);
                let l = simulate_620(
                    &window.trace,
                    Some(window.outcomes(&ann.outcomes)),
                    &machine,
                );
                base_acc.cycles += b.cycles;
                base_acc.instructions += b.instructions;
                lvp_acc.cycles += l.cycles;
                lvp_acc.instructions += l.instructions;
            }

            let err = (base_acc.ipc() - full_base.ipc()).abs() / full_base.ipc();
            Ok((
                full_base.ipc(),
                base_acc.ipc(),
                err,
                full_lvp.speedup_over(&full_base),
                lvp_acc.speedup_over(&base_acc),
            ))
        });
    let results = engine.run(plan)?;

    let mut report = Report::new(
        "methodology_sampling",
        format!("Methodology: full-trace vs sampled (window {WINDOW}, stride {STRIDE}) on the 620"),
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "IPC full",
        "IPC sampled",
        "err",
        "speedup full",
        "speedup sampled",
    ]);
    for (w, &(ipc_full, ipc_sampled, err, sp_full, sp_sampled)) in
        engine.suite().iter().zip(&results)
    {
        t.row(vec![
            Cell::text(w.name),
            Cell::Fixed(ipc_full, 3),
            Cell::Fixed(ipc_sampled, 3),
            Cell::Pct1(err),
            Cell::Fixed(sp_full, 3),
            Cell::Fixed(sp_sampled, 3),
        ]);
    }
    report.section(None, t);
    report.note(
        "Sampled windows inherit warm predictor annotations but cold caches and\n\
         branch predictors, so sampled IPC is biased slightly low; speedup\n\
         ratios are more stable than absolute IPC, which is why the paper (and\n\
         this reproduction) reports speedups.",
    );
    Ok(report)
}
