//! The paper's figures (1, 2, 6–9) as harness plans.

use super::address_ranges;
use crate::engine::Engine;
use crate::error::HarnessError;
use crate::plan::{ExperimentPlan, MachineModel};
use crate::report::{geo_mean, Cell, ExperimentTable, Report};
use lvp_isa::AsmProfile;
use lvp_predictor::presets;
use lvp_predictor::{LocalityMeter, ValueClass};
use lvp_trace::OpKind;
use lvp_uarch::{OperandWaitStats, VerifyLatencyHistogram};

/// Figure 1 — load value locality per benchmark at history depths 1 and
/// 16, for both "architectures" (Gp ≈ Alpha panel, Toc ≈ PowerPC panel).
pub(super) fn fig1(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .profiles([AsmProfile::Gp, AsmProfile::Toc])
        .map(|job, ctx| {
            let run = ctx.job_run(job)?;
            let mut meter = LocalityMeter::paper_default();
            for e in run.trace.iter() {
                meter.observe(e);
            }
            Ok((meter.locality(1), meter.locality(16)))
        });
    let loc = engine.run(plan)?;

    let mut report = Report::new(
        "fig1",
        "Figure 1: Load Value Locality (history depth 1 / depth 16)",
    );
    for (pi, panel) in ["Alpha-style (Gp)", "PowerPC-style (Toc)"]
        .into_iter()
        .enumerate()
    {
        let mut t = ExperimentTable::new(vec!["benchmark", "depth 1", "depth 16"]);
        let (mut d1s, mut d16s) = (Vec::new(), Vec::new());
        for (i, w) in engine.suite().iter().enumerate() {
            let (d1, d16) = loc[2 * i + pi];
            d1s.push(d1);
            d16s.push(d16);
            t.row(vec![Cell::text(w.name), Cell::Pct1(d1), Cell::Pct1(d16)]);
        }
        t.row(vec![
            Cell::text("GM"),
            Cell::Pct1(geo_mean(&d1s)),
            Cell::Pct1(geo_mean(&d16s)),
        ]);
        report.section(Some(panel), t);
    }
    report.note(
        "Paper shape: most integer benchmarks near 50% at depth 1 and 80%+ at\n\
         depth 16; cjpeg, swm256 and tomcatv show poor locality.",
    );
    Ok(report)
}

/// Figure 2 — PowerPC value locality by data type (FP data, integer
/// data, instruction addresses, data addresses) at depths 1 and 16.
pub(super) fn fig2(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .map(|job, ctx| {
            let run = ctx.job_run(job)?;
            let ranges = address_ranges(&run.program);
            let mut meter = LocalityMeter::paper_default().with_ranges(ranges);
            for e in run.trace.iter() {
                meter.observe(e);
            }
            let mut per: Vec<(u64, f64, f64)> = Vec::new();
            for &class in ValueClass::ALL.iter() {
                let loads = meter.class_loads(class);
                if loads == 0 {
                    per.push((0, 0.0, 0.0));
                } else {
                    per.push((
                        loads,
                        meter.class_locality(class, 1),
                        meter.class_locality(class, 16),
                    ));
                }
            }
            Ok(per)
        });
    let results = engine.run(plan)?;

    let mut report = Report::new(
        "fig2",
        "Figure 2: PowerPC (Toc) Value Locality by Data Type (depth 1 / 16)",
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "fp d1",
        "fp d16",
        "int d1",
        "int d16",
        "iaddr d1",
        "iaddr d16",
        "daddr d1",
        "daddr d16",
    ]);
    let n_classes = ValueClass::ALL.len();
    let mut per_class: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); n_classes];
    for (w, per) in engine.suite().iter().zip(&results) {
        let mut row = vec![Cell::text(w.name)];
        for (ci, &(loads, d1, d16)) in per.iter().enumerate() {
            if loads == 0 {
                row.push(Cell::Dash);
                row.push(Cell::Dash);
                continue;
            }
            per_class[ci].0.push(d1);
            per_class[ci].1.push(d16);
            row.push(Cell::Pct1(d1));
            row.push(Cell::Pct1(d16));
        }
        t.row(row);
    }
    let mut gm_row = vec![Cell::text("GM")];
    for (d1s, d16s) in &per_class {
        gm_row.push(Cell::Pct1(geo_mean(d1s)));
        gm_row.push(Cell::Pct1(geo_mean(d16s)));
    }
    t.row(gm_row);
    report.section(None, t);
    report.note(
        "Paper shape: address loads (instruction > data) beat data loads;\n\
         integer data beats floating-point data.",
    );
    Ok(report)
}

/// Figure 6 — base machine model speedups: the 620 with Simple /
/// Constant / Limit / Perfect, the 21164 with Simple / Limit / Perfect.
pub(super) fn fig6(engine: &Engine) -> Result<Report, HarnessError> {
    let mut report = Report::new("fig6", "Figure 6: Base Machine Model Speedups");

    for (heading, profile, machine, configs) in [
        (
            "PowerPC 620 (Toc profile traces)",
            AsmProfile::Toc,
            MachineModel::ppc620(),
            vec![
                presets::simple(),
                presets::constant(),
                presets::limit(),
                presets::perfect(),
            ],
        ),
        (
            "Alpha AXP 21164 (Gp profile traces)",
            AsmProfile::Gp,
            MachineModel::alpha21164(),
            vec![presets::simple(), presets::limit(), presets::perfect()],
        ),
    ] {
        let names: Vec<String> = configs.iter().map(|c| c.name.to_string()).collect();
        let job_configs = configs.clone();
        let plan = ExperimentPlan::new()
            .workloads(engine.suite().to_vec())
            .profiles([profile])
            .map(move |job, ctx| {
                let w = &job.workload;
                let base = ctx.timing(w, job.profile, job.opt, None, &machine)?;
                let mut speedups = Vec::new();
                for cfg in &job_configs {
                    let r = ctx.timing(w, job.profile, job.opt, Some(cfg), &machine)?;
                    speedups.push(r.speedup_over(&base));
                }
                Ok((base.ipc(), speedups))
            });
        let results = engine.run(plan)?;

        let mut headers = vec!["benchmark".to_string(), "base IPC".to_string()];
        headers.extend(names);
        let mut t = ExperimentTable::new(headers);
        let mut gms: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
        for (w, (ipc, speedups)) in engine.suite().iter().zip(&results) {
            let mut row = vec![Cell::text(w.name), Cell::Fixed(*ipc, 3)];
            for (i, &s) in speedups.iter().enumerate() {
                gms[i].push(s);
                row.push(Cell::Fixed(s, 3));
            }
            t.row(row);
        }
        let mut gm = vec![Cell::text("GM"), Cell::Empty];
        for g in &gms {
            gm.push(Cell::Fixed(geo_mean(g), 3));
        }
        t.row(gm);
        report.section(Some(heading), t);
    }

    report.note(
        "Paper shape: 620 GM 1.03 (Simple/Constant), 1.06 (Limit), 1.16-ish (Perfect);\n\
         21164 GM 1.06 (Simple), 1.09 (Limit), 1.16 (Perfect); the 21164 gains\n\
         roughly twice as much as the 620; grep and gawk stand out on both.",
    );
    Ok(report)
}

/// Figure 7 — distribution of load verification latencies per LVP
/// configuration on the 620 and 620+, summed over all benchmarks.
pub(super) fn fig7(engine: &Engine) -> Result<Report, HarnessError> {
    let configs = [
        presets::simple(),
        presets::constant(),
        presets::limit(),
        presets::perfect(),
    ];
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .configs(configs.clone())
        .map(|job, ctx| {
            let mut hists = Vec::new();
            for machine in [MachineModel::ppc620(), MachineModel::ppc620_plus()] {
                let r = ctx.timing(
                    &job.workload,
                    job.profile,
                    job.opt,
                    Some(job.config()?),
                    &machine,
                )?;
                hists.push(r.verify_latency);
            }
            Ok(hists)
        });
    let results = engine.run(plan)?;

    // totals[machine][config]
    let mut totals = vec![vec![VerifyLatencyHistogram::default(); configs.len()]; 2];
    for (j, hists) in results.iter().enumerate() {
        let ci = j % configs.len();
        for (mi, h) in hists.iter().enumerate() {
            totals[mi][ci].merge(h);
        }
    }

    let mut report = Report::new(
        "fig7",
        "Figure 7: Load Verification Latency Distribution (% of correct predictions)",
    );
    for (mi, machine_name) in ["620", "620+"].into_iter().enumerate() {
        let mut t = ExperimentTable::new(vec![
            "config",
            VerifyLatencyHistogram::LABELS[0],
            VerifyLatencyHistogram::LABELS[1],
            VerifyLatencyHistogram::LABELS[2],
            VerifyLatencyHistogram::LABELS[3],
            VerifyLatencyHistogram::LABELS[4],
            VerifyLatencyHistogram::LABELS[5],
        ]);
        for (ci, cfg) in configs.iter().enumerate() {
            let pcts = totals[mi][ci].percentages();
            let mut row = vec![Cell::text(cfg.name.to_string())];
            for p in pcts {
                row.push(Cell::text(format!("{p:.1}%")));
            }
            t.row(row);
        }
        report.section(Some(&format!("PPC {machine_name}")), t);
    }
    report.note(
        "Paper shape: the four configurations look virtually identical, and the\n\
         620+ distribution shifts right (time dilation from its higher\n\
         performance).",
    );
    Ok(report)
}

/// The 620's functional units as the paper groups them in Figure 8.
const FU_GROUPS: [(&str, &[OpKind]); 5] = [
    (
        "BRU",
        &[OpKind::CondBranch, OpKind::Jump, OpKind::IndirectJump],
    ),
    ("MCFX", &[OpKind::IntComplex]),
    ("FPU", &[OpKind::FpSimple, OpKind::FpComplex]),
    ("SCFX", &[OpKind::IntSimple, OpKind::System]),
    ("LSU", &[OpKind::Load, OpKind::Store]),
];

/// Figure 8 — average data-dependency resolution latency by
/// functional-unit type, normalized to the no-LVP baseline.
pub(super) fn fig8(engine: &Engine) -> Result<Report, HarnessError> {
    let configs = [
        presets::simple(),
        presets::constant(),
        presets::limit(),
        presets::perfect(),
    ];
    let mut report = Report::new(
        "fig8",
        "Figure 8: Average Dependency Resolution Latencies (normalized to no-LVP)",
    );
    for machine in [MachineModel::ppc620(), MachineModel::ppc620_plus()] {
        let heading = format!("PPC {}", machine.name());
        let job_machine = machine.clone();
        let job_configs = configs.clone();
        let plan = ExperimentPlan::new()
            .workloads(engine.suite().to_vec())
            .map(move |job, ctx| {
                let w = &job.workload;
                let base = ctx.timing(w, job.profile, job.opt, None, &job_machine)?;
                let mut waits = vec![base.operand_wait.clone()];
                for cfg in &job_configs {
                    let r = ctx.timing(w, job.profile, job.opt, Some(cfg), &job_machine)?;
                    waits.push(r.operand_wait.clone());
                }
                Ok(waits)
            });
        let results = engine.run(plan)?;

        // Aggregate operand-wait stats across the whole suite.
        let mut base_waits = OperandWaitStats::default();
        let mut cfg_waits: Vec<OperandWaitStats> = configs
            .iter()
            .map(|_| OperandWaitStats::default())
            .collect();
        for waits in &results {
            base_waits.merge(&waits[0]);
            for (i, w) in waits[1..].iter().enumerate() {
                cfg_waits[i].merge(w);
            }
        }

        let mut t = ExperimentTable::new(vec![
            "FU type",
            "base (cyc)",
            "Simple",
            "Constant",
            "Limit",
            "Perfect",
        ]);
        for (name, kinds) in FU_GROUPS {
            let base_avg = base_waits.average_of(kinds);
            let mut row = vec![Cell::text(name), Cell::text(format!("{base_avg:.2}"))];
            for waits in &cfg_waits {
                let avg = waits.average_of(kinds);
                let norm = if base_avg > 0.0 {
                    100.0 * avg / base_avg
                } else {
                    100.0
                };
                row.push(Cell::text(format!("{norm:.0}%")));
            }
            t.row(row);
        }
        report.section(Some(&heading), t);
    }
    report.note(
        "Paper shape: BRU and MCFX barely change (their operands are not\n\
         predicted); FPU, SCFX and especially LSU waits drop sharply — LSU by\n\
         about half even with the Simple configuration.",
    );
    Ok(report)
}

/// Figure 9 — percentage of cycles with a data-cache bank conflict, per
/// benchmark, without LVP and with Simple / Constant.
pub(super) fn fig9(engine: &Engine) -> Result<Report, HarnessError> {
    let mut report = Report::new("fig9", "Figure 9: Percentage of Cycles with Bank Conflicts");
    for machine in [MachineModel::ppc620(), MachineModel::ppc620_plus()] {
        let heading = format!("PPC {}", machine.name());
        let job_machine = machine.clone();
        let plan = ExperimentPlan::new()
            .workloads(engine.suite().to_vec())
            .map(move |job, ctx| {
                let w = &job.workload;
                let base = ctx.timing(w, job.profile, job.opt, None, &job_machine)?;
                let simple = ctx.timing(
                    w,
                    job.profile,
                    job.opt,
                    Some(&presets::simple()),
                    &job_machine,
                )?;
                let constant = ctx.timing(
                    w,
                    job.profile,
                    job.opt,
                    Some(&presets::constant()),
                    &job_machine,
                )?;
                Ok((
                    base.bank_conflict_rate(),
                    simple.bank_conflict_rate(),
                    constant.bank_conflict_rate(),
                ))
            });
        let results = engine.run(plan)?;

        let mut t = ExperimentTable::new(vec!["benchmark", "base", "Simple", "Constant"]);
        let (mut sb, mut ss, mut sc) = (0.0f64, 0.0f64, 0.0f64);
        let mut n = 0usize;
        for (w, &(b, s, c)) in engine.suite().iter().zip(&results) {
            sb += b;
            ss += s;
            sc += c;
            n += 1;
            t.row(vec![
                Cell::text(w.name),
                Cell::Pct1(b),
                Cell::Pct1(s),
                Cell::Pct1(c),
            ]);
        }
        t.row(vec![
            Cell::text("Mean"),
            Cell::Pct1(sb / n as f64),
            Cell::Pct1(ss / n as f64),
            Cell::Pct1(sc / n as f64),
        ]);
        report.section(Some(&heading), t);
    }
    report.note(
        "Paper shape: conflicts in ~2.6% of 620 cycles and ~6.9% of 620+ cycles\n\
         (the extra LSU shares the same two banks); Simple cuts them ~5-9% and\n\
         Constant ~14%, with occasional small relative increases from time\n\
         dilation.",
    );
    Ok(report)
}
