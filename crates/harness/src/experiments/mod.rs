//! The experiment registry: every table, figure and ablation of the
//! evaluation as a named, declarative plan over the engine.
//!
//! Each experiment is a function from an [`Engine`] to a [`Report`]; the
//! registry maps the historical binary names (`table1`, `fig6`,
//! `ablation_lvpt`, ...) to those functions so that one process — `lvp
//! bench --all` — can run any subset while sharing every trace,
//! annotation and timing simulation through the engine's caches. The
//! per-experiment binaries are one-line wrappers over [`bin_main`].

mod ablations;
mod figs;
mod methodology;
mod tables;

use crate::engine::Engine;
use crate::error::HarnessError;
use crate::report::Report;
use lvp_isa::Program;
use lvp_predictor::AddressRanges;

/// One registered experiment.
pub struct ExperimentDef {
    /// Registry name — also the name of the standalone binary.
    pub name: &'static str,
    /// One-line description shown by `lvp bench` listings.
    pub title: &'static str,
    /// Builds the report (runs the plan on the given engine).
    pub run: fn(&Engine) -> Result<Report, HarnessError>,
}

/// All experiments, in the paper's presentation order.
const REGISTRY: [ExperimentDef; 20] = [
    ExperimentDef {
        name: "table1",
        title: "benchmark descriptions & dynamic counts",
        run: tables::table1,
    },
    ExperimentDef {
        name: "fig1",
        title: "load value locality @ depth 1 and 16, both profiles",
        run: figs::fig1,
    },
    ExperimentDef {
        name: "fig2",
        title: "PowerPC value locality by data type",
        run: figs::fig2,
    },
    ExperimentDef {
        name: "table2",
        title: "LVP unit configurations",
        run: tables::table2,
    },
    ExperimentDef {
        name: "table3",
        title: "LCT hit rates",
        run: tables::table3,
    },
    ExperimentDef {
        name: "table4",
        title: "constant identification rates",
        run: tables::table4,
    },
    ExperimentDef {
        name: "table5",
        title: "machine latencies",
        run: tables::table5,
    },
    ExperimentDef {
        name: "fig6",
        title: "base machine speedups (620 + 21164)",
        run: figs::fig6,
    },
    ExperimentDef {
        name: "table6",
        title: "620+ speedups",
        run: tables::table6,
    },
    ExperimentDef {
        name: "fig7",
        title: "load verification latency distribution",
        run: figs::fig7,
    },
    ExperimentDef {
        name: "fig8",
        title: "operand-wait (dependency resolution) latencies",
        run: figs::fig8,
    },
    ExperimentDef {
        name: "fig9",
        title: "cycles with bank conflicts",
        run: figs::fig9,
    },
    ExperimentDef {
        name: "ablation_lvpt",
        title: "LVPT size sweep",
        run: ablations::ablation_lvpt,
    },
    ExperimentDef {
        name: "ablation_lct",
        title: "LCT counter width sweep",
        run: ablations::ablation_lct,
    },
    ExperimentDef {
        name: "ablation_stride",
        title: "value predictor families (stride/FCM/BHR)",
        run: ablations::ablation_stride,
    },
    ExperimentDef {
        name: "ablation_opt",
        title: "compiler optimization vs value locality",
        run: ablations::ablation_opt,
    },
    ExperimentDef {
        name: "ablation_machine",
        title: "machine parallelism vs LVP benefit",
        run: ablations::ablation_machine,
    },
    ExperimentDef {
        name: "ablation_dataflow",
        title: "dataflow limits and value prediction",
        run: ablations::ablation_dataflow,
    },
    ExperimentDef {
        name: "ablation_predictor",
        title: "predictor backend zoo x table geometry",
        run: ablations::ablation_predictor,
    },
    ExperimentDef {
        name: "methodology_sampling",
        title: "full-trace vs sampled simulation error",
        run: methodology::methodology_sampling,
    },
];

/// All registered experiments, in presentation order.
pub fn experiments() -> &'static [ExperimentDef] {
    &REGISTRY
}

/// Looks up one experiment by its registry name.
pub fn experiment(name: &str) -> Option<&'static ExperimentDef> {
    REGISTRY.iter().find(|d| d.name == name)
}

/// Entry point shared by the per-experiment binaries: runs `name` on a
/// full-suite engine and prints the text report, exiting nonzero with
/// the failing workload and phase on error.
pub fn bin_main(name: &str) {
    let Some(def) = experiment(name) else {
        eprintln!("unknown experiment `{name}`");
        std::process::exit(2);
    };
    let engine = Engine::new();
    match (def.run)(&engine) {
        Ok(report) => print!("{}", report.render_text()),
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(1);
        }
    }
}

/// Builds the Figure 2 value classifier from a program's layout.
pub fn address_ranges(program: &Program) -> AddressRanges {
    let l = program.layout();
    AddressRanges {
        text: l.text_base()..l.text_end(),
        data: l.data_base()..l.data_end(),
        stack: l.stack_top().saturating_sub(1 << 20)..l.stack_top() + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for d in experiments() {
            assert!(seen.insert(d.name), "duplicate experiment {}", d.name);
            assert_eq!(experiment(d.name).unwrap().name, d.name);
        }
        assert_eq!(experiments().len(), 20);
        assert!(experiment("nope").is_none());
    }
}
