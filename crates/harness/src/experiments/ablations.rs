//! Beyond-paper ablations as harness plans.

use crate::engine::Engine;
use crate::error::HarnessError;
use crate::plan::{ExperimentPlan, MachineModel};
use crate::report::{geo_mean, Cell, ExperimentTable, Report};
use lvp_lang::OptLevel;
use lvp_predictor::{
    evaluate_predictor, presets, BhrIndexedPredictor, FcmPredictor, LastValuePredictor,
    LoadProfiler, LocalityMeter, LvpConfig, StridePredictor, ValuePredictor,
};
use lvp_trace::OpKind;
use lvp_uarch::{dataflow_limit, LatencyTable, Ppc620Config};

/// Ablation — LVPT size sweep: accuracy and coverage of the Simple
/// configuration as the value table grows from 64 to 8192 entries.
pub(super) fn ablation_lvpt(engine: &Engine) -> Result<Report, HarnessError> {
    let sizes = [64usize, 256, 1024, 4096, 8192];
    let configs: Vec<LvpConfig> = sizes
        .iter()
        .map(|&n| {
            presets::simple()
                .builder()
                .lvpt_entries(n)
                .named(format!("LVPT{n}"))
                .build()
        })
        .collect();
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .configs(configs)
        .map(|job, ctx| Ok(ctx.job_annotation(job)?.stats));
    let stats = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_lvpt",
        "Ablation: LVPT size sweep (LCT 256x2b, CVU 32 fixed)",
    );
    let mut t = ExperimentTable::new(vec![
        "LVPT entries",
        "accuracy",
        "correct/loads",
        "constants/loads",
    ]);
    for (si, &n) in sizes.iter().enumerate() {
        let (mut correct, mut predictions, mut loads, mut constants) = (0u64, 0u64, 0u64, 0u64);
        for wi in 0..engine.suite().len() {
            let s = &stats[wi * sizes.len() + si];
            correct += s.correct;
            predictions += s.predictions;
            loads += s.loads;
            constants += s.constants_verified;
        }
        t.row(vec![
            Cell::Count(n as u64),
            Cell::Pct1(correct as f64 / predictions.max(1) as f64),
            Cell::Pct1(correct as f64 / loads.max(1) as f64),
            Cell::Pct1(constants as f64 / loads.max(1) as f64),
        ]);
    }
    report.section(None, t);
    report.note("Expected: accuracy and coverage rise with size and saturate near 1K-4K.");
    Ok(report)
}

/// Ablation — LCT saturating-counter width sweep (1 to 4 bits).
pub(super) fn ablation_lct(engine: &Engine) -> Result<Report, HarnessError> {
    let bits: Vec<u8> = (1..=4).collect();
    let configs: Vec<LvpConfig> = bits
        .iter()
        .map(|&b| {
            presets::simple()
                .builder()
                .lct_bits(b)
                .named(format!("LCT{b}b"))
                .build()
        })
        .collect();
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .configs(configs)
        .map(|job, ctx| Ok(ctx.job_annotation(job)?.stats));
    let stats = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_lct",
        "Ablation: LCT saturating-counter width sweep (LVPT 1024x1, CVU 32)",
    );
    let mut t = ExperimentTable::new(vec![
        "counter bits",
        "unpred identified",
        "pred identified",
        "accuracy",
        "mispredictions/1k loads",
    ]);
    for (bi, &b) in bits.iter().enumerate() {
        let (mut unpred_n, mut unpred_d) = (0u64, 0u64);
        let (mut pred_n, mut pred_d) = (0u64, 0u64);
        let (mut correct, mut predictions, mut incorrect, mut loads) = (0u64, 0u64, 0u64, 0u64);
        for wi in 0..engine.suite().len() {
            let s = &stats[wi * bits.len() + bi];
            unpred_n += s.unpredictable_identified;
            unpred_d += s.unpredictable();
            pred_n += s.predictable_identified;
            pred_d += s.predictable;
            correct += s.correct;
            predictions += s.predictions;
            incorrect += s.incorrect;
            loads += s.loads;
        }
        t.row(vec![
            Cell::Count(b as u64),
            Cell::Pct1(unpred_n as f64 / unpred_d.max(1) as f64),
            Cell::Pct1(pred_n as f64 / pred_d.max(1) as f64),
            Cell::Pct1(correct as f64 / predictions.max(1) as f64),
            Cell::text(format!(
                "{:.1}",
                1000.0 * incorrect as f64 / loads.max(1) as f64
            )),
        ]);
    }
    report.section(None, t);
    report.note(
        "Expected: wider counters suppress more mispredictions (higher accuracy)\n\
         but identify fewer predictable loads (slower to warm up).",
    );
    Ok(report)
}

/// Ablation — value predictor families: last-value vs stride vs FCM vs
/// BHR-indexed, plus the any-of-4 oracle bound.
pub(super) fn ablation_stride(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .map(|job, ctx| {
            let run = ctx.job_run(job)?;
            let mut lv = LastValuePredictor::new(1024);
            let e_lv = evaluate_predictor(&mut lv, &run.trace);
            let mut st = StridePredictor::new(1024);
            let e_st = evaluate_predictor(&mut st, &run.trace);
            let mut fcm = FcmPredictor::new(1024, 16384);
            let e_fcm = evaluate_predictor(&mut fcm, &run.trace);

            // The BHR-indexed predictor needs branch outcomes interleaved,
            // so it is driven manually; the same pass computes the any-of-4
            // oracle bound.
            let mut bhr = BhrIndexedPredictor::new(4096, 4);
            let mut lv2 = LastValuePredictor::new(1024);
            let mut st2 = StridePredictor::new(1024);
            let mut fcm2 = FcmPredictor::new(1024, 16384);
            let (mut bhr_correct, mut any_correct, mut loads) = (0u64, 0u64, 0u64);
            for e in run.trace.iter() {
                if e.kind == OpKind::CondBranch {
                    let taken = e.branch.expect("branch outcome").taken;
                    bhr.on_branch(taken);
                    continue;
                }
                if !e.is_load() {
                    continue;
                }
                let Some(mem) = e.mem else { continue };
                loads += 1;
                let b = bhr.predict(e.pc) == Some(mem.value);
                let others = lv2.predict(e.pc) == Some(mem.value)
                    || st2.predict(e.pc) == Some(mem.value)
                    || fcm2.predict(e.pc) == Some(mem.value);
                bhr_correct += b as u64;
                any_correct += (b || others) as u64;
                bhr.train(e.pc, mem.value);
                lv2.train(e.pc, mem.value);
                st2.train(e.pc, mem.value);
                fcm2.train(e.pc, mem.value);
            }
            Ok([
                e_lv.hit_rate(),
                e_st.hit_rate(),
                e_fcm.hit_rate(),
                bhr_correct as f64 / loads.max(1) as f64,
                any_correct as f64 / loads.max(1) as f64,
            ])
        });
    let results = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_stride",
        "Ablation: value predictor families (1024-entry L1 tables, hit rate = correct/loads)",
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "last-value",
        "stride",
        "fcm(2)",
        "bhr-indexed",
        "any-of-4",
    ]);
    let mut gms: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for (w, hits) in engine.suite().iter().zip(&results) {
        let mut row = vec![Cell::text(w.name)];
        for (i, &h) in hits.iter().enumerate() {
            gms[i].push(h);
            row.push(Cell::Pct1(h));
        }
        t.row(row);
    }
    let mut gm = vec![Cell::text("GM")];
    for g in &gms {
        gm.push(Cell::Pct1(geo_mean(g)));
    }
    t.row(gm);
    report.section(None, t);
    report.note(
        "Expected: stride wins on induction loads, FCM on periodic sequences,\n\
         BHR-indexing on control-dependent values; the any-of-4 oracle bound\n\
         shows the headroom the paper's future-work section anticipates.",
    );
    Ok(report)
}

/// Ablation — the effect of compiler optimization on value locality
/// (O0 vs O1 under the Toc profile).
pub(super) fn ablation_opt(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .opt_levels([OptLevel::O0, OptLevel::O1])
        .map(|job, ctx| {
            let run = ctx.job_run(job)?;
            let mut meter = LocalityMeter::paper_default();
            let mut profiler = LoadProfiler::new();
            for e in run.trace.iter() {
                meter.observe(e);
                profiler.observe(e);
            }
            Ok((
                run.trace.stats().instructions,
                profiler.static_loads(),
                meter.locality(1),
            ))
        });
    let results = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_opt",
        "Ablation: compiler optimization vs. value locality (Toc profile)",
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "instr O0",
        "instr O1",
        "static loads O0",
        "static loads O1",
        "local@1 O0",
        "local@1 O1",
    ]);
    for (i, w) in engine.suite().iter().enumerate() {
        let (i0, s0, l0) = results[2 * i];
        let (i1, s1, l1) = results[2 * i + 1];
        t.row(vec![
            Cell::text(w.name),
            Cell::Millions(i0),
            Cell::Millions(i1),
            Cell::Count(s0 as u64),
            Cell::Count(s1 as u64),
            Cell::Pct1(l0),
            Cell::Pct1(l1),
        ]);
    }
    report.section(None, t);
    report.note(
        "Expected: O1 trims dynamic instructions; where small loops unroll,\n\
         static load counts rise (one load becomes several copies) and their\n\
         per-copy locality shifts — the effect the paper attributes to\n\
         unrolling-style transformations.",
    );
    Ok(report)
}

/// Scales the 620's machine parallelism (reservation stations, renames,
/// completion buffer) by `factor`.
fn scaled(name: &'static str, factor: f64, n_lsu: usize, mem_per_cycle: usize) -> Ppc620Config {
    let base = Ppc620Config::base();
    let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
    Ppc620Config {
        name,
        rs_per_class: scale(base.rs_per_class),
        gpr_renames: scale(base.gpr_renames),
        fpr_renames: scale(base.fpr_renames),
        completion_buffer: scale(base.completion_buffer),
        n_lsu,
        mem_dispatch_per_cycle: mem_per_cycle,
        ..base
    }
}

/// Ablation — machine parallelism vs. LVP benefit: the 620 family from
/// half-size to double-wide, Simple and Perfect speedups at each point.
pub(super) fn ablation_machine(engine: &Engine) -> Result<Report, HarnessError> {
    let machines = [
        scaled("620/2", 0.5, 1, 1),
        scaled("620", 1.0, 1, 1),
        scaled("620+", 2.0, 2, 2),
        scaled("620x4", 4.0, 2, 2),
    ];
    let models: Vec<MachineModel> = machines.iter().cloned().map(MachineModel::Ppc620).collect();
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .machines(models)
        .map(|job, ctx| {
            let w = &job.workload;
            let base = ctx.job_timing(job, false)?;
            let simple = ctx.timing(
                w,
                job.profile,
                job.opt,
                Some(&presets::simple()),
                job.machine()?,
            )?;
            let perfect = ctx.timing(
                w,
                job.profile,
                job.opt,
                Some(&presets::perfect()),
                job.machine()?,
            )?;
            Ok((
                base.ipc(),
                simple.speedup_over(&base),
                perfect.speedup_over(&base),
            ))
        });
    let results = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_machine",
        "Ablation: machine parallelism vs. LVP benefit (620 family, Toc traces)",
    );
    let mut t = ExperimentTable::new(vec![
        "machine",
        "GM base IPC",
        "GM Simple speedup",
        "GM Perfect speedup",
    ]);
    for (mi, m) in machines.iter().enumerate() {
        let (mut ipcs, mut s_simple, mut s_perfect) = (Vec::new(), Vec::new(), Vec::new());
        for wi in 0..engine.suite().len() {
            let (ipc, s, p) = results[wi * machines.len() + mi];
            ipcs.push(ipc);
            s_simple.push(s);
            s_perfect.push(p);
        }
        t.row(vec![
            Cell::text(m.name),
            Cell::Fixed(geo_mean(&ipcs), 3),
            Cell::Fixed(geo_mean(&s_simple), 3),
            Cell::Fixed(geo_mean(&s_perfect), 3),
        ]);
    }
    report.section(None, t);
    report.note(
        "Expected: the narrow machine cannot exploit the parallelism LVP\n\
         exposes; the benefit grows with machine width and saturates once\n\
         the window exceeds what prediction uncovers — the mismatch the\n\
         paper's future-work section predicts.",
    );
    Ok(report)
}

/// Ablation — distance to the dataflow limit, and how LVP moves it.
pub(super) fn ablation_dataflow(engine: &Engine) -> Result<Report, HarnessError> {
    let plan = ExperimentPlan::new()
        .workloads(engine.suite().to_vec())
        .map(|job, ctx| {
            let w = &job.workload;
            let run = ctx.job_run(job)?;
            let machine = ctx.timing(w, job.profile, job.opt, None, &MachineModel::ppc620())?;
            let lat = LatencyTable::ppc620();
            let base = dataflow_limit(&run.trace, None, &lat);
            let o_simple = ctx.annotation(w, job.profile, job.opt, &presets::simple())?;
            let simple = dataflow_limit(&run.trace, Some(&o_simple.outcomes), &lat);
            let o_perfect = ctx.annotation(w, job.profile, job.opt, &presets::perfect())?;
            let perfect = dataflow_limit(&run.trace, Some(&o_perfect.outcomes), &lat);
            Ok((machine.ipc(), base.ipc(), simple.ipc(), perfect.ipc()))
        });
    let results = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_dataflow",
        "Ablation: dataflow limits and the effect of value prediction (620 latencies)",
    );
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "620 IPC",
        "dataflow IPC",
        "620/limit",
        "limit+Simple",
        "limit+Perfect",
    ]);
    for (w, &(machine_ipc, base_ipc, simple_ipc, perfect_ipc)) in
        engine.suite().iter().zip(&results)
    {
        t.row(vec![
            Cell::text(w.name),
            Cell::text(format!("{machine_ipc:.2}")),
            Cell::text(format!("{base_ipc:.1}")),
            Cell::text(format!("{:.0}%", 100.0 * machine_ipc / base_ipc)),
            Cell::text(format!("{simple_ipc:.1}")),
            Cell::text(format!("{perfect_ipc:.1}")),
        ]);
    }
    report.section(None, t);
    report.note(
        "Expected: real machines capture a small fraction of the dataflow\n\
         limit; LVP raises the limit itself — dramatically under perfect\n\
         prediction — because correct predictions delete true dependence\n\
         edges (the paper's core argument).",
    );
    Ok(report)
}

/// Ablation — the predictor zoo: every backend kind crossed with the
/// three table geometries (LVPT entries, history depth, LCT bits), plus
/// a per-backend scorecard on exactly the loads the static value-flow
/// pass claims are affine (LVP013).
pub(super) fn ablation_predictor(engine: &Engine) -> Result<Report, HarnessError> {
    use lvp_predictor::PredictorKind;

    // 5 kinds x 5 geometries is a 25-config sweep; restrict to the fast
    // subset so the full `lvp bench --all` stays tractable.
    let suite: Vec<lvp_workloads::Workload> = engine
        .suite()
        .iter()
        .filter(|w| crate::engine::FAST_WORKLOADS.contains(&w.name))
        .cloned()
        .collect();

    // Geometry points: an LVPT-entries sweep at the Simple geometry,
    // one deeper-history point, and one 1-bit-LCT point.
    let geometries: Vec<(String, LvpConfig)> = [
        (
            "lvpt256",
            presets::simple().builder().lvpt_entries(256).build(),
        ),
        ("lvpt1024", presets::simple()),
        (
            "lvpt4096",
            presets::simple().builder().lvpt_entries(4096).build(),
        ),
        (
            "depth4",
            presets::simple()
                .builder()
                .history_depth(4)
                .perfect_selection(true)
                .build(),
        ),
        ("lct1b", presets::simple().builder().lct_bits(1).build()),
    ]
    .map(|(label, c)| (label.to_string(), c))
    .into_iter()
    .collect();

    let kinds = PredictorKind::ALL;
    let configs: Vec<LvpConfig> = kinds
        .iter()
        .flat_map(|&k| {
            geometries.iter().map(move |(label, c)| {
                c.clone()
                    .builder()
                    .kind(k)
                    .named(format!("{k}/{label}"))
                    .build()
            })
        })
        .collect();
    let n_geo = geometries.len();

    let plan = ExperimentPlan::new()
        .workloads(suite.clone())
        .configs(configs)
        .map(|job, ctx| Ok(ctx.job_annotation(job)?.stats));
    let stats = engine.run(plan)?;

    let mut report = Report::new(
        "ablation_predictor",
        "Ablation: predictor backend x table geometry (fast subset)",
    );
    let mut t = ExperimentTable::new(vec![
        "backend",
        "geometry",
        "accuracy",
        "correct/loads",
        "constants/loads",
    ]);
    for (ki, &k) in kinds.iter().enumerate() {
        for (gi, (label, _)) in geometries.iter().enumerate() {
            let ci = ki * n_geo + gi;
            let (mut correct, mut predictions, mut loads, mut constants) = (0u64, 0u64, 0u64, 0u64);
            for wi in 0..suite.len() {
                let s = &stats[wi * kinds.len() * n_geo + ci];
                correct += s.correct;
                predictions += s.predictions;
                loads += s.loads;
                constants += s.constants_verified;
            }
            t.row(vec![
                Cell::text(k.as_str()),
                Cell::text(label.clone()),
                Cell::Pct1(correct as f64 / predictions.max(1) as f64),
                Cell::Pct1(correct as f64 / loads.max(1) as f64),
                Cell::Pct1(constants as f64 / loads.max(1) as f64),
            ]);
        }
    }
    report.section(Some("backend x geometry"), t);

    // Scorecard on statically-claimed loads: the value-flow pass's
    // LVP012 (affine-stride) and LVP013 (loop-invariant) claims name
    // the PCs whose values evolve affinely around a loop (stride 0 for
    // the invariant case); last-value, stride, and the hybrid must all
    // score high exactly there.
    let ctx = engine.ctx();
    let scored = [
        PredictorKind::LastValue,
        PredictorKind::Stride,
        PredictorKind::Hybrid,
    ];
    let mut t = ExperimentTable::new(vec![
        "benchmark",
        "claimed pcs",
        "claimed loads",
        "last-value",
        "stride",
        "hybrid",
    ]);
    let mut totals = [0u64; 3];
    let mut total_loads = 0u64;
    for w in &suite {
        let run = ctx.workload_run(w, lvp_isa::AsmProfile::Toc, OptLevel::O0)?;
        // Claimed pcs come from the LVP012/LVP013 diagnostics, not the
        // class table: a loop-invariant load that is *also* provably
        // must-constant keeps the stronger class but still carries its
        // LVP013 diagnostic.
        let affine: std::collections::BTreeSet<u64> = lvp_analyze::analyze_value_flow(&run.program)
            .diagnostics
            .iter()
            .filter(|d| {
                matches!(
                    d.code,
                    lvp_analyze::LintCode::StridePredictableLoad
                        | lvp_analyze::LintCode::LoopInvariantLoad
                )
            })
            .map(|d| d.pc)
            .collect();
        let mut affine_loads = 0u64;
        let mut correct = [0u64; 3];
        for (si, &k) in scored.iter().enumerate() {
            let cfg = presets::simple().builder().kind(k).build();
            let ann = ctx.annotation(w, lvp_isa::AsmProfile::Toc, OptLevel::O0, &cfg)?;
            let mut li = 0usize;
            let mut loads_here = 0u64;
            for e in run.trace.iter() {
                if e.kind == OpKind::Load {
                    if affine.contains(&e.pc) {
                        loads_here += 1;
                        if ann.outcomes[li].usable() {
                            correct[si] += 1;
                        }
                    }
                    li += 1;
                }
            }
            affine_loads = loads_here;
        }
        for (si, c) in correct.iter().enumerate() {
            totals[si] += c;
        }
        total_loads += affine_loads;
        t.row(vec![
            Cell::text(w.name),
            Cell::Count(affine.len() as u64),
            Cell::Count(affine_loads),
            Cell::Pct1(correct[0] as f64 / affine_loads.max(1) as f64),
            Cell::Pct1(correct[1] as f64 / affine_loads.max(1) as f64),
            Cell::Pct1(correct[2] as f64 / affine_loads.max(1) as f64),
        ]);
    }
    t.row(vec![
        Cell::text("total"),
        Cell::Empty,
        Cell::Count(total_loads),
        Cell::Pct1(totals[0] as f64 / total_loads.max(1) as f64),
        Cell::Pct1(totals[1] as f64 / total_loads.max(1) as f64),
        Cell::Pct1(totals[2] as f64 / total_loads.max(1) as f64),
    ]);
    report.section(
        Some("statically-claimed (LVP012/LVP013) loads, usable-rate"),
        t,
    );
    report.note(
        "Expected: the loads the static value-flow pass proves\n\
         affine or loop-invariant are near-fully covered by both the\n\
         last-value and stride backends (an invariant value is a\n\
         confirmed zero stride), the hybrid tracks its best component\n\
         everywhere (so it is never materially below last-value), and\n\
         deeper history only helps the last-value backend (the other\n\
         backends ignore history depth).",
    );
    Ok(report)
}
