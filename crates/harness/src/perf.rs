//! lvp-perf: the in-tree, dependency-free microbenchmark subsystem.
//!
//! A tiny benchmark runner over the repository's real hot paths — the
//! per-entry [`LvpUnit`] dispatch, the 620/21164 cycle models, the
//! LVPT-v2 block codec, and the alias-analysis fixpoint — with:
//!
//! * deterministic, env-pinned iteration counts ([`PerfConfig`]:
//!   `LVP_PERF_ITERS` / `LVP_PERF_WARMUP`),
//! * warmup + N timed iterations per bench, reported as
//!   median/p10/p90 nanoseconds plus the raw samples,
//! * a stable `lvp-perf/1` JSON report ([`PerfReport::to_json`]) that
//!   doubles as the committed baseline format
//!   (`results/perf_baseline.json`), parsed back by
//!   [`PerfReport::from_json`] with typed [`PerfError`]s (malformed
//!   baselines are an error, never a panic), and
//! * a regression gate ([`check`]): each bench present in both report
//!   and baseline fails if its median exceeds the baseline median by
//!   more than a threshold percentage.
//!
//! Timing is wall-clock and therefore machine-dependent: baselines are
//! only meaningful against the machine (and build) that produced them,
//! which is why CI uses a generous threshold. *Everything else* —
//! bench registry, canned traces, sample count, JSON shape — is
//! deterministic.

use lvp_predictor::presets;
use lvp_predictor::{LvpUnit, PredictorKind};
use lvp_trace::{
    read_trace, write_trace, BranchEvent, MemAccess, OpKind, RegRef, Trace, TraceEntry,
};
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config};
use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Environment variable pinning the timed iteration count.
pub const ITERS_ENV: &str = "LVP_PERF_ITERS";
/// Environment variable pinning the warmup iteration count.
pub const WARMUP_ENV: &str = "LVP_PERF_WARMUP";

/// The format tag every `lvp-perf` report and baseline carries.
pub const FORMAT: &str = "lvp-perf/1";

/// Iteration policy for one runner invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfConfig {
    /// Timed iterations per bench (median is taken over these).
    pub iters: u32,
    /// Untimed warmup iterations per bench.
    pub warmup: u32,
}

impl Default for PerfConfig {
    fn default() -> PerfConfig {
        PerfConfig {
            iters: 5,
            warmup: 1,
        }
    }
}

impl PerfConfig {
    /// Builds a config from the raw (pre-read) values of
    /// [`ITERS_ENV`] / [`WARMUP_ENV`]; `None` means unset. Pure, so
    /// tests never have to mutate process environment.
    ///
    /// # Errors
    ///
    /// [`PerfError::BadEnv`] if a value is present but not a positive
    /// integer (warmup may be 0; iters may not).
    pub fn from_values(iters: Option<&str>, warmup: Option<&str>) -> Result<PerfConfig, PerfError> {
        let mut cfg = PerfConfig::default();
        if let Some(v) = iters {
            cfg.iters = v
                .trim()
                .parse::<u32>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| PerfError::BadEnv {
                    var: ITERS_ENV,
                    value: v.to_string(),
                })?;
        }
        if let Some(v) = warmup {
            cfg.warmup = v.trim().parse::<u32>().map_err(|_| PerfError::BadEnv {
                var: WARMUP_ENV,
                value: v.to_string(),
            })?;
        }
        Ok(cfg)
    }

    /// [`PerfConfig::from_values`] over the live process environment.
    ///
    /// # Errors
    ///
    /// [`PerfError::BadEnv`] as for `from_values`.
    pub fn from_env() -> Result<PerfConfig, PerfError> {
        PerfConfig::from_values(
            std::env::var(ITERS_ENV).ok().as_deref(),
            std::env::var(WARMUP_ENV).ok().as_deref(),
        )
    }
}

/// Everything that can go wrong measuring, encoding, parsing, or
/// checking perf reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// An iteration-count environment variable held a non-numeric or
    /// out-of-range value.
    BadEnv {
        /// The offending variable name.
        var: &'static str,
        /// Its raw value.
        value: String,
    },
    /// `--bench` named a bench that is not registered.
    UnknownBench(String),
    /// A baseline file could not be read.
    Io(String),
    /// A baseline/report document is not syntactically valid JSON (of
    /// the subset `lvp-perf/1` uses).
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// The document parsed but is not an `lvp-perf/1` report (wrong or
    /// missing format tag).
    BadFormat(String),
    /// A required field is missing or has the wrong type.
    MissingField(&'static str),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::BadEnv { var, value } => {
                write!(f, "{var} must be a positive integer, got {value:?}")
            }
            PerfError::UnknownBench(name) => {
                write!(f, "unknown bench {name:?} (see `lvp perf --list`)")
            }
            PerfError::Io(msg) => write!(f, "{msg}"),
            PerfError::Parse { at, expected } => {
                write!(f, "malformed JSON at byte {at}: expected {expected}")
            }
            PerfError::BadFormat(got) => {
                write!(f, "not an {FORMAT} document (format tag {got:?})")
            }
            PerfError::MissingField(name) => {
                write!(f, "missing or mistyped field {name:?}")
            }
        }
    }
}

impl std::error::Error for PerfError {}

/// One registered microbenchmark.
pub struct BenchDef {
    /// Stable bench name (the JSON key and `--bench` argument).
    pub name: &'static str,
    /// Whether the bench belongs to the fast (CI) subset.
    pub fast: bool,
    /// One-line description shown by `lvp perf --list`.
    pub what: &'static str,
    run: fn(&PerfConfig) -> Vec<u64>,
}

/// Measured result of one bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// The bench's registered name.
    pub name: String,
    /// Median of the timed samples, nanoseconds.
    pub median_ns: u64,
    /// 10th-percentile sample, nanoseconds.
    pub p10_ns: u64,
    /// 90th-percentile sample, nanoseconds.
    pub p90_ns: u64,
    /// Raw timed samples in measurement order, nanoseconds.
    pub samples_ns: Vec<u64>,
}

/// A full runner invocation: config plus per-bench results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfReport {
    /// Iteration policy the samples were collected under.
    pub config: PerfConfig,
    /// One result per executed bench, in registry order.
    pub results: Vec<BenchResult>,
}

/// One bench whose median regressed past the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// The bench name.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median, nanoseconds.
    pub current_ns: u64,
    /// Relative slowdown in percent, rounded down.
    pub slowdown_pct: u64,
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Deterministic 64-bit LCG (Knuth MMIX constants) for canned inputs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// A canned trace with a realistic mix: 40% ALU, 25% loads (half with
/// stable values so the LVPT/LCT/CVU all see action), 10% stores, 10%
/// complex int/FP, 15% branches. Loads read a coherent simulated memory
/// (a load's value is always the last value stored to its address —
/// the CVU's coherence invariant requires it). Entirely deterministic
/// in `seed`.
fn canned_trace(seed: u64, n: usize) -> Trace {
    let mut rng = Lcg(seed);
    let mut mem: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let r = rng.next();
        let pc = 0x1_0000 + 4 * (r % 211);
        let dst = (10 + (r >> 8) % 8) as u8;
        let src = (10 + (r >> 16) % 8) as u8;
        let e = match r % 100 {
            0..=39 => TraceEntry {
                pc,
                kind: OpKind::IntSimple,
                dst: Some(RegRef::int(dst)),
                srcs: [Some(RegRef::int(src)), None],
                mem: None,
                branch: None,
            },
            40..=64 => {
                // Half the load pcs read a never-stored pc-derived address
                // (stable values, some becoming CVU constants); half read
                // the store pool and churn as stores rewrite it.
                let stable = r.is_multiple_of(2);
                let addr = if stable {
                    0x10_0000 + (pc % 256) * 8
                } else {
                    0x20_0000 + ((r >> 24) % 128) * 8
                };
                let value = *mem.entry(addr).or_insert(addr.wrapping_mul(31));
                TraceEntry {
                    pc,
                    kind: OpKind::Load,
                    dst: Some(RegRef::int(dst)),
                    srcs: [Some(RegRef::int(2)), None],
                    mem: Some(MemAccess {
                        addr,
                        width: 8,
                        value,
                        fp: false,
                    }),
                    branch: None,
                }
            }
            65..=74 => {
                let addr = 0x20_0000 + ((r >> 24) % 128) * 8;
                mem.insert(addr, r);
                TraceEntry {
                    pc,
                    kind: OpKind::Store,
                    dst: None,
                    srcs: [Some(RegRef::int(src)), Some(RegRef::int(2))],
                    mem: Some(MemAccess {
                        addr,
                        width: 8,
                        value: r,
                        fp: false,
                    }),
                    branch: None,
                }
            }
            75..=79 => TraceEntry {
                pc,
                kind: OpKind::IntComplex,
                dst: Some(RegRef::int(dst)),
                srcs: [Some(RegRef::int(src)), Some(RegRef::int(2))],
                mem: None,
                branch: None,
            },
            80..=84 => TraceEntry {
                pc,
                kind: OpKind::FpSimple,
                dst: Some(RegRef::fp(dst)),
                srcs: [Some(RegRef::fp(src)), None],
                mem: None,
                branch: None,
            },
            _ => TraceEntry {
                pc,
                kind: OpKind::CondBranch,
                dst: None,
                srcs: [Some(RegRef::int(src)), None],
                mem: None,
                branch: Some(BranchEvent {
                    taken: !(r >> 32).is_multiple_of(4),
                    target: pc + 8,
                }),
            },
        };
        entries.push(e);
    }
    entries.into_iter().collect()
}

/// Warmup + timed iterations around `f`, excluding setup (done by the
/// caller before this) from every sample.
fn sample<T>(cfg: &PerfConfig, mut f: impl FnMut() -> T) -> Vec<u64> {
    for _ in 0..cfg.warmup {
        black_box(f());
    }
    (0..cfg.iters)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect()
}

fn bench_unit_dispatch(cfg: &PerfConfig, kind: PredictorKind) -> Vec<u64> {
    let trace = canned_trace(0x11, 1_000_000);
    let config = presets::simple().builder().kind(kind).build();
    sample(cfg, || {
        let mut unit = LvpUnit::new(config.clone());
        unit.run_trace(trace.entries())
    })
}

fn bench_sim_620(cfg: &PerfConfig, n: usize) -> Vec<u64> {
    let trace = canned_trace(0x620, n);
    let outcomes = LvpUnit::new(presets::simple()).run_trace(trace.entries());
    let config = Ppc620Config::base();
    sample(cfg, || simulate_620(&trace, Some(&outcomes), &config))
}

fn bench_sim_21164(cfg: &PerfConfig, n: usize) -> Vec<u64> {
    let trace = canned_trace(0x21164, n);
    let outcomes = LvpUnit::new(presets::simple()).run_trace(trace.entries());
    let config = Alpha21164Config::base();
    sample(cfg, || simulate_21164(&trace, Some(&outcomes), &config))
}

fn bench_trace_codec(cfg: &PerfConfig) -> Vec<u64> {
    let trace = canned_trace(0xC0DEC, 262_144);
    let mut encoded = Vec::new();
    write_trace(&mut encoded, &trace).expect("in-memory encode cannot fail");
    sample(cfg, || {
        let mut buf = Vec::with_capacity(encoded.len());
        write_trace(&mut buf, &trace).expect("in-memory encode cannot fail");
        read_trace(buf.as_slice()).expect("roundtrip decode cannot fail")
    })
}

fn bench_alias_fixpoint(cfg: &PerfConfig) -> Vec<u64> {
    // One analysis pass is ~0.1 ms — far too small for a stable sample
    // on a busy machine — so each iteration sweeps the whole fast
    // workload subset several times.
    let programs: Vec<_> = ["sc", "xlisp", "grep", "doduc"]
        .iter()
        .map(|name| {
            let w = lvp_workloads::Workload::by_name(name).expect("suite workload");
            lvp_lang::compile_with(w.source, lvp_isa::AsmProfile::Toc, lvp_lang::OptLevel::O1)
                .expect("suite workload compiles")
        })
        .collect();
    sample(cfg, || {
        let mut last = None;
        for _ in 0..16 {
            for p in &programs {
                last = Some(lvp_analyze::analyze_memory(p));
            }
        }
        last
    })
}

fn bench_ssa_scev(cfg: &PerfConfig) -> Vec<u64> {
    // Same shaping as alias_fixpoint: one value-flow pass (SSA build +
    // scalar evolution + classification) is sub-millisecond, so each
    // iteration sweeps the fast workload subset several times.
    let programs: Vec<_> = ["sc", "xlisp", "grep", "doduc"]
        .iter()
        .map(|name| {
            let w = lvp_workloads::Workload::by_name(name).expect("suite workload");
            lvp_lang::compile_with(w.source, lvp_isa::AsmProfile::Toc, lvp_lang::OptLevel::O1)
                .expect("suite workload compiles")
        })
        .collect();
    sample(cfg, || {
        let mut last = None;
        for _ in 0..16 {
            for p in &programs {
                last = Some(lvp_analyze::analyze_value_flow(p));
            }
        }
        last
    })
}

/// The bench registry, in reporting order.
pub fn benches() -> &'static [BenchDef] {
    &[
        BenchDef {
            name: "unit_dispatch_1m",
            fast: true,
            what: "LvpUnit (LVPT/LCT/CVU) over a canned 1M-entry trace",
            run: |cfg| bench_unit_dispatch(cfg, PredictorKind::LastValue),
        },
        BenchDef {
            name: "unit_dispatch_stride_1m",
            fast: true,
            what: "LvpUnit with the two-delta stride backend, 1M entries",
            run: |cfg| bench_unit_dispatch(cfg, PredictorKind::Stride),
        },
        BenchDef {
            name: "unit_dispatch_context_1m",
            fast: true,
            what: "LvpUnit with the order-4 FCM context backend, 1M entries",
            run: |cfg| bench_unit_dispatch(cfg, PredictorKind::Context),
        },
        BenchDef {
            name: "unit_dispatch_s2l_1m",
            fast: true,
            what: "LvpUnit with the store-to-load forwarding backend, 1M entries",
            run: |cfg| bench_unit_dispatch(cfg, PredictorKind::StoreToLoad),
        },
        BenchDef {
            name: "unit_dispatch_hybrid_1m",
            fast: true,
            what: "LvpUnit with the confidence-arbitrated hybrid backend, 1M entries",
            run: |cfg| bench_unit_dispatch(cfg, PredictorKind::Hybrid),
        },
        BenchDef {
            name: "sim_620_256k",
            fast: true,
            what: "simulate_620 (base config) over 256K annotated entries",
            run: |cfg| bench_sim_620(cfg, 262_144),
        },
        BenchDef {
            name: "sim_620_1m",
            fast: false,
            what: "simulate_620 (base config) over 1M annotated entries",
            run: |cfg| bench_sim_620(cfg, 1_000_000),
        },
        BenchDef {
            name: "sim_21164_256k",
            fast: true,
            what: "simulate_21164 over 256K annotated entries",
            run: |cfg| bench_sim_21164(cfg, 262_144),
        },
        BenchDef {
            name: "sim_21164_1m",
            fast: false,
            what: "simulate_21164 over 1M annotated entries",
            run: |cfg| bench_sim_21164(cfg, 1_000_000),
        },
        BenchDef {
            name: "trace_codec_256k",
            fast: true,
            what: "LVPT-v2 block encode + CRC32 + batch decode, 256K entries",
            run: |cfg| bench_trace_codec(cfg),
        },
        BenchDef {
            name: "alias_fixpoint",
            fast: true,
            what: "alias-analysis fixpoint, 16 sweeps of the 4 fast workloads",
            run: |cfg| bench_alias_fixpoint(cfg),
        },
        BenchDef {
            name: "ssa_scev",
            fast: true,
            what: "value-flow pass (SSA + SCEV + classify), 16 sweeps of the 4 fast workloads",
            run: |cfg| bench_ssa_scev(cfg),
        },
    ]
}

/// Resolves a bench selection: explicit names (validated), else the
/// fast subset or the full registry.
///
/// # Errors
///
/// [`PerfError::UnknownBench`] for a name not in the registry.
pub fn select<'a>(names: &[String], fast_only: bool) -> Result<Vec<&'a BenchDef>, PerfError> {
    let all = benches();
    if names.is_empty() {
        return Ok(all.iter().filter(|b| !fast_only || b.fast).collect());
    }
    names
        .iter()
        .map(|n| {
            all.iter()
                .find(|b| b.name == n.as_str())
                .ok_or_else(|| PerfError::UnknownBench(n.clone()))
        })
        .collect()
}

/// Nearest-rank percentile of a sorted sample set.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let idx = (pct * (sorted.len() as u64 - 1) + 50) / 100;
    sorted[idx as usize]
}

/// Runs the given benches under `cfg`, calling `progress` with each
/// bench name as it starts.
pub fn run(cfg: PerfConfig, selection: &[&BenchDef], mut progress: impl FnMut(&str)) -> PerfReport {
    let mut results = Vec::with_capacity(selection.len());
    for bench in selection {
        progress(bench.name);
        let samples = (bench.run)(&cfg);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        results.push(BenchResult {
            name: bench.name.to_string(),
            median_ns: percentile(&sorted, 50),
            p10_ns: percentile(&sorted, 10),
            p90_ns: percentile(&sorted, 90),
            samples_ns: samples,
        });
    }
    PerfReport {
        config: cfg,
        results,
    }
}

/// Compares `report` against `baseline`: every bench present in both
/// regresses if its median exceeds the baseline median by more than
/// `threshold_pct` percent. Benches present on only one side are
/// ignored (the registry may grow or shrink across commits).
pub fn check(report: &PerfReport, baseline: &PerfReport, threshold_pct: u64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for cur in &report.results {
        let Some(base) = baseline.results.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.median_ns == 0 {
            continue; // degenerate baseline; nothing meaningful to gate
        }
        let limit = (base.median_ns as u128) * (100 + threshold_pct as u128);
        if (cur.median_ns as u128) * 100 > limit {
            regressions.push(Regression {
                name: cur.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur.median_ns,
                slowdown_pct: ((cur.median_ns as u128 * 100) / base.median_ns as u128) as u64 - 100,
            });
        }
    }
    regressions
}

// ---------------------------------------------------------------------
// lvp-perf/1 JSON
// ---------------------------------------------------------------------

impl PerfReport {
    /// Renders the stable `lvp-perf/1` document (4-space indent, one
    /// item per line, fixed key order) — both the `--json` output and
    /// the committed baseline format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("    \"format\": \"{FORMAT}\",\n"));
        out.push_str(&format!("    \"iters\": {},\n", self.config.iters));
        out.push_str(&format!("    \"warmup\": {},\n", self.config.warmup));
        out.push_str("    \"benches\": [");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("        {\n");
            out.push_str(&format!("            \"name\": \"{}\",\n", r.name));
            out.push_str(&format!("            \"median_ns\": {},\n", r.median_ns));
            out.push_str(&format!("            \"p10_ns\": {},\n", r.p10_ns));
            out.push_str(&format!("            \"p90_ns\": {},\n", r.p90_ns));
            let samples: Vec<String> = r.samples_ns.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(
                "            \"samples_ns\": [{}]\n",
                samples.join(", ")
            ));
            out.push_str("        }");
        }
        out.push_str(if self.results.is_empty() {
            "]\n"
        } else {
            "\n    ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses an `lvp-perf/1` document (report or baseline).
    ///
    /// # Errors
    ///
    /// [`PerfError::Parse`] for syntax errors, [`PerfError::BadFormat`]
    /// for a wrong format tag, [`PerfError::MissingField`] for missing
    /// or mistyped required fields. Never panics on hostile input.
    pub fn from_json(text: &str) -> Result<PerfReport, PerfError> {
        let value = json::parse(text)?;
        let root = value.as_object().ok_or(PerfError::MissingField("<root>"))?;
        let format = json::get_str(root, "format")?;
        if format != FORMAT {
            return Err(PerfError::BadFormat(format.to_string()));
        }
        let iters = json::get_u64(root, "iters")?;
        let warmup = json::get_u64(root, "warmup")?;
        if iters == 0 || iters > u32::MAX as u64 || warmup > u32::MAX as u64 {
            return Err(PerfError::MissingField("iters"));
        }
        let benches = json::get_array(root, "benches")?;
        let mut results = Vec::with_capacity(benches.len());
        for b in benches {
            let obj = b.as_object().ok_or(PerfError::MissingField("benches[]"))?;
            let samples = json::get_array(obj, "samples_ns")?
                .iter()
                .map(|v| v.as_u64().ok_or(PerfError::MissingField("samples_ns")))
                .collect::<Result<Vec<u64>, PerfError>>()?;
            results.push(BenchResult {
                name: json::get_str(obj, "name")?.to_string(),
                median_ns: json::get_u64(obj, "median_ns")?,
                p10_ns: json::get_u64(obj, "p10_ns")?,
                p90_ns: json::get_u64(obj, "p90_ns")?,
                samples_ns: samples,
            });
        }
        Ok(PerfReport {
            config: PerfConfig {
                iters: iters as u32,
                warmup: warmup as u32,
            },
            results,
        })
    }
}

/// A minimal JSON reader for the subset `lvp-perf/1` documents use
/// (objects, arrays, strings without escapes beyond `\"`/`\\`,
/// non-negative integers, booleans, null). Hand-rolled because the
/// workspace is intentionally dependency-free.
mod json {
    use super::PerfError;

    #[derive(Debug)]
    pub(super) enum Value {
        Null,
        Bool(#[allow(dead_code)] bool),
        Num(u64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        pub(super) fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub(super) fn get_str<'a>(
        obj: &'a [(String, Value)],
        key: &'static str,
    ) -> Result<&'a str, PerfError> {
        match obj.iter().find(|(k, _)| k == key) {
            Some((_, Value::Str(s))) => Ok(s),
            _ => Err(PerfError::MissingField(key)),
        }
    }

    pub(super) fn get_u64(obj: &[(String, Value)], key: &'static str) -> Result<u64, PerfError> {
        match obj.iter().find(|(k, _)| k == key) {
            Some((_, Value::Num(n))) => Ok(*n),
            _ => Err(PerfError::MissingField(key)),
        }
    }

    pub(super) fn get_array<'a>(
        obj: &'a [(String, Value)],
        key: &'static str,
    ) -> Result<&'a [Value], PerfError> {
        match obj.iter().find(|(k, _)| k == key) {
            Some((_, Value::Array(items))) => Ok(items),
            _ => Err(PerfError::MissingField(key)),
        }
    }

    pub(super) fn parse(text: &str) -> Result<Value, PerfError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "end of document"));
        }
        Ok(value)
    }

    fn err(at: usize, expected: &'static str) -> PerfError {
        PerfError::Parse { at, expected }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, ch: u8, what: &'static str) -> Result<(), PerfError> {
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, what))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, PerfError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b'0'..=b'9') => parse_number(bytes, pos),
            Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
            _ => Err(err(*pos, "a JSON value")),
        }
    }

    fn parse_lit(
        bytes: &[u8],
        pos: &mut usize,
        lit: &'static [u8],
        value: Value,
    ) -> Result<Value, PerfError> {
        if bytes.len() - *pos >= lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(err(*pos, "true/false/null"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, PerfError> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if let Some(b'.' | b'e' | b'E' | b'-' | b'+') = bytes.get(*pos) {
            // lvp-perf/1 numbers are non-negative integers only.
            return Err(err(*pos, "an integer"));
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Value::Num)
            .ok_or(err(start, "an integer"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, PerfError> {
        expect(bytes, pos, b'"', "a string")?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(err(*pos, "a string escape")),
                    }
                    *pos += 1;
                }
                Some(&c) if c >= 0x20 => {
                    // Copy the full UTF-8 sequence starting here.
                    let s = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| err(*pos, "valid UTF-8"))?;
                    let ch = s.chars().next().ok_or(err(*pos, "a character"))?;
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
                _ => return Err(err(*pos, "a string character")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, PerfError> {
        expect(bytes, pos, b'[', "an array")?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err(*pos, "',' or ']'")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, PerfError> {
        expect(bytes, pos, b'{', "an object")?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':', "':'")?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(err(*pos, "',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, u64)]) -> PerfReport {
        PerfReport {
            config: PerfConfig::default(),
            results: pairs
                .iter()
                .map(|&(name, median)| BenchResult {
                    name: name.to_string(),
                    median_ns: median,
                    p10_ns: median.saturating_sub(1),
                    p90_ns: median + 1,
                    samples_ns: vec![median; 3],
                })
                .collect(),
        }
    }

    #[test]
    fn config_from_values_defaults_and_overrides() {
        assert_eq!(
            PerfConfig::from_values(None, None).unwrap(),
            PerfConfig {
                iters: 5,
                warmup: 1
            }
        );
        assert_eq!(
            PerfConfig::from_values(Some("9"), Some("0")).unwrap(),
            PerfConfig {
                iters: 9,
                warmup: 0
            }
        );
        assert!(matches!(
            PerfConfig::from_values(Some("0"), None),
            Err(PerfError::BadEnv { var, .. }) if var == ITERS_ENV
        ));
        assert!(matches!(
            PerfConfig::from_values(None, Some("many")),
            Err(PerfError::BadEnv { var, .. }) if var == WARMUP_ENV
        ));
    }

    #[test]
    fn registry_names_are_unique_and_fast_subset_nonempty() {
        let all = benches();
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate bench names");
        assert!(all.iter().any(|b| b.fast));
        assert!(all.iter().any(|b| !b.fast));
    }

    #[test]
    fn select_validates_names() {
        assert_eq!(select(&[], false).unwrap().len(), benches().len());
        let fast = select(&[], true).unwrap();
        assert!(fast.iter().all(|b| b.fast));
        let picked = select(&["sim_620_256k".to_string()], false).unwrap();
        assert_eq!(picked.len(), 1);
        assert!(matches!(
            select(&["nope".to_string()], false),
            Err(PerfError::UnknownBench(n)) if n == "nope"
        ));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&sorted, 50), 30);
        assert_eq!(percentile(&sorted, 10), 10);
        assert_eq!(percentile(&sorted, 90), 50);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = report(&[("a", 100), ("b", 0)]);
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // Empty report too.
        let empty = PerfReport {
            config: PerfConfig::default(),
            results: Vec::new(),
        };
        assert_eq!(PerfReport::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn check_flags_only_past_threshold() {
        let base = report(&[("a", 1000), ("b", 1000), ("missing", 5)]);
        let cur = report(&[("a", 1100), ("b", 1401), ("extra", 9)]);
        // 10% over on a, 40.1% over on b; threshold 40 flags only b.
        let regs = check(&cur, &base, 40);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "b");
        assert_eq!(regs[0].slowdown_pct, 40);
        assert_eq!(regs[0].baseline_ns, 1000);
        assert_eq!(regs[0].current_ns, 1401);
        // Exactly at threshold passes.
        let regs = check(&report(&[("a", 1400)]), &base, 40);
        assert!(regs.is_empty());
        // Zero-median baselines never divide by zero.
        let regs = check(&report(&[("z", 10)]), &report(&[("z", 0)]), 40);
        assert!(regs.is_empty());
    }

    #[test]
    fn runner_respects_iteration_counts() {
        // A synthetic bench through the public runner machinery.
        let cfg = PerfConfig {
            iters: 4,
            warmup: 0,
        };
        let samples = sample(&cfg, || 2 + 2);
        assert_eq!(samples.len(), 4);
        let defs = select(&["alias_fixpoint".to_string()], false).unwrap();
        let report = run(
            PerfConfig {
                iters: 2,
                warmup: 0,
            },
            &defs,
            |_| {},
        );
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].samples_ns.len(), 2);
        assert!(report.results[0].median_ns > 0);
    }

    #[test]
    fn canned_trace_is_deterministic_and_mixed() {
        let a = canned_trace(7, 10_000);
        let b = canned_trace(7, 10_000);
        assert_eq!(a.entries(), b.entries());
        let stats = a.stats();
        assert!(stats.loads > 1500, "loads {}", stats.loads);
        assert!(stats.stores > 500, "stores {}", stats.stores);
    }
}
