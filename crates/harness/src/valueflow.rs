//! The value-flow static/dynamic cross-check oracle.
//!
//! `lvp-analyze`'s value-flow pass ([`analyze_value_flow`]) makes two
//! kinds of *predictive* claims about loads, and both are falsifiable
//! against a real execution:
//!
//! 1. **Affine-stride** (`LVP012`) — the loaded value follows
//!    `base + i*stride` around its loop. Replaying the trace through a
//!    per-pc [`StridePredictor`] must then achieve at least
//!    [`STRIDE_ACCURACY_FLOOR`] accuracy on that pc once the predictor
//!    is warm ([`ValueFlowViolationKind::StrideMiss`] otherwise).
//! 2. **Must-constant** — the strongest class, inherited from the
//!    provenance pass: the pc must load one value on every execution
//!    ([`ValueFlowViolationKind::ConstantValueChanged`]), and the stride
//!    predictor must nail it as a stride of zero
//!    ([`ValueFlowViolationKind::StrideMiss`]).
//!
//! Claims are only judged when the pc executed at least
//! [`MIN_EXECUTIONS`] times — below that the predictor's 2-instruction
//! warm-up dominates and accuracy is noise, not evidence.
//!
//! The report also runs the *reverse* direction: an emulated last-value
//! LCT is trained on the trace, and statically-*unknown* loads the LCT
//! nevertheless learned predictable are surfaced as `LVP014`
//! diagnostics — not failures, but a measured report of where the
//! static analysis under-approximates (the paper's motivating gap
//! between static classification and dynamic value locality).
//!
//! On top of the class-agnostic stride check, every static class is
//! judged against the *predictor backend it nominates* (the per-kind
//! oracle): affine-stride claims against the two-delta stride backend,
//! must-constant and loop-invariant claims against the last-value
//! backend, and store-to-load-forwardable claims against the
//! store-to-load backend. A claimed pc on which the nominated backend
//! falls below [`BACKEND_ACCURACY_FLOOR`] is a
//! [`ValueFlowViolationKind::BackendMiss`].

use lvp_analyze::{
    analyze_value_flow, lvp014_diagnostics, Diagnostic, LoadPredictability, ValueFlowReport,
};
use lvp_isa::Program;
use lvp_predictor::{
    evaluate_predictor_by_pc, presets, Backend, Lct, LctConfig, LoadClass, PredEval, PredictorKind,
    StridePredictor,
};
use lvp_trace::{OpKind, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Minimum dynamic executions of a pc before its claim is judged.
pub const MIN_EXECUTIONS: u64 = 8;

/// Minimum stride-predictor accuracy a judged claim must reach.
pub const STRIDE_ACCURACY_FLOOR: f64 = 0.95;

/// Minimum accuracy the backend nominated by a static class must reach
/// on a judged claim. Lower than [`STRIDE_ACCURACY_FLOOR`]: the real
/// backends pay warm-up and (for store-to-load) width-aliasing costs the
/// idealized stride predictor does not.
pub const BACKEND_ACCURACY_FLOOR: f64 = 0.90;

/// Minimum fraction of a claimed pc's executions the nominated backend
/// must predict *correctly* (correct/loads). Catches the quiet failure
/// mode where the backend never gains confidence and simply declines to
/// predict a load its class promised it would cover.
pub const BACKEND_COVERAGE_FLOOR: f64 = 0.5;

/// Table sizes for the emulated predictors — large enough that distinct
/// pcs in any workload never alias (texts are ≪ 256 KiB).
const TABLE_ENTRIES: usize = 1 << 16;

/// How a value-flow claim was contradicted dynamically.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueFlowViolationKind {
    /// A claimed-predictable pc fell below the stride-accuracy floor.
    StrideMiss {
        /// The stride the static analysis derived (0 for must-constant).
        claimed_stride: i64,
        /// The pc's dynamic tallies.
        eval: PredEval,
    },
    /// The backend nominated by the static class fell below
    /// [`BACKEND_ACCURACY_FLOOR`] on the claimed pc.
    BackendMiss {
        /// The backend the class nominates.
        kind: PredictorKind,
        /// The pc's dynamic tallies under that backend.
        eval: PredEval,
    },
    /// A must-constant pc loaded two different values.
    ConstantValueChanged {
        /// First value observed.
        first: u64,
        /// A later, different value.
        later: u64,
    },
}

/// One contradiction of a static value-flow claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueFlowViolation {
    /// Pc of the load whose claim was contradicted.
    pub pc: u64,
    /// The static class that made the claim.
    pub class: LoadPredictability,
    /// The kind of contradiction.
    pub kind: ValueFlowViolationKind,
}

impl fmt::Display for ValueFlowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ValueFlowViolationKind::StrideMiss {
                claimed_stride,
                eval,
            } => write!(
                f,
                "{:#x}: claimed {} (stride {}), but the stride predictor managed \
                 {}/{} over {} execution(s) ({:.1}% accuracy)",
                self.pc,
                self.class,
                claimed_stride,
                eval.correct,
                eval.predicted,
                eval.loads,
                eval.accuracy() * 100.0
            ),
            ValueFlowViolationKind::BackendMiss { kind, eval } => write!(
                f,
                "{:#x}: claimed {}, but the {} backend managed {}/{} over {} \
                 execution(s) ({:.1}% accuracy)",
                self.pc,
                self.class,
                kind,
                eval.correct,
                eval.predicted,
                eval.loads,
                eval.accuracy() * 100.0
            ),
            ValueFlowViolationKind::ConstantValueChanged { first, later } => write!(
                f,
                "{:#x}: claimed {}, but loaded {:#x} then {:#x}",
                self.pc, self.class, first, later
            ),
        }
    }
}

/// The value-flow cross-check result for one workload × profile × opt
/// cell.
#[derive(Debug, Clone)]
pub struct ValueFlowCheckReport {
    /// The cell, rendered `workload/profile/opt`.
    pub cell: String,
    /// Statically claimed affine-stride pcs.
    pub affine_pcs: usize,
    /// Statically claimed must-constant pcs.
    pub must_constant_pcs: usize,
    /// Claims that executed often enough to be judged.
    pub judged: usize,
    /// Contradictions found; empty means every judged claim held.
    pub violations: Vec<ValueFlowViolation>,
    /// `LVP014` static-under-approximation diagnostics: statically
    /// unknown, dynamically learned by the LCT. A report, not a
    /// failure.
    pub under_approximations: Vec<Diagnostic>,
}

impl ValueFlowCheckReport {
    /// Whether every judged claim held for this cell.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ValueFlowCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value-flow {}: {} affine claim(s), {} must-constant claim(s), \
             {} judged, {} under-approximation(s): {}",
            self.cell,
            self.affine_pcs,
            self.must_constant_pcs,
            self.judged,
            self.under_approximations.len(),
            if self.passed() { "ok" } else { "FAILED" }
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// The backend a static predictability class nominates for the per-kind
/// oracle (`None` for classes that make no dynamic-coverage promise).
fn nominated_backend(class: &LoadPredictability) -> Option<PredictorKind> {
    match class {
        LoadPredictability::AffineStride(_) => Some(PredictorKind::Stride),
        LoadPredictability::MustConstant | LoadPredictability::LoopInvariant => {
            Some(PredictorKind::LastValue)
        }
        LoadPredictability::StoreToLoadForwardable => Some(PredictorKind::StoreToLoad),
        LoadPredictability::Unknown => None,
    }
}

/// Replays `trace` through one predictor backend (stores feed
/// [`Backend::on_store`], loads predict-then-train) and splits the
/// prediction tallies per load pc.
fn eval_backend_by_pc(kind: PredictorKind, trace: &Trace) -> BTreeMap<u64, PredEval> {
    let cfg = presets::simple()
        .builder()
        .kind(kind)
        .lvpt_entries(TABLE_ENTRIES)
        .build();
    let mut backend = Backend::new(&cfg);
    let mut by_pc: BTreeMap<u64, PredEval> = BTreeMap::new();
    for e in trace.iter() {
        let Some(mem) = e.mem else { continue };
        if e.kind == OpKind::Store {
            backend.on_store(mem.addr, mem.width, mem.value);
            continue;
        }
        if !e.is_load() {
            continue;
        }
        let eval = by_pc.entry(e.pc).or_default();
        eval.loads += 1;
        if let Some(p) = backend.predict(e.pc, mem.addr) {
            eval.predicted += 1;
            if p == mem.value {
                eval.correct += 1;
            }
        }
        backend.train(e.pc, mem.addr, mem.value);
    }
    by_pc
}

/// Runs the value-flow cross-check for one compiled program and its
/// trace; `cell` labels the report (`workload/profile/opt`).
pub fn value_flow_check(program: &Program, trace: &Trace, cell: String) -> ValueFlowCheckReport {
    let report = analyze_value_flow(program);
    value_flow_check_with(&report, trace, cell)
}

/// [`value_flow_check`] over an already-computed static report (the CLI
/// computes the report once for its lint output and reuses it here).
pub fn value_flow_check_with(
    report: &ValueFlowReport,
    trace: &Trace,
    cell: String,
) -> ValueFlowCheckReport {
    // --- Dynamic stride tallies per pc (shared table, per-pc split). ---
    let mut stride = StridePredictor::new(TABLE_ENTRIES);
    let by_pc = evaluate_predictor_by_pc(&mut stride, trace);

    // --- The claims under trial. ---
    let affine: BTreeMap<u64, i64> = report.affine_claims().into_iter().collect();
    let constants: Vec<u64> = report
        .loads
        .iter()
        .filter(|l| l.class == LoadPredictability::MustConstant)
        .map(|l| l.pc)
        .collect();

    let mut judged = 0usize;
    let mut violations = Vec::new();
    for (&pc, &claimed_stride) in &affine {
        let Some(eval) = by_pc.get(&pc) else { continue };
        if eval.loads < MIN_EXECUTIONS {
            continue;
        }
        judged += 1;
        if eval.accuracy() < STRIDE_ACCURACY_FLOOR {
            violations.push(ValueFlowViolation {
                pc,
                class: LoadPredictability::AffineStride(claimed_stride),
                kind: ValueFlowViolationKind::StrideMiss {
                    claimed_stride,
                    eval: *eval,
                },
            });
        }
    }

    // Must-constant: value stability (exact), plus the stride predictor
    // treating it as stride zero once warm.
    let constant_set: BTreeSet<u64> = constants.iter().copied().collect();
    let mut first_value: BTreeMap<u64, u64> = BTreeMap::new();
    for entry in trace.iter() {
        if !entry.is_load() || !constant_set.contains(&entry.pc) {
            continue;
        }
        let Some(mem) = entry.mem else { continue };
        match first_value.get(&entry.pc) {
            None => {
                first_value.insert(entry.pc, mem.value);
            }
            Some(&v) if v != mem.value => violations.push(ValueFlowViolation {
                pc: entry.pc,
                class: LoadPredictability::MustConstant,
                kind: ValueFlowViolationKind::ConstantValueChanged {
                    first: v,
                    later: mem.value,
                },
            }),
            Some(_) => {}
        }
    }
    for &pc in &constants {
        let Some(eval) = by_pc.get(&pc) else { continue };
        if eval.loads < MIN_EXECUTIONS {
            continue;
        }
        judged += 1;
        if eval.accuracy() < STRIDE_ACCURACY_FLOOR {
            violations.push(ValueFlowViolation {
                pc,
                class: LoadPredictability::MustConstant,
                kind: ValueFlowViolationKind::StrideMiss {
                    claimed_stride: 0,
                    eval: *eval,
                },
            });
        }
    }

    // --- Per-kind oracle: each class judged by its nominated backend. ---
    let mut claims_by_kind: BTreeMap<PredictorKind, Vec<(u64, LoadPredictability)>> =
        BTreeMap::new();
    for l in &report.loads {
        if let Some(kind) = nominated_backend(&l.class) {
            claims_by_kind
                .entry(kind)
                .or_default()
                .push((l.pc, l.class));
        }
    }
    for (kind, claims) in &claims_by_kind {
        let backend_by_pc = eval_backend_by_pc(*kind, trace);
        for &(pc, class) in claims {
            let Some(eval) = backend_by_pc.get(&pc) else {
                continue;
            };
            if eval.loads < MIN_EXECUTIONS {
                continue;
            }
            judged += 1;
            let covered = eval.correct as f64 / eval.loads as f64;
            if covered < BACKEND_COVERAGE_FLOOR
                || (eval.predicted > 0 && eval.accuracy() < BACKEND_ACCURACY_FLOOR)
            {
                violations.push(ValueFlowViolation {
                    pc,
                    class,
                    kind: ValueFlowViolationKind::BackendMiss {
                        kind: *kind,
                        eval: *eval,
                    },
                });
            }
        }
    }

    // --- Reverse direction: LVP014 under-approximation report. ---
    // Train an emulated last-value LCT exactly as the LVP unit would
    // (correct = the value repeated), then ask which statically-unknown
    // pcs it nevertheless learned.
    let mut lct = Lct::new(LctConfig {
        entries: TABLE_ENTRIES,
        counter_bits: 2,
    });
    let mut last_value: BTreeMap<u64, u64> = BTreeMap::new();
    for entry in trace.iter() {
        if !entry.is_load() {
            continue;
        }
        let Some(mem) = entry.mem else { continue };
        let correct = last_value.insert(entry.pc, mem.value) == Some(mem.value);
        lct.update(entry.pc, correct);
    }
    let predictable: BTreeSet<u64> = by_pc
        .iter()
        .filter(|(&pc, eval)| {
            eval.loads >= MIN_EXECUTIONS && lct.classify(pc) != LoadClass::DontPredict
        })
        .map(|(&pc, _)| pc)
        .collect();
    let under_approximations = lvp014_diagnostics(report, &predictable);

    violations
        .sort_by(|a, b| (a.pc, format!("{:?}", a.kind)).cmp(&(b.pc, format!("{:?}", b.kind))));
    violations.dedup_by(|a, b| a.pc == b.pc && a.kind == b.kind);

    ValueFlowCheckReport {
        cell,
        affine_pcs: affine.len(),
        must_constant_pcs: constants.len(),
        judged,
        violations,
        under_approximations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};
    use lvp_sim::Machine;

    fn run(src: &str) -> (Program, Trace) {
        let p = Assembler::new(AsmProfile::Gp).assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let t = m.run_traced(10_000_000).unwrap();
        (p, t)
    }

    /// A global counter bumped by a constant each iteration: the memory
    /// induction `LVP012` pattern, 32 iterations.
    const COUNTER_LOOP: &str = ".data\ng: .dword 0\n.text\nmain:\n li t0, 32\n la a0, g\nloop:\n \
         ld a1, 0(a0)\n addi a1, a1, 5\n sd a1, 0(a0)\n addi t0, t0, -1\n \
         bne t0, zero, loop\n out a1\n halt\n";

    #[test]
    fn affine_claim_validated_by_stride_predictor() {
        let (p, t) = run(COUNTER_LOOP);
        let report = analyze_value_flow(&p);
        assert!(
            !report.affine_claims().is_empty(),
            "the counter loop must produce an affine claim"
        );
        let r = value_flow_check(&p, &t, "counter/gp/O0".into());
        assert!(r.passed(), "{r}");
        assert!(r.affine_pcs >= 1);
        assert!(r.judged >= 1, "32 iterations must clear MIN_EXECUTIONS");
    }

    #[test]
    fn must_constant_claims_hold_on_clean_loop() {
        // A loop re-loading a pool constant: must-constant statically,
        // value-stable and stride-0 dynamically.
        let (p, t) = run(
            ".data\nv: .dword 42\n.text\nmain:\n li t0, 16\nloop:\n la a0, v\n \
             ld a1, 0(a0)\n addi t0, t0, -1\n bne t0, zero, loop\n out a1\n halt\n",
        );
        let r = value_flow_check(&p, &t, "const/gp/O0".into());
        assert!(r.passed(), "{r}");
        assert!(r.must_constant_pcs >= 1);
        assert!(r.judged >= 1);
    }

    #[test]
    fn fabricated_stride_claim_is_caught() {
        // Tamper with the static report: claim the constant-loading pc
        // strides by 8. The dynamic side must refute it (the stride
        // predictor predicts stride 0, and the claim's accuracy floor
        // cannot be met by a wrong-stride claim... which shares the same
        // per-pc tally). To make the refutation real, fabricate the
        // claim on a pc whose values actually alternate, where stride
        // accuracy is genuinely poor.
        let (p, t) = run(
            ".data\na: .dword 1\nb: .dword 100\n.text\nmain:\n li t0, 16\n la s0, a\n \
             la s1, b\nloop:\n ld a1, 0(s0)\n ld a2, 0(s1)\n sd a2, 0(s0)\n sd a1, 0(s1)\n \
             addi t0, t0, -1\n bne t0, zero, loop\n out a1\n halt\n",
        );
        let mut report = analyze_value_flow(&p);
        // Find the pc of the first load in the loop (alternates 1/100).
        let alternating_pc = report
            .loads
            .iter()
            .find(|l| l.class == LoadPredictability::Unknown)
            .expect("the swap loop has unknown loads")
            .pc;
        for l in report.loads.iter_mut() {
            if l.pc == alternating_pc {
                l.class = LoadPredictability::AffineStride(8);
            }
        }
        let r = value_flow_check_with(&report, &t, "tampered/gp/O0".into());
        assert!(!r.passed(), "a fabricated stride claim must be refuted");
        assert!(r.violations.iter().any(|v| matches!(
            v.kind,
            ValueFlowViolationKind::StrideMiss {
                claimed_stride: 8,
                ..
            }
        )));
    }

    #[test]
    fn lvp014_reports_learned_but_statically_unknown_loads() {
        // A pointer-chased constant: `ld` through a register loaded from
        // memory is statically unknown, but the value repeats every
        // iteration so the LCT learns it.
        let (p, t) = run(
            ".data\nptr: .dword 0\nval: .dword 77\n.text\nmain:\n la a0, val\n la a1, ptr\n \
             sd a0, 0(a1)\n li t0, 16\nloop:\n ld a2, 0(a1)\n ld a3, 0(a2)\n \
             addi t0, t0, -1\n bne t0, zero, loop\n out a3\n halt\n",
        );
        let r = value_flow_check(&p, &t, "chase/gp/O0".into());
        assert!(r.passed(), "{r}");
        assert!(
            !r.under_approximations.is_empty(),
            "the chased load is statically unknown but dynamically learned"
        );
        assert!(r
            .under_approximations
            .iter()
            .all(|d| d.code == lvp_analyze::LintCode::StaticUnderApprox));
    }

    #[test]
    fn per_kind_oracle_refutes_a_fabricated_affine_claim() {
        // Same tampering as above: the alternating pc cannot be covered
        // by the two-delta stride backend either, so the per-kind
        // oracle must file a BackendMiss naming the stride backend.
        let (p, t) = run(
            ".data\na: .dword 1\nb: .dword 100\n.text\nmain:\n li t0, 16\n la s0, a\n \
             la s1, b\nloop:\n ld a1, 0(s0)\n ld a2, 0(s1)\n sd a2, 0(s0)\n sd a1, 0(s1)\n \
             addi t0, t0, -1\n bne t0, zero, loop\n out a1\n halt\n",
        );
        let mut report = analyze_value_flow(&p);
        let alternating_pc = report
            .loads
            .iter()
            .find(|l| l.class == LoadPredictability::Unknown)
            .expect("the swap loop has unknown loads")
            .pc;
        for l in report.loads.iter_mut() {
            if l.pc == alternating_pc {
                l.class = LoadPredictability::AffineStride(8);
            }
        }
        let r = value_flow_check_with(&report, &t, "tampered/gp/O0".into());
        assert!(r.violations.iter().any(|v| matches!(
            v.kind,
            ValueFlowViolationKind::BackendMiss {
                kind: PredictorKind::Stride,
                ..
            }
        )));
    }

    #[test]
    fn per_kind_oracle_holds_on_clean_claims() {
        // The counter loop's affine claim must be covered by the
        // two-delta stride backend, not just the idealized predictor.
        let (p, t) = run(COUNTER_LOOP);
        let r = value_flow_check(&p, &t, "counter/gp/O0".into());
        assert!(r.passed(), "{r}");
    }

    #[test]
    fn report_renders_cell_and_verdict() {
        let (p, t) = run(COUNTER_LOOP);
        let r = value_flow_check(&p, &t, "unit/gp/O0".into());
        let s = r.to_string();
        assert!(s.starts_with("value-flow unit/gp/O0:"), "{s}");
        assert!(s.contains("ok"), "{s}");
    }

    #[test]
    fn short_runs_are_not_judged() {
        // 3 iterations < MIN_EXECUTIONS: claims exist but are not judged,
        // and cannot fail.
        let (p, t) = run(
            ".data\ng: .dword 0\n.text\nmain:\n li t0, 3\n la a0, g\nloop:\n \
             ld a1, 0(a0)\n addi a1, a1, 5\n sd a1, 0(a0)\n addi t0, t0, -1\n \
             bne t0, zero, loop\n out a1\n halt\n",
        );
        let r = value_flow_check(&p, &t, "short/gp/O0".into());
        assert!(r.passed(), "{r}");
        assert!(r.affine_pcs >= 1);
    }
}
