//! Experiment plans: typed job matrices over the evaluation axes.
//!
//! An [`ExperimentPlan`] describes a cartesian product of (workload ×
//! [`AsmProfile`] × [`OptLevel`] × [`LvpConfig`] × [`MachineModel`]);
//! [`ExperimentPlan::map`] attaches the per-job computation, producing a
//! [`Plan`] the engine can execute in parallel. Jobs are enumerated in a
//! fixed order (workload-major, then profile, opt, config, machine), and
//! the engine merges results in that order — never by completion — so a
//! plan's output is byte-identical at any worker count.

use crate::engine::Ctx;
use crate::error::HarnessError;
use lvp_isa::AsmProfile;
use lvp_lang::OptLevel;
use lvp_predictor::LvpConfig;
use lvp_trace::{PredOutcome, Trace};
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Ppc620Config, SimResult};
use lvp_workloads::Workload;

/// A timing machine model usable as a plan axis.
#[derive(Debug, Clone)]
pub enum MachineModel {
    /// PowerPC 620-class out-of-order core (base or custom-scaled).
    Ppc620(Ppc620Config),
    /// Alpha 21164-class in-order core.
    Alpha21164(Alpha21164Config),
}

impl MachineModel {
    /// The paper's base PowerPC 620.
    pub fn ppc620() -> MachineModel {
        MachineModel::Ppc620(Ppc620Config::base())
    }

    /// The widened PowerPC 620+.
    pub fn ppc620_plus() -> MachineModel {
        MachineModel::Ppc620(Ppc620Config::plus())
    }

    /// The Alpha AXP 21164.
    pub fn alpha21164() -> MachineModel {
        MachineModel::Alpha21164(Alpha21164Config::base())
    }

    /// The model's display name ("620", "620+", "21164", or a custom
    /// scaled-config name).
    pub fn name(&self) -> &'static str {
        match self {
            MachineModel::Ppc620(c) => c.name,
            MachineModel::Alpha21164(c) => c.name,
        }
    }

    /// Runs the cycle-accurate simulation (phase 3) over a trace.
    pub fn simulate(&self, trace: &Trace, outcomes: Option<&[PredOutcome]>) -> SimResult {
        match self {
            MachineModel::Ppc620(c) => simulate_620(trace, outcomes, c),
            MachineModel::Alpha21164(c) => simulate_21164(trace, outcomes, c),
        }
    }

    /// Content key for the timing cache: the full configuration, not
    /// just the name, so custom-scaled models never collide.
    pub(crate) fn cache_key(&self) -> String {
        format!("{self:?}")
    }
}

/// One cell of a job matrix.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Position in plan order (the deterministic merge key).
    pub index: usize,
    /// The workload axis value.
    pub workload: Workload,
    /// The codegen-profile axis value.
    pub profile: AsmProfile,
    /// The optimization-level axis value.
    pub opt: OptLevel,
    /// The LVP-configuration axis value, if the plan has that axis.
    pub config: Option<LvpConfig>,
    /// The machine-model axis value, if the plan has that axis.
    pub machine: Option<MachineModel>,
}

impl JobSpec {
    /// Human-readable job key, e.g. `xlisp/toc/O0/Simple/620`.
    pub fn key(&self) -> String {
        let mut k = format!("{}/{}/{:?}", self.workload.name, self.profile, self.opt);
        if let Some(c) = &self.config {
            k.push('/');
            k.push_str(&c.name);
        }
        if let Some(m) = &self.machine {
            k.push('/');
            k.push_str(m.name());
        }
        k
    }

    /// The job's LVP configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`HarnessError`] (kind
    /// [`ErrorKind::MissingConfigAxis`](crate::error::ErrorKind)) if the
    /// plan has no config axis — an experiment-definition bug surfaced
    /// as a plan-phase error naming the job, never a panic.
    pub fn config(&self) -> Result<&LvpConfig, HarnessError> {
        self.config
            .as_ref()
            .ok_or_else(|| HarnessError::missing_config_axis(self.key()))
    }

    /// The job's machine model.
    ///
    /// # Errors
    ///
    /// Returns a typed [`HarnessError`] (kind
    /// [`ErrorKind::MissingMachineAxis`](crate::error::ErrorKind)) if
    /// the plan has no machine axis.
    pub fn machine(&self) -> Result<&MachineModel, HarnessError> {
        self.machine
            .as_ref()
            .ok_or_else(|| HarnessError::missing_machine_axis(self.key()))
    }
}

/// Builder for a job matrix.
///
/// Unset axes default to a single value: profile [`AsmProfile::Toc`],
/// opt level [`OptLevel::O0`], and *no* config / machine (jobs carry
/// `None`). The workload axis has no default — a plan without workloads
/// has zero jobs.
///
/// # Examples
///
/// ```
/// use lvp_harness::{ExperimentPlan, MachineModel};
/// use lvp_isa::AsmProfile;
/// use lvp_predictor::presets;
///
/// let plan = ExperimentPlan::new()
///     .workloads(lvp_workloads::suite())
///     .profiles([AsmProfile::Gp, AsmProfile::Toc])
///     .configs([presets::simple(), presets::limit()]);
/// assert_eq!(plan.jobs().len(), 17 * 2 * 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExperimentPlan {
    workloads: Vec<Workload>,
    profiles: Vec<AsmProfile>,
    opts: Vec<OptLevel>,
    configs: Vec<LvpConfig>,
    machines: Vec<MachineModel>,
}

impl ExperimentPlan {
    /// An empty plan; add axes with the builder methods.
    pub fn new() -> ExperimentPlan {
        ExperimentPlan::default()
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, ws: impl IntoIterator<Item = Workload>) -> ExperimentPlan {
        self.workloads = ws.into_iter().collect();
        self
    }

    /// Sets the codegen-profile axis (default: `[Toc]`).
    pub fn profiles(mut self, ps: impl IntoIterator<Item = AsmProfile>) -> ExperimentPlan {
        self.profiles = ps.into_iter().collect();
        self
    }

    /// Sets the optimization-level axis (default: `[O0]`).
    pub fn opt_levels(mut self, os: impl IntoIterator<Item = OptLevel>) -> ExperimentPlan {
        self.opts = os.into_iter().collect();
        self
    }

    /// Sets the LVP-configuration axis (default: none).
    pub fn configs(mut self, cs: impl IntoIterator<Item = LvpConfig>) -> ExperimentPlan {
        self.configs = cs.into_iter().collect();
        self
    }

    /// Sets the machine-model axis (default: none).
    pub fn machines(mut self, ms: impl IntoIterator<Item = MachineModel>) -> ExperimentPlan {
        self.machines = ms.into_iter().collect();
        self
    }

    /// Enumerates the job matrix in plan order: workload-major, then
    /// profile, opt level, config, machine.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let profiles: &[AsmProfile] = if self.profiles.is_empty() {
            &[AsmProfile::Toc]
        } else {
            &self.profiles
        };
        let opts: &[OptLevel] = if self.opts.is_empty() {
            &[OptLevel::O0]
        } else {
            &self.opts
        };
        let configs: Vec<Option<LvpConfig>> = if self.configs.is_empty() {
            vec![None]
        } else {
            self.configs.iter().cloned().map(Some).collect()
        };
        let machines: Vec<Option<MachineModel>> = if self.machines.is_empty() {
            vec![None]
        } else {
            self.machines.iter().cloned().map(Some).collect()
        };
        let mut jobs = Vec::new();
        for w in &self.workloads {
            for p in profiles {
                for o in opts {
                    for c in &configs {
                        for m in &machines {
                            jobs.push(JobSpec {
                                index: jobs.len(),
                                workload: *w,
                                profile: *p,
                                opt: *o,
                                config: c.clone(),
                                machine: m.clone(),
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Attaches the per-job computation, producing an executable
    /// [`Plan`]. The closure runs on worker threads; anything it needs
    /// beyond the job spec must be captured (cheaply cloned) into it.
    pub fn map<T, F>(self, f: F) -> Plan<T>
    where
        F: Fn(&JobSpec, &Ctx<'_>) -> Result<T, HarnessError> + Send + Sync + 'static,
    {
        Plan {
            jobs: self.jobs(),
            run: Box::new(f),
        }
    }
}

/// A fully-specified plan: the job matrix plus the per-job computation.
pub struct Plan<T> {
    pub(crate) jobs: Vec<JobSpec>,
    #[allow(clippy::type_complexity)]
    pub(crate) run: Box<dyn Fn(&JobSpec, &Ctx<'_>) -> Result<T, HarnessError> + Send + Sync>,
}

impl<T> Plan<T> {
    /// Number of jobs in the matrix.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_predictor::presets;

    #[test]
    fn cartesian_order_is_workload_major() {
        let ws: Vec<Workload> = lvp_workloads::suite().into_iter().take(2).collect();
        let jobs = ExperimentPlan::new()
            .workloads(ws.clone())
            .profiles([AsmProfile::Gp, AsmProfile::Toc])
            .configs([presets::simple(), presets::limit()])
            .jobs();
        assert_eq!(jobs.len(), 2 * 2 * 2);
        // First four jobs all belong to the first workload.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            assert_eq!(j.workload.name, ws[i / 4].name);
        }
        // Profile is the next-outer axis, config the inner one.
        assert_eq!(jobs[0].profile, AsmProfile::Gp);
        assert_eq!(jobs[0].config().unwrap().name, "Simple");
        assert_eq!(jobs[1].config().unwrap().name, "Limit");
        assert_eq!(jobs[2].profile, AsmProfile::Toc);
    }

    #[test]
    fn unset_axes_default_to_single_none() {
        let jobs = ExperimentPlan::new()
            .workloads(lvp_workloads::suite().into_iter().take(1))
            .jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].profile, AsmProfile::Toc);
        assert_eq!(jobs[0].opt, OptLevel::O0);
        assert!(jobs[0].config.is_none());
        assert!(jobs[0].machine.is_none());
    }

    #[test]
    fn job_keys_are_informative() {
        let jobs = ExperimentPlan::new()
            .workloads(lvp_workloads::suite().into_iter().take(1))
            .configs([presets::simple()])
            .machines([MachineModel::ppc620_plus()])
            .jobs();
        assert_eq!(jobs[0].key(), "cc1-271/toc/O0/Simple/620+");
    }

    #[test]
    fn missing_axis_lookups_are_typed_errors_not_panics() {
        use crate::error::ErrorKind;
        let jobs = ExperimentPlan::new()
            .workloads(lvp_workloads::suite().into_iter().take(1))
            .jobs();
        let config_err = jobs[0].config().unwrap_err();
        assert_eq!(config_err.kind, ErrorKind::MissingConfigAxis);
        assert!(config_err.target.contains("cc1-271"), "{config_err}");
        let machine_err = jobs[0].machine().unwrap_err();
        assert_eq!(machine_err.kind, ErrorKind::MissingMachineAxis);
    }

    #[test]
    fn machine_model_names() {
        assert_eq!(MachineModel::ppc620().name(), "620");
        assert_eq!(MachineModel::ppc620_plus().name(), "620+");
        assert_eq!(MachineModel::alpha21164().name(), "21164");
        // Content keys distinguish models that share nothing but a name.
        assert_ne!(
            MachineModel::ppc620().cache_key(),
            MachineModel::ppc620_plus().cache_key()
        );
    }
}
