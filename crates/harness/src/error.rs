//! The harness error type.
//!
//! Every engine entry point returns [`HarnessError`] instead of
//! panicking, carrying the failing target (workload or experiment name)
//! and the pipeline [`Phase`] so that harness binaries can exit nonzero
//! with a message that pinpoints the failure.

use std::fmt;

/// The pipeline phase in which a harness job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building or resolving an experiment plan.
    Plan,
    /// Phase 1: compiling and functionally simulating a workload.
    Trace,
    /// Phase 2: running the LVP unit over a trace.
    Annotate,
    /// Phase 3: cycle-accurate timing simulation.
    Timing,
    /// Static analysis or the static/dynamic cross-check.
    Analyze,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Plan => "plan",
            Phase::Trace => "trace",
            Phase::Annotate => "annotate",
            Phase::Timing => "timing",
            Phase::Analyze => "analyze",
        })
    }
}

/// Machine-matchable classification of a [`HarnessError`], so callers
/// can distinguish plan-definition bugs from runtime failures without
/// parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A pipeline phase failed at runtime (compile, simulate, validate).
    Failure,
    /// A job asked for its [`LvpConfig`](lvp_predictor::LvpConfig) axis
    /// but the plan never set one.
    MissingConfigAxis,
    /// A job asked for its machine axis but the plan never set one.
    MissingMachineAxis,
}

/// Error from the experiment engine.
///
/// Cloneable (errors are fanned out to every consumer of a failed cache
/// entry) and self-describing: the message names the target and phase,
/// and [`kind`](HarnessError::kind) classifies the failure for
/// `matches!`-style handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// Which pipeline phase failed.
    pub phase: Phase,
    /// The workload (or experiment) that failed.
    pub target: String,
    /// Human-readable cause.
    pub message: String,
    /// Typed classification of the failure.
    pub kind: ErrorKind,
}

impl HarnessError {
    /// Creates a runtime-failure error for `target` failing in `phase`.
    pub fn new(phase: Phase, target: impl Into<String>, message: impl ToString) -> HarnessError {
        HarnessError {
            phase,
            target: target.into(),
            message: message.to_string(),
            kind: ErrorKind::Failure,
        }
    }

    /// A job requested the [`LvpConfig`](lvp_predictor::LvpConfig) axis
    /// from a plan that has none — an experiment-definition bug,
    /// reported as a typed plan-phase error instead of a panic.
    pub fn missing_config_axis(job: impl Into<String>) -> HarnessError {
        HarnessError {
            phase: Phase::Plan,
            target: job.into(),
            message: "plan has no LvpConfig axis but the job asked for one".into(),
            kind: ErrorKind::MissingConfigAxis,
        }
    }

    /// A job requested the machine axis from a plan that has none.
    pub fn missing_machine_axis(job: impl Into<String>) -> HarnessError {
        HarnessError {
            phase: Phase::Plan,
            target: job.into(),
            message: "plan has no machine axis but the job asked for one".into(),
            kind: ErrorKind::MissingMachineAxis,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` failed in {} phase: {}",
            self.target, self.phase, self.message
        )
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_target_and_phase() {
        let e = HarnessError::new(Phase::Trace, "xlisp", "fuel exhausted");
        let s = e.to_string();
        assert!(s.contains("xlisp"), "{s}");
        assert!(s.contains("trace"), "{s}");
        assert!(s.contains("fuel exhausted"), "{s}");
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = HarnessError::new(Phase::Annotate, "quick", "boom");
        assert_eq!(e.clone(), e);
        assert_eq!(e.kind, ErrorKind::Failure);
    }

    #[test]
    fn missing_axis_errors_are_typed() {
        let c = HarnessError::missing_config_axis("sc/toc/O0");
        assert_eq!(c.kind, ErrorKind::MissingConfigAxis);
        assert_eq!(c.phase, Phase::Plan);
        assert!(c.to_string().contains("LvpConfig axis"), "{c}");
        let m = HarnessError::missing_machine_axis("sc/toc/O0");
        assert_eq!(m.kind, ErrorKind::MissingMachineAxis);
        assert!(m.to_string().contains("machine axis"), "{m}");
    }
}
