//! The harness error type.
//!
//! Every engine entry point returns [`HarnessError`] instead of
//! panicking, carrying the failing target (workload or experiment name)
//! and the pipeline [`Phase`] so that harness binaries can exit nonzero
//! with a message that pinpoints the failure.

use std::fmt;

/// The pipeline phase in which a harness job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building or resolving an experiment plan.
    Plan,
    /// Phase 1: compiling and functionally simulating a workload.
    Trace,
    /// Phase 2: running the LVP unit over a trace.
    Annotate,
    /// Phase 3: cycle-accurate timing simulation.
    Timing,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Plan => "plan",
            Phase::Trace => "trace",
            Phase::Annotate => "annotate",
            Phase::Timing => "timing",
        })
    }
}

/// Error from the experiment engine.
///
/// Cloneable (errors are fanned out to every consumer of a failed cache
/// entry) and self-describing: the message names the target and phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// Which pipeline phase failed.
    pub phase: Phase,
    /// The workload (or experiment) that failed.
    pub target: String,
    /// Human-readable cause.
    pub message: String,
}

impl HarnessError {
    /// Creates an error for `target` failing in `phase`.
    pub fn new(phase: Phase, target: impl Into<String>, message: impl ToString) -> HarnessError {
        HarnessError {
            phase,
            target: target.into(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` failed in {} phase: {}",
            self.target, self.phase, self.message
        )
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_target_and_phase() {
        let e = HarnessError::new(Phase::Trace, "xlisp", "fuel exhausted");
        let s = e.to_string();
        assert!(s.contains("xlisp"), "{s}");
        assert!(s.contains("trace"), "{s}");
        assert!(s.contains("fuel exhausted"), "{s}");
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = HarnessError::new(Phase::Annotate, "quick", "boom");
        assert_eq!(e.clone(), e);
    }
}
