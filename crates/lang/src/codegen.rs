//! Code generation: mini-C AST to LRISC assembly text.
//!
//! The generator is deliberately *naive in the places that matter to the
//! paper*: it produces exactly the load-heavy idioms Section 2 attributes
//! value locality to —
//!
//! * globals are re-materialized on every access (`la` + `ld`; under the
//!   Toc profile the `la` itself is a TOC **load**: the paper's
//!   "Addressability" idiom),
//! * scalar locals live in callee-saved registers, so every non-leaf
//!   function restores them (and `ra`) from the stack on exit: the
//!   "call-subgraph identities" idiom,
//! * deep expressions and calls spill temporaries to the frame: the
//!   "register spill code" idiom,
//! * every call saves live caller-saved temporaries around it: glue-like
//!   save/restore traffic.
//!
//! Expression evaluation uses a virtual stack: depths 0..5 live in
//! `t0`–`t4` (`ft0`–`ft5` for floats), deeper values spill to fixed frame
//! slots; `t5`/`t6` (`ft6`/`ft7`) are scratch for operating on spilled
//! values and for address computation.

use crate::ast::*;
use crate::token::LangError;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Number of in-register int expression slots (`t0`..`t4`).
const INT_TEMPS: usize = 5;
/// Number of in-register fp expression slots (`ft0`..`ft5`).
const FP_TEMPS: usize = 6;
/// Spill slots per register file for deep expressions.
const SPILL_SLOTS: usize = 16;
/// Callee-saved integer registers available for scalar locals
/// (`s1`..`s11`; `s0` is left free as a conventional frame pointer).
const INT_SAVED: [&str; 11] = [
    "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
];
/// Callee-saved FP registers for float locals.
const FP_SAVED: [&str; 12] = [
    "fs0", "fs1", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9", "fs10", "fs11",
];
/// Integer argument registers.
const INT_ARGS: [&str; 8] = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"];
/// FP argument registers.
const FP_ARGS: [&str; 8] = ["fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7"];

/// Where a scalar local lives.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    /// Callee-saved integer register.
    SReg(&'static str),
    /// Callee-saved FP register.
    FsReg(&'static str),
    /// Frame slot at `sp + offset`.
    Frame(i64),
}

#[derive(Debug, Clone)]
struct LocalSym {
    slot: Slot,
    elem: ElemType,
    /// `Some(len)` for arrays (always frame-allocated).
    len: Option<u64>,
    ty: Type,
}

#[derive(Debug, Clone)]
struct GlobalSym {
    label: String,
    elem: ElemType,
    len: Option<u64>,
}

#[derive(Debug, Clone)]
struct FuncSig {
    params: Vec<Type>,
    ret: Option<Type>,
}

/// The result of evaluating an expression: a value at a virtual-stack
/// depth in one of the register files.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Val {
    ty: Type,
    depth: usize,
}

/// Emits LRISC assembly for a parsed program.
///
/// # Errors
///
/// Returns a [`LangError`] for any type error, unknown name, arity
/// mismatch, or unsupported construct.
pub fn generate(ast: &ProgramAst) -> Result<String, LangError> {
    Generator::new(ast)?.run(ast)
}

struct Generator {
    globals: HashMap<String, GlobalSym>,
    funcs: HashMap<String, FuncSig>,
    asm: String,
    label_counter: usize,
}

/// Per-function emission state.
struct FnCtx {
    name: String,
    locals: HashMap<String, LocalSym>,
    ret: Option<Type>,
    int_spill_base: i64,
    fp_spill_base: i64,
    callsave_base: i64,
    /// Current virtual-stack depths.
    int_depth: usize,
    fp_depth: usize,
    /// Loop label stack: (continue_target, break_target).
    loops: Vec<(String, String)>,
    epilogue: String,
}

impl Generator {
    fn new(ast: &ProgramAst) -> Result<Generator, LangError> {
        let mut globals = HashMap::new();
        for g in &ast.globals {
            if globals
                .insert(
                    g.name.clone(),
                    GlobalSym {
                        label: format!("g_{}", g.name),
                        elem: g.elem,
                        len: g.len,
                    },
                )
                .is_some()
            {
                return Err(LangError::new(
                    g.line,
                    format!("duplicate global `{}`", g.name),
                ));
            }
        }
        let mut funcs = HashMap::new();
        for f in &ast.funcs {
            let sig = FuncSig {
                params: f.params.iter().map(|(_, t)| *t).collect(),
                ret: f.ret,
            };
            if funcs.insert(f.name.clone(), sig).is_some() {
                return Err(LangError::new(
                    f.line,
                    format!("duplicate function `{}`", f.name),
                ));
            }
        }
        if !funcs.contains_key("main") {
            return Err(LangError::new(0, "program must define `fn main()`"));
        }
        Ok(Generator {
            globals,
            funcs,
            asm: String::new(),
            label_counter: 0,
        })
    }

    fn run(mut self, ast: &ProgramAst) -> Result<String, LangError> {
        self.emit("    .text");
        self.emit("_start:");
        self.emit("    call main");
        self.emit("    halt");
        for f in &ast.funcs {
            self.function(f)?;
        }
        self.emit("    .data");
        let globals: Vec<Global> = ast.globals.clone();
        for g in &globals {
            self.global_data(g)?;
        }
        Ok(std::mem::take(&mut self.asm))
    }

    fn emit(&mut self, line: &str) {
        self.asm.push_str(line);
        self.asm.push('\n');
    }

    fn emitf(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.asm, "{args}");
    }

    fn fresh_label(&mut self, ctx: &FnCtx, tag: &str) -> String {
        self.label_counter += 1;
        format!(".L{}_{}_{}", ctx.name, tag, self.label_counter)
    }

    // ---- globals ----

    fn global_data(&mut self, g: &Global) -> Result<(), LangError> {
        let sym = &self.globals[&g.name];
        let label = sym.label.clone();
        let elem_size = g.elem.size();
        let total = g.len.unwrap_or(1) * elem_size;
        if g.elem != ElemType::Char {
            self.emit("    .align 3");
        }
        self.emitf(format_args!("{label}:"));
        let expect_scalar =
            |lit: &Literal, want: ElemType, line: usize| -> Result<u64, LangError> {
                match (lit, want) {
                    (Literal::Int(v), ElemType::Int) => Ok(*v as u64),
                    (Literal::Int(v), ElemType::Char) => Ok(*v as u64 & 0xff),
                    (Literal::Float(v), ElemType::Float) => Ok(v.to_bits()),
                    (Literal::Int(v), ElemType::Float) => Ok((*v as f64).to_bits()),
                    (Literal::Float(_), _) => {
                        Err(LangError::new(line, "float initializer for integer global"))
                    }
                }
            };
        match &g.init {
            Init::None => self.emitf(format_args!("    .space {total}")),
            Init::Scalar(lit) => {
                if g.len.is_some() {
                    return Err(LangError::new(
                        g.line,
                        "array globals need a list or string initializer",
                    ));
                }
                let bits = expect_scalar(lit, g.elem, g.line)?;
                self.emitf(format_args!("    .dword {bits:#x}"));
            }
            Init::List(items) => {
                let len = g.len.ok_or_else(|| {
                    LangError::new(g.line, "list initializer requires an array global")
                })? as usize;
                if items.len() > len {
                    return Err(LangError::new(
                        g.line,
                        format!(
                            "initializer has {} items but array length is {len}",
                            items.len()
                        ),
                    ));
                }
                for lit in items {
                    let bits = expect_scalar(lit, g.elem, g.line)?;
                    match g.elem {
                        ElemType::Char => self.emitf(format_args!("    .byte {}", bits & 0xff)),
                        _ => self.emitf(format_args!("    .dword {bits:#x}")),
                    }
                }
                let rest = (len - items.len()) as u64 * elem_size;
                if rest > 0 {
                    self.emitf(format_args!("    .space {rest}"));
                }
            }
            Init::Str(s) => {
                if g.elem != ElemType::Char {
                    return Err(LangError::new(
                        g.line,
                        "string initializer requires a char array",
                    ));
                }
                let len = g.len.unwrap() as usize;
                if s.len() + 1 > len {
                    return Err(LangError::new(
                        g.line,
                        format!(
                            "string of {} bytes does not fit in char[{len}]",
                            s.len() + 1
                        ),
                    ));
                }
                let escaped: String = s
                    .chars()
                    .flat_map(|c| match c {
                        '\n' => vec!['\\', 'n'],
                        '\t' => vec!['\\', 't'],
                        '\r' => vec!['\\', 'r'],
                        '"' => vec!['\\', '"'],
                        '\\' => vec!['\\', '\\'],
                        c => vec![c],
                    })
                    .collect();
                self.emitf(format_args!("    .asciiz \"{escaped}\""));
                let rest = len - s.len() - 1;
                if rest > 0 {
                    self.emitf(format_args!("    .space {rest}"));
                }
            }
        }
        Ok(())
    }

    // ---- functions ----

    fn collect_decls<'s>(stmts: &'s [Stmt], out: &mut Vec<&'s Stmt>) {
        for s in stmts {
            match s {
                Stmt::Decl { .. } => out.push(s),
                Stmt::If { then, els, .. } => {
                    Self::collect_decls(then, out);
                    Self::collect_decls(els, out);
                }
                Stmt::While { body, .. } => Self::collect_decls(body, out),
                Stmt::For {
                    init, step, body, ..
                } => {
                    if let Some(i) = init {
                        Self::collect_decls(std::slice::from_ref(i), out);
                    }
                    if let Some(st) = step {
                        Self::collect_decls(std::slice::from_ref(st), out);
                    }
                    Self::collect_decls(body, out);
                }
                Stmt::Block2(a, b) => {
                    Self::collect_decls(std::slice::from_ref(a), out);
                    Self::collect_decls(std::slice::from_ref(b), out);
                }
                _ => {}
            }
        }
    }

    fn function(&mut self, f: &Func) -> Result<(), LangError> {
        // --- allocate slots ---
        let mut locals: HashMap<String, LocalSym> = HashMap::new();
        let mut used_sregs: Vec<&'static str> = Vec::new();
        let mut used_fsregs: Vec<&'static str> = Vec::new();
        let mut frame_locals: Vec<(String, ElemType, Option<u64>)> = Vec::new();

        let mut next_sreg = 0usize;
        let mut next_fsreg = 0usize;
        let mut declare = |name: &str,
                           elem: ElemType,
                           len: Option<u64>,
                           line: usize,
                           locals: &mut HashMap<String, LocalSym>,
                           frame_locals: &mut Vec<(String, ElemType, Option<u64>)>|
         -> Result<(), LangError> {
            if locals.contains_key(name) {
                return Err(LangError::new(line, format!("duplicate local `{name}`")));
            }
            let ty = elem.scalar();
            let slot = if len.is_some() {
                frame_locals.push((name.to_string(), elem, len));
                Slot::Frame(-1) // patched below
            } else {
                match ty {
                    Type::Int if next_sreg < INT_SAVED.len() => {
                        let r = INT_SAVED[next_sreg];
                        next_sreg += 1;
                        used_sregs.push(r);
                        Slot::SReg(r)
                    }
                    Type::Float if next_fsreg < FP_SAVED.len() => {
                        let r = FP_SAVED[next_fsreg];
                        next_fsreg += 1;
                        used_fsregs.push(r);
                        Slot::FsReg(r)
                    }
                    _ => {
                        frame_locals.push((name.to_string(), elem, None));
                        Slot::Frame(-1)
                    }
                }
            };
            locals.insert(
                name.to_string(),
                LocalSym {
                    slot,
                    elem,
                    len,
                    ty,
                },
            );
            Ok(())
        };

        for (pname, pty) in &f.params {
            let elem = match pty {
                Type::Int => ElemType::Int,
                Type::Float => ElemType::Float,
            };
            declare(pname, elem, None, f.line, &mut locals, &mut frame_locals)?;
        }
        let mut decls = Vec::new();
        Self::collect_decls(&f.body, &mut decls);
        for d in decls {
            let Stmt::Decl {
                name,
                elem,
                len,
                line,
            } = d
            else {
                unreachable!()
            };
            declare(name, *elem, *len, *line, &mut locals, &mut frame_locals)?;
        }

        // --- frame layout ---
        // [0..8)                       ra
        // [8..)                        saved s-regs, then fs-regs
        // then                         frame locals (arrays 8-aligned)
        // then                         call-save area (temps live across calls)
        // then                         int spill slots, fp spill slots
        let mut off: i64 = 8;
        let sreg_save_base = off;
        off += used_sregs.len() as i64 * 8;
        let fsreg_save_base = off;
        off += used_fsregs.len() as i64 * 8;
        for (name, elem, len) in &frame_locals {
            let size = elem.size() as i64 * len.unwrap_or(1) as i64;
            off = (off + 7) & !7;
            let sym = locals.get_mut(name).expect("frame local must be declared");
            sym.slot = Slot::Frame(off);
            off += size.max(8);
        }
        off = (off + 7) & !7;
        let callsave_base = off;
        off += ((INT_TEMPS + FP_TEMPS) as i64) * 8;
        let int_spill_base = off;
        off += SPILL_SLOTS as i64 * 8;
        let fp_spill_base = off;
        off += SPILL_SLOTS as i64 * 8;
        let frame_size = (off + 15) & !15;

        let mut ctx = FnCtx {
            name: f.name.clone(),
            locals,
            ret: f.ret,
            int_spill_base,
            fp_spill_base,
            callsave_base,
            int_depth: 0,
            fp_depth: 0,
            loops: Vec::new(),
            epilogue: String::new(),
        };
        ctx.epilogue = self.fresh_label(&ctx, "ret");

        // --- prologue ---
        self.emitf(format_args!("{}:", f.name));
        self.adjust_sp(-frame_size);
        self.emit("    sd ra, 0(sp)");
        for (i, r) in used_sregs.iter().enumerate() {
            self.emitf(format_args!(
                "    sd {r}, {}(sp)",
                sreg_save_base + i as i64 * 8
            ));
        }
        for (i, r) in used_fsregs.iter().enumerate() {
            self.emitf(format_args!(
                "    fsd {r}, {}(sp)",
                fsreg_save_base + i as i64 * 8
            ));
        }
        // Move parameters into their slots.
        let mut int_arg = 0usize;
        let mut fp_arg = 0usize;
        for (pname, pty) in &f.params {
            let sym = ctx.locals[pname].clone();
            match pty {
                Type::Int => {
                    let src = *INT_ARGS.get(int_arg).ok_or_else(|| {
                        LangError::new(f.line, "too many integer parameters (max 8)")
                    })?;
                    int_arg += 1;
                    match &sym.slot {
                        Slot::SReg(r) => self.emitf(format_args!("    mv {r}, {src}")),
                        Slot::Frame(o) => self.store_to_sp(src, *o, 8),
                        Slot::FsReg(_) => unreachable!("int param in fp reg"),
                    }
                }
                Type::Float => {
                    let src = *FP_ARGS.get(fp_arg).ok_or_else(|| {
                        LangError::new(f.line, "too many float parameters (max 8)")
                    })?;
                    fp_arg += 1;
                    match &sym.slot {
                        Slot::FsReg(r) => self.emitf(format_args!("    fmv.d {r}, {src}")),
                        Slot::Frame(o) => self.fstore_to_sp(src, *o),
                        Slot::SReg(_) => unreachable!("fp param in int reg"),
                    }
                }
            }
        }

        // --- body ---
        self.stmts(&f.body, &mut ctx)?;
        debug_assert_eq!(
            ctx.int_depth, 0,
            "int temp stack not empty at end of {}",
            f.name
        );
        debug_assert_eq!(
            ctx.fp_depth, 0,
            "fp temp stack not empty at end of {}",
            f.name
        );

        // --- epilogue ---
        self.emitf(format_args!("{}:", ctx.epilogue));
        for (i, r) in used_fsregs.iter().enumerate() {
            self.emitf(format_args!(
                "    fld {r}, {}(sp)",
                fsreg_save_base + i as i64 * 8
            ));
        }
        for (i, r) in used_sregs.iter().enumerate() {
            self.emitf(format_args!(
                "    ld {r}, {}(sp)",
                sreg_save_base + i as i64 * 8
            ));
        }
        self.emit("    ld ra, 0(sp)");
        self.adjust_sp(frame_size);
        self.emit("    ret");
        Ok(())
    }

    fn adjust_sp(&mut self, delta: i64) {
        if delta == 0 {
            return;
        }
        if (-2048..2048).contains(&delta) {
            self.emitf(format_args!("    addi sp, sp, {delta}"));
        } else {
            self.emitf(format_args!("    li t6, {delta}"));
            self.emit("    add sp, sp, t6");
        }
    }

    /// Emits `sd`/`sw`-style store of `reg` to `sp + off`.
    fn store_to_sp(&mut self, reg: &str, off: i64, _width: u8) {
        if (-2048..2048).contains(&off) {
            self.emitf(format_args!("    sd {reg}, {off}(sp)"));
        } else {
            self.emitf(format_args!("    li t6, {off}"));
            self.emit("    add t6, t6, sp");
            self.emitf(format_args!("    sd {reg}, 0(t6)"));
        }
    }

    fn load_from_sp(&mut self, reg: &str, off: i64) {
        if (-2048..2048).contains(&off) {
            self.emitf(format_args!("    ld {reg}, {off}(sp)"));
        } else {
            self.emitf(format_args!("    li t6, {off}"));
            self.emit("    add t6, t6, sp");
            self.emitf(format_args!("    ld {reg}, 0(t6)"));
        }
    }

    fn fstore_to_sp(&mut self, reg: &str, off: i64) {
        if (-2048..2048).contains(&off) {
            self.emitf(format_args!("    fsd {reg}, {off}(sp)"));
        } else {
            self.emitf(format_args!("    li t6, {off}"));
            self.emit("    add t6, t6, sp");
            self.emitf(format_args!("    fsd {reg}, 0(t6)"));
        }
    }

    fn fload_from_sp(&mut self, reg: &str, off: i64) {
        if (-2048..2048).contains(&off) {
            self.emitf(format_args!("    fld {reg}, {off}(sp)"));
        } else {
            self.emitf(format_args!("    li t6, {off}"));
            self.emit("    add t6, t6, sp");
            self.emitf(format_args!("    fld {reg}, 0(t6)"));
        }
    }

    // ---- statements ----

    fn stmts(&mut self, list: &[Stmt], ctx: &mut FnCtx) -> Result<(), LangError> {
        for s in list {
            self.stmt(s, ctx)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, ctx: &mut FnCtx) -> Result<(), LangError> {
        match s {
            Stmt::Decl { .. } => Ok(()), // slots preallocated
            Stmt::Block2(a, b) => {
                self.stmt(a, ctx)?;
                self.stmt(b, ctx)
            }
            Stmt::Assign { lv, expr, line } => self.assign(lv, expr, *line, ctx),
            Stmt::If { cond, then, els } => {
                let l_else = self.fresh_label(ctx, "else");
                let l_end = self.fresh_label(ctx, "endif");
                let v = self.expr(cond, ctx)?;
                self.expect_int(&v, cond.line())?;
                let r = self.int_operand(v.depth, 0, ctx);
                self.emitf(format_args!("    beqz {r}, {l_else}"));
                self.pop_int(ctx);
                self.stmts(then, ctx)?;
                if els.is_empty() {
                    self.emitf(format_args!("{l_else}:"));
                } else {
                    self.emitf(format_args!("    j {l_end}"));
                    self.emitf(format_args!("{l_else}:"));
                    self.stmts(els, ctx)?;
                    self.emitf(format_args!("{l_end}:"));
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let l_head = self.fresh_label(ctx, "while");
                let l_end = self.fresh_label(ctx, "endwhile");
                self.emitf(format_args!("{l_head}:"));
                let v = self.expr(cond, ctx)?;
                self.expect_int(&v, cond.line())?;
                let r = self.int_operand(v.depth, 0, ctx);
                self.emitf(format_args!("    beqz {r}, {l_end}"));
                self.pop_int(ctx);
                ctx.loops.push((l_head.clone(), l_end.clone()));
                self.stmts(body, ctx)?;
                ctx.loops.pop();
                self.emitf(format_args!("    j {l_head}"));
                self.emitf(format_args!("{l_end}:"));
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i, ctx)?;
                }
                let l_head = self.fresh_label(ctx, "for");
                let l_step = self.fresh_label(ctx, "forstep");
                let l_end = self.fresh_label(ctx, "endfor");
                self.emitf(format_args!("{l_head}:"));
                if let Some(c) = cond {
                    let v = self.expr(c, ctx)?;
                    self.expect_int(&v, c.line())?;
                    let r = self.int_operand(v.depth, 0, ctx);
                    self.emitf(format_args!("    beqz {r}, {l_end}"));
                    self.pop_int(ctx);
                }
                ctx.loops.push((l_step.clone(), l_end.clone()));
                self.stmts(body, ctx)?;
                ctx.loops.pop();
                self.emitf(format_args!("{l_step}:"));
                if let Some(st) = step {
                    self.stmt(st, ctx)?;
                }
                self.emitf(format_args!("    j {l_head}"));
                self.emitf(format_args!("{l_end}:"));
                Ok(())
            }
            Stmt::Return(e, line) => {
                match (e, ctx.ret) {
                    (Some(e), Some(want)) => {
                        let v = self.expr(e, ctx)?;
                        if v.ty != want {
                            return Err(LangError::new(
                                *line,
                                format!("return type mismatch: expected {want}, found {}", v.ty),
                            ));
                        }
                        match v.ty {
                            Type::Int => {
                                let r = self.int_operand(v.depth, 0, ctx);
                                self.emitf(format_args!("    mv a0, {r}"));
                                self.pop_int(ctx);
                            }
                            Type::Float => {
                                let r = self.fp_operand(v.depth, 0, ctx);
                                self.emitf(format_args!("    fmv.d fa0, {r}"));
                                self.pop_fp(ctx);
                            }
                        }
                    }
                    (None, None) => {}
                    (Some(_), None) => {
                        return Err(LangError::new(*line, "void function cannot return a value"));
                    }
                    (None, Some(t)) => {
                        return Err(LangError::new(
                            *line,
                            format!("must return a value of type {t}"),
                        ));
                    }
                }
                let ep = ctx.epilogue.clone();
                self.emitf(format_args!("    j {ep}"));
                Ok(())
            }
            Stmt::Break(line) => {
                let (_, brk) = ctx
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| LangError::new(*line, "`break` outside a loop"))?;
                self.emitf(format_args!("    j {brk}"));
                Ok(())
            }
            Stmt::Continue(line) => {
                let (cont, _) = ctx
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| LangError::new(*line, "`continue` outside a loop"))?;
                self.emitf(format_args!("    j {cont}"));
                Ok(())
            }
            Stmt::Expr(e) => {
                let used = self.expr_or_void(e, ctx)?;
                if let Some(v) = used {
                    match v.ty {
                        Type::Int => self.pop_int(ctx),
                        Type::Float => self.pop_fp(ctx),
                    }
                }
                Ok(())
            }
        }
    }

    fn assign(
        &mut self,
        lv: &LValue,
        expr: &Expr,
        line: usize,
        ctx: &mut FnCtx,
    ) -> Result<(), LangError> {
        match lv {
            LValue::Var(name) => {
                let v = self.expr(expr, ctx)?;
                if let Some(sym) = ctx.locals.get(name).cloned() {
                    if sym.len.is_some() {
                        return Err(LangError::new(
                            line,
                            format!("cannot assign to array `{name}`"),
                        ));
                    }
                    if sym.ty != v.ty {
                        return Err(LangError::new(
                            line,
                            format!(
                                "type mismatch assigning {} to `{name}` of type {}",
                                v.ty, sym.ty
                            ),
                        ));
                    }
                    match (&sym.slot, v.ty) {
                        (Slot::SReg(r), Type::Int) => {
                            let src = self.int_operand(v.depth, 0, ctx);
                            self.emitf(format_args!("    mv {r}, {src}"));
                            self.pop_int(ctx);
                        }
                        (Slot::FsReg(r), Type::Float) => {
                            let src = self.fp_operand(v.depth, 0, ctx);
                            self.emitf(format_args!("    fmv.d {r}, {src}"));
                            self.pop_fp(ctx);
                        }
                        (Slot::Frame(off), Type::Int) => {
                            let src = self.int_operand(v.depth, 0, ctx).to_string();
                            self.store_to_sp(&src, *off, 8);
                            self.pop_int(ctx);
                        }
                        (Slot::Frame(off), Type::Float) => {
                            let src = self.fp_operand(v.depth, 0, ctx).to_string();
                            self.fstore_to_sp(&src, *off);
                            self.pop_fp(ctx);
                        }
                        _ => unreachable!("slot/type mismatch"),
                    }
                    Ok(())
                } else if let Some(gsym) = self.globals.get(name).cloned() {
                    if gsym.len.is_some() {
                        return Err(LangError::new(
                            line,
                            format!("cannot assign to array `{name}`"),
                        ));
                    }
                    let want = gsym.elem.scalar();
                    if want != v.ty {
                        return Err(LangError::new(
                            line,
                            format!(
                                "type mismatch assigning {} to `{name}` of type {want}",
                                v.ty
                            ),
                        ));
                    }
                    self.emitf(format_args!("    la t5, {}", gsym.label));
                    match v.ty {
                        Type::Int => {
                            // Scratch 1 (t6): t5 holds the address.
                            let src = self.int_operand(v.depth, 1, ctx);
                            self.emitf(format_args!("    sd {src}, 0(t5)"));
                            self.pop_int(ctx);
                        }
                        Type::Float => {
                            let src = self.fp_operand(v.depth, 1, ctx);
                            self.emitf(format_args!("    fsd {src}, 0(t5)"));
                            self.pop_fp(ctx);
                        }
                    }
                    Ok(())
                } else {
                    Err(LangError::new(line, format!("unknown variable `{name}`")))
                }
            }
            LValue::Index(name, idx) => {
                // Evaluate index then value; address computation uses t5/t6.
                let (elem, _is_local) = self.array_info(name, line, ctx)?;
                let iv = self.expr(idx, ctx)?;
                self.expect_int(&iv, idx.line())?;
                let vv = self.expr(expr, ctx)?;
                let want = elem.scalar();
                if vv.ty != want {
                    return Err(LangError::new(
                        line,
                        format!("type mismatch storing {} into {elem} array `{name}`", vv.ty),
                    ));
                }
                self.array_addr(name, iv.depth, elem, line, ctx)?; // address into t5
                match (elem, vv.ty) {
                    (ElemType::Char, Type::Int) => {
                        let src = self.int_operand(vv.depth, 1, ctx);
                        self.emitf(format_args!("    sb {src}, 0(t5)"));
                        self.pop_int(ctx);
                    }
                    (ElemType::Int, Type::Int) => {
                        let src = self.int_operand(vv.depth, 1, ctx);
                        self.emitf(format_args!("    sd {src}, 0(t5)"));
                        self.pop_int(ctx);
                    }
                    (ElemType::Float, Type::Float) => {
                        let src = self.fp_operand(vv.depth, 1, ctx);
                        self.emitf(format_args!("    fsd {src}, 0(t5)"));
                        self.pop_fp(ctx);
                    }
                    _ => unreachable!("checked above"),
                }
                self.pop_int(ctx); // index
                Ok(())
            }
        }
    }

    /// Returns (elem type, is_local) of array `name`.
    fn array_info(
        &self,
        name: &str,
        line: usize,
        ctx: &FnCtx,
    ) -> Result<(ElemType, bool), LangError> {
        if let Some(sym) = ctx.locals.get(name) {
            if sym.len.is_none() {
                return Err(LangError::new(line, format!("`{name}` is not an array")));
            }
            Ok((sym.elem, true))
        } else if let Some(g) = self.globals.get(name) {
            if g.len.is_none() {
                return Err(LangError::new(line, format!("`{name}` is not an array")));
            }
            Ok((g.elem, false))
        } else {
            Err(LangError::new(line, format!("unknown array `{name}`")))
        }
    }

    /// Leaves the address of `name[index-at-depth]` in `t5`.
    fn array_addr(
        &mut self,
        name: &str,
        idx_depth: usize,
        elem: ElemType,
        line: usize,
        ctx: &mut FnCtx,
    ) -> Result<(), LangError> {
        // Base address into t5.
        if let Some(sym) = ctx.locals.get(name).cloned() {
            let Slot::Frame(off) = sym.slot else {
                return Err(LangError::new(
                    line,
                    format!("array `{name}` has no frame slot"),
                ));
            };
            if (-2048..2048).contains(&off) {
                self.emitf(format_args!("    addi t5, sp, {off}"));
            } else {
                self.emitf(format_args!("    li t5, {off}"));
                self.emit("    add t5, t5, sp");
            }
        } else {
            let g = self.globals.get(name).expect("checked by array_info");
            let label = g.label.clone();
            self.emitf(format_args!("    la t5, {label}"));
        }
        // Scaled index.
        let idx_reg = self.int_operand(idx_depth, 1, ctx);
        match elem {
            ElemType::Char => {
                self.emitf(format_args!("    add t5, t5, {idx_reg}"));
            }
            _ => {
                self.emitf(format_args!("    slli t6, {idx_reg}, 3"));
                self.emit("    add t5, t5, t6");
            }
        }
        Ok(())
    }

    // ---- expressions ----

    fn expect_int(&self, v: &Val, line: usize) -> Result<(), LangError> {
        if v.ty != Type::Int {
            return Err(LangError::new(
                line,
                format!("expected int, found {}", v.ty),
            ));
        }
        Ok(())
    }

    /// Register name for the int value at `depth`; if spilled, loads it
    /// into scratch `t5` (scratch 0) or `t6` (scratch 1).
    fn int_operand(&mut self, depth: usize, scratch: usize, ctx: &FnCtx) -> &'static str {
        const REGS: [&str; INT_TEMPS] = ["t0", "t1", "t2", "t3", "t4"];
        if depth < INT_TEMPS {
            REGS[depth]
        } else {
            let slot = ctx.int_spill_base + (depth - INT_TEMPS) as i64 * 8;
            let r = if scratch == 0 { "t5" } else { "t6" };
            self.load_from_sp(r, slot);
            r
        }
    }

    /// Register the fp value at `depth` lives in, loading spills into
    /// `ft6`/`ft7`.
    fn fp_operand(&mut self, depth: usize, scratch: usize, ctx: &FnCtx) -> &'static str {
        const REGS: [&str; FP_TEMPS] = ["ft0", "ft1", "ft2", "ft3", "ft4", "ft5"];
        if depth < FP_TEMPS {
            REGS[depth]
        } else {
            let slot = ctx.fp_spill_base + (depth - FP_TEMPS) as i64 * 8;
            let r = if scratch == 0 { "ft6" } else { "ft7" };
            self.fload_from_sp(r, slot);
            r
        }
    }

    /// Destination register for an int result at `depth` (scratch `t5` if
    /// the slot is spilled; caller must invoke [`Self::finish_int`]).
    fn int_dest(&self, depth: usize) -> &'static str {
        const REGS: [&str; INT_TEMPS] = ["t0", "t1", "t2", "t3", "t4"];
        if depth < INT_TEMPS {
            REGS[depth]
        } else {
            "t5"
        }
    }

    fn fp_dest(&self, depth: usize) -> &'static str {
        const REGS: [&str; FP_TEMPS] = ["ft0", "ft1", "ft2", "ft3", "ft4", "ft5"];
        if depth < FP_TEMPS {
            REGS[depth]
        } else {
            "ft6"
        }
    }

    /// Writes back a spilled int result produced in scratch.
    fn finish_int(&mut self, depth: usize, ctx: &FnCtx) {
        if depth >= INT_TEMPS {
            let slot = ctx.int_spill_base + (depth - INT_TEMPS) as i64 * 8;
            self.store_to_sp("t5", slot, 8);
        }
    }

    fn finish_fp(&mut self, depth: usize, ctx: &FnCtx) {
        if depth >= FP_TEMPS {
            let slot = ctx.fp_spill_base + (depth - FP_TEMPS) as i64 * 8;
            self.fstore_to_sp("ft6", slot);
        }
    }

    fn push_int(&mut self, ctx: &mut FnCtx) -> usize {
        let d = ctx.int_depth;
        assert!(
            d < INT_TEMPS + SPILL_SLOTS,
            "expression too deep: more than {} int temporaries",
            INT_TEMPS + SPILL_SLOTS
        );
        ctx.int_depth += 1;
        d
    }

    fn pop_int(&mut self, ctx: &mut FnCtx) {
        debug_assert!(ctx.int_depth > 0, "int temp stack underflow");
        ctx.int_depth -= 1;
    }

    fn push_fp(&mut self, ctx: &mut FnCtx) -> usize {
        let d = ctx.fp_depth;
        assert!(
            d < FP_TEMPS + SPILL_SLOTS,
            "expression too deep: more than {} fp temporaries",
            FP_TEMPS + SPILL_SLOTS
        );
        ctx.fp_depth += 1;
        d
    }

    fn pop_fp(&mut self, ctx: &mut FnCtx) {
        debug_assert!(ctx.fp_depth > 0, "fp temp stack underflow");
        ctx.fp_depth -= 1;
    }

    /// Evaluates an expression that may be a void call; returns `None` for
    /// void results.
    fn expr_or_void(&mut self, e: &Expr, ctx: &mut FnCtx) -> Result<Option<Val>, LangError> {
        if let Expr::Call(name, args, line) = e {
            let is_void = match name.as_str() {
                "out" | "outf" => true,
                "sqrt" | "fabs" => false,
                other => self
                    .funcs
                    .get(other)
                    .ok_or_else(|| LangError::new(*line, format!("unknown function `{other}`")))?
                    .ret
                    .is_none(),
            };
            if is_void {
                self.call(name, args, *line, ctx)?;
                return Ok(None);
            }
        }
        Ok(Some(self.expr(e, ctx)?))
    }

    fn expr(&mut self, e: &Expr, ctx: &mut FnCtx) -> Result<Val, LangError> {
        match e {
            Expr::Int(v) => {
                let d = self.push_int(ctx);
                let rd = self.int_dest(d);
                self.emitf(format_args!("    li {rd}, {v}"));
                self.finish_int(d, ctx);
                Ok(Val {
                    ty: Type::Int,
                    depth: d,
                })
            }
            Expr::Float(v) => {
                let d = self.push_fp(ctx);
                let rd = self.fp_dest(d);
                // `fli` keeps full precision via the constant pool.
                self.emitf(format_args!("    fli {rd}, {v:?}"));
                self.finish_fp(d, ctx);
                Ok(Val {
                    ty: Type::Float,
                    depth: d,
                })
            }
            Expr::Var(name, line) => self.read_var(name, *line, ctx),
            Expr::Index(name, idx, line) => {
                let (elem, _) = self.array_info(name, *line, ctx)?;
                let iv = self.expr(idx, ctx)?;
                self.expect_int(&iv, idx.line())?;
                self.array_addr(name, iv.depth, elem, *line, ctx)?;
                self.pop_int(ctx);
                match elem {
                    ElemType::Char | ElemType::Int => {
                        let d = self.push_int(ctx);
                        let rd = self.int_dest(d);
                        match elem {
                            ElemType::Char => self.emitf(format_args!("    lbu {rd}, 0(t5)")),
                            _ => self.emitf(format_args!("    ld {rd}, 0(t5)")),
                        }
                        self.finish_int(d, ctx);
                        Ok(Val {
                            ty: Type::Int,
                            depth: d,
                        })
                    }
                    ElemType::Float => {
                        let d = self.push_fp(ctx);
                        let rd = self.fp_dest(d);
                        self.emitf(format_args!("    fld {rd}, 0(t5)"));
                        self.finish_fp(d, ctx);
                        Ok(Val {
                            ty: Type::Float,
                            depth: d,
                        })
                    }
                }
            }
            Expr::Call(name, args, line) => self.call(name, args, *line, ctx)?.ok_or_else(|| {
                LangError::new(*line, format!("void function `{name}` used as a value"))
            }),
            Expr::Cast(to, inner, line) => {
                let v = self.expr(inner, ctx)?;
                match (v.ty, to) {
                    (a, b) if a == *b => Ok(v),
                    (Type::Int, Type::Float) => {
                        let src = self.int_operand(v.depth, 0, ctx).to_string();
                        self.pop_int(ctx);
                        let d = self.push_fp(ctx);
                        let rd = self.fp_dest(d);
                        self.emitf(format_args!("    fcvt.d.l {rd}, {src}"));
                        self.finish_fp(d, ctx);
                        Ok(Val {
                            ty: Type::Float,
                            depth: d,
                        })
                    }
                    (Type::Float, Type::Int) => {
                        let src = self.fp_operand(v.depth, 0, ctx).to_string();
                        self.pop_fp(ctx);
                        let d = self.push_int(ctx);
                        let rd = self.int_dest(d);
                        self.emitf(format_args!("    fcvt.l.d {rd}, {src}"));
                        self.finish_int(d, ctx);
                        Ok(Val {
                            ty: Type::Int,
                            depth: d,
                        })
                    }
                    _ => Err(LangError::new(*line, "unsupported cast")),
                }
            }
            Expr::Unary(op, inner, line) => {
                let v = self.expr(inner, ctx)?;
                match (op, v.ty) {
                    (UnOp::Neg, Type::Int) => {
                        let src = self.int_operand(v.depth, 0, ctx);
                        let rd = self.int_dest(v.depth);
                        self.emitf(format_args!("    neg {rd}, {src}"));
                        self.finish_int(v.depth, ctx);
                        Ok(v)
                    }
                    (UnOp::Neg, Type::Float) => {
                        let src = self.fp_operand(v.depth, 0, ctx);
                        let rd = self.fp_dest(v.depth);
                        self.emitf(format_args!("    fneg.d {rd}, {src}"));
                        self.finish_fp(v.depth, ctx);
                        Ok(v)
                    }
                    (UnOp::Not, Type::Int) => {
                        let src = self.int_operand(v.depth, 0, ctx);
                        let rd = self.int_dest(v.depth);
                        self.emitf(format_args!("    seqz {rd}, {src}"));
                        self.finish_int(v.depth, ctx);
                        Ok(v)
                    }
                    (UnOp::BitNot, Type::Int) => {
                        let src = self.int_operand(v.depth, 0, ctx);
                        let rd = self.int_dest(v.depth);
                        self.emitf(format_args!("    not {rd}, {src}"));
                        self.finish_int(v.depth, ctx);
                        Ok(v)
                    }
                    (op, ty) => Err(LangError::new(
                        *line,
                        format!("unary {op:?} is not defined for {ty}"),
                    )),
                }
            }
            Expr::Binary(op, lhs, rhs, line) => self.binary(*op, lhs, rhs, *line, ctx),
        }
    }

    fn read_var(&mut self, name: &str, line: usize, ctx: &mut FnCtx) -> Result<Val, LangError> {
        if let Some(sym) = ctx.locals.get(name).cloned() {
            if sym.len.is_some() {
                return Err(LangError::new(
                    line,
                    format!("array `{name}` cannot be used as a scalar"),
                ));
            }
            match (&sym.slot, sym.ty) {
                (Slot::SReg(r), Type::Int) => {
                    let d = self.push_int(ctx);
                    let rd = self.int_dest(d);
                    self.emitf(format_args!("    mv {rd}, {r}"));
                    self.finish_int(d, ctx);
                    Ok(Val {
                        ty: Type::Int,
                        depth: d,
                    })
                }
                (Slot::FsReg(r), Type::Float) => {
                    let d = self.push_fp(ctx);
                    let rd = self.fp_dest(d);
                    self.emitf(format_args!("    fmv.d {rd}, {r}"));
                    self.finish_fp(d, ctx);
                    Ok(Val {
                        ty: Type::Float,
                        depth: d,
                    })
                }
                (Slot::Frame(off), Type::Int) => {
                    let d = self.push_int(ctx);
                    let rd = self.int_dest(d).to_string();
                    self.load_from_sp(&rd, *off);
                    self.finish_int(d, ctx);
                    Ok(Val {
                        ty: Type::Int,
                        depth: d,
                    })
                }
                (Slot::Frame(off), Type::Float) => {
                    let d = self.push_fp(ctx);
                    let rd = self.fp_dest(d).to_string();
                    self.fload_from_sp(&rd, *off);
                    self.finish_fp(d, ctx);
                    Ok(Val {
                        ty: Type::Float,
                        depth: d,
                    })
                }
                _ => unreachable!("slot/type mismatch"),
            }
        } else if let Some(g) = self.globals.get(name).cloned() {
            if g.len.is_some() {
                return Err(LangError::new(
                    line,
                    format!("array `{name}` cannot be used as a scalar"),
                ));
            }
            self.emitf(format_args!("    la t5, {}", g.label));
            match g.elem.scalar() {
                Type::Int => {
                    let d = self.push_int(ctx);
                    let rd = self.int_dest(d);
                    self.emitf(format_args!("    ld {rd}, 0(t5)"));
                    self.finish_int(d, ctx);
                    Ok(Val {
                        ty: Type::Int,
                        depth: d,
                    })
                }
                Type::Float => {
                    let d = self.push_fp(ctx);
                    let rd = self.fp_dest(d);
                    self.emitf(format_args!("    fld {rd}, 0(t5)"));
                    self.finish_fp(d, ctx);
                    Ok(Val {
                        ty: Type::Float,
                        depth: d,
                    })
                }
            }
        } else {
            Err(LangError::new(line, format!("unknown variable `{name}`")))
        }
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: usize,
        ctx: &mut FnCtx,
    ) -> Result<Val, LangError> {
        // Short-circuit logical operators first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l_short = self.fresh_label(ctx, "sc");
            let l_end = self.fresh_label(ctx, "scend");
            let lv = self.expr(lhs, ctx)?;
            self.expect_int(&lv, lhs.line())?;
            let lr = self.int_operand(lv.depth, 0, ctx);
            match op {
                BinOp::And => self.emitf(format_args!("    beqz {lr}, {l_short}")),
                _ => self.emitf(format_args!("    bnez {lr}, {l_short}")),
            }
            self.pop_int(ctx);
            let rv = self.expr(rhs, ctx)?;
            self.expect_int(&rv, rhs.line())?;
            debug_assert_eq!(rv.depth, lv.depth, "short-circuit depths must line up");
            let rr = self.int_operand(rv.depth, 0, ctx);
            let rd = self.int_dest(rv.depth);
            self.emitf(format_args!("    snez {rd}, {rr}"));
            self.finish_int(rv.depth, ctx);
            self.emitf(format_args!("    j {l_end}"));
            self.emitf(format_args!("{l_short}:"));
            let rd2 = self.int_dest(lv.depth);
            let const_result = if op == BinOp::And { 0 } else { 1 };
            self.emitf(format_args!("    li {rd2}, {const_result}"));
            self.finish_int(lv.depth, ctx);
            self.emitf(format_args!("{l_end}:"));
            return Ok(Val {
                ty: Type::Int,
                depth: rv.depth,
            });
        }

        let lv = self.expr(lhs, ctx)?;
        let rv = self.expr(rhs, ctx)?;
        if lv.ty != rv.ty {
            return Err(LangError::new(
                line,
                format!("operand type mismatch: {} vs {}", lv.ty, rv.ty),
            ));
        }
        match lv.ty {
            Type::Int => {
                let ra = self.int_operand(lv.depth, 0, ctx).to_string();
                let rb = self.int_operand(rv.depth, 1, ctx).to_string();
                let rd = self.int_dest(lv.depth).to_string();
                match op {
                    BinOp::Add => self.emitf(format_args!("    add {rd}, {ra}, {rb}")),
                    BinOp::Sub => self.emitf(format_args!("    sub {rd}, {ra}, {rb}")),
                    BinOp::Mul => self.emitf(format_args!("    mul {rd}, {ra}, {rb}")),
                    BinOp::Div => self.emitf(format_args!("    div {rd}, {ra}, {rb}")),
                    BinOp::Rem => self.emitf(format_args!("    rem {rd}, {ra}, {rb}")),
                    BinOp::BitAnd => self.emitf(format_args!("    and {rd}, {ra}, {rb}")),
                    BinOp::BitOr => self.emitf(format_args!("    or {rd}, {ra}, {rb}")),
                    BinOp::BitXor => self.emitf(format_args!("    xor {rd}, {ra}, {rb}")),
                    BinOp::Shl => self.emitf(format_args!("    sll {rd}, {ra}, {rb}")),
                    BinOp::Shr => self.emitf(format_args!("    sra {rd}, {ra}, {rb}")),
                    BinOp::Lt => self.emitf(format_args!("    slt {rd}, {ra}, {rb}")),
                    BinOp::Gt => self.emitf(format_args!("    slt {rd}, {rb}, {ra}")),
                    BinOp::Le => {
                        self.emitf(format_args!("    slt {rd}, {rb}, {ra}"));
                        self.emitf(format_args!("    xori {rd}, {rd}, 1"));
                    }
                    BinOp::Ge => {
                        self.emitf(format_args!("    slt {rd}, {ra}, {rb}"));
                        self.emitf(format_args!("    xori {rd}, {rd}, 1"));
                    }
                    BinOp::Eq => {
                        self.emitf(format_args!("    xor {rd}, {ra}, {rb}"));
                        self.emitf(format_args!("    seqz {rd}, {rd}"));
                    }
                    BinOp::Ne => {
                        self.emitf(format_args!("    xor {rd}, {ra}, {rb}"));
                        self.emitf(format_args!("    snez {rd}, {rd}"));
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
                self.finish_int(lv.depth, ctx);
                self.pop_int(ctx); // rhs
                Ok(Val {
                    ty: Type::Int,
                    depth: lv.depth,
                })
            }
            Type::Float => {
                let ra = self.fp_operand(lv.depth, 0, ctx).to_string();
                let rb = self.fp_operand(rv.depth, 1, ctx).to_string();
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        let rd = self.fp_dest(lv.depth).to_string();
                        let m = match op {
                            BinOp::Add => "fadd.d",
                            BinOp::Sub => "fsub.d",
                            BinOp::Mul => "fmul.d",
                            _ => "fdiv.d",
                        };
                        self.emitf(format_args!("    {m} {rd}, {ra}, {rb}"));
                        self.finish_fp(lv.depth, ctx);
                        self.pop_fp(ctx);
                        Ok(Val {
                            ty: Type::Float,
                            depth: lv.depth,
                        })
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.pop_fp(ctx);
                        self.pop_fp(ctx);
                        let d = self.push_int(ctx);
                        let rd = self.int_dest(d).to_string();
                        match op {
                            BinOp::Eq => self.emitf(format_args!("    feq.d {rd}, {ra}, {rb}")),
                            BinOp::Ne => {
                                self.emitf(format_args!("    feq.d {rd}, {ra}, {rb}"));
                                self.emitf(format_args!("    xori {rd}, {rd}, 1"));
                            }
                            BinOp::Lt => self.emitf(format_args!("    flt.d {rd}, {ra}, {rb}")),
                            BinOp::Le => self.emitf(format_args!("    fle.d {rd}, {ra}, {rb}")),
                            BinOp::Gt => self.emitf(format_args!("    flt.d {rd}, {rb}, {ra}")),
                            _ => self.emitf(format_args!("    fle.d {rd}, {rb}, {ra}")),
                        }
                        self.finish_int(d, ctx);
                        Ok(Val {
                            ty: Type::Int,
                            depth: d,
                        })
                    }
                    other => Err(LangError::new(
                        line,
                        format!("operator {other:?} is not defined for float"),
                    )),
                }
            }
        }
    }

    /// Emits a call to a user function or builtin; returns its value (or
    /// `None` for void).
    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: usize,
        ctx: &mut FnCtx,
    ) -> Result<Option<Val>, LangError> {
        // Builtins.
        match name {
            "out" | "outf" => {
                if args.len() != 1 {
                    return Err(LangError::new(line, format!("{name}() takes one argument")));
                }
                let v = self.expr(&args[0], ctx)?;
                match (name, v.ty) {
                    ("out", Type::Int) => {
                        let r = self.int_operand(v.depth, 0, ctx);
                        self.emitf(format_args!("    out {r}"));
                        self.pop_int(ctx);
                    }
                    ("outf", Type::Float) => {
                        let r = self.fp_operand(v.depth, 0, ctx);
                        self.emitf(format_args!("    outf {r}"));
                        self.pop_fp(ctx);
                    }
                    (_, ty) => {
                        return Err(LangError::new(
                            line,
                            format!("{name}() got a {ty} argument"),
                        ));
                    }
                }
                return Ok(None);
            }
            "sqrt" | "fabs" => {
                if args.len() != 1 {
                    return Err(LangError::new(line, format!("{name}() takes one argument")));
                }
                let v = self.expr(&args[0], ctx)?;
                if v.ty != Type::Float {
                    return Err(LangError::new(line, format!("{name}() requires a float")));
                }
                let src = self.fp_operand(v.depth, 0, ctx);
                let rd = self.fp_dest(v.depth);
                let m = if name == "sqrt" { "fsqrt.d" } else { "fabs.d" };
                self.emitf(format_args!("    {m} {rd}, {src}"));
                self.finish_fp(v.depth, ctx);
                return Ok(Some(v));
            }
            _ => {}
        }

        let sig = self
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| LangError::new(line, format!("unknown function `{name}`")))?;
        if sig.params.len() != args.len() {
            return Err(LangError::new(
                line,
                format!(
                    "`{name}` takes {} arguments, {} given",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }

        // Evaluate all arguments onto the virtual stacks.
        let arg_base_int = ctx.int_depth;
        let arg_base_fp = ctx.fp_depth;
        let mut arg_vals = Vec::with_capacity(args.len());
        for (arg, want) in args.iter().zip(&sig.params) {
            let v = self.expr(arg, ctx)?;
            if v.ty != *want {
                return Err(LangError::new(
                    arg.line().max(line),
                    format!("argument type mismatch: expected {want}, found {}", v.ty),
                ));
            }
            arg_vals.push(v);
        }

        // Save every live in-register temporary (caller-saved t/ft regs)
        // below the argument area — this is where the paper's spill-code
        // loads come from.
        let live_int = arg_base_int.min(INT_TEMPS);
        let live_fp = arg_base_fp.min(FP_TEMPS);
        for d in 0..live_int {
            let r = self.int_dest(d).to_string();
            self.store_to_sp(&r, ctx.callsave_base + d as i64 * 8, 8);
        }
        for d in 0..live_fp {
            let r = self.fp_dest(d).to_string();
            self.fstore_to_sp(&r, ctx.callsave_base + (INT_TEMPS + d) as i64 * 8);
        }

        // Marshal arguments into a/fa registers.
        let mut int_arg = 0usize;
        let mut fp_arg = 0usize;
        for v in &arg_vals {
            match v.ty {
                Type::Int => {
                    let dst = *INT_ARGS.get(int_arg).ok_or_else(|| {
                        LangError::new(line, "too many integer arguments (max 8)")
                    })?;
                    int_arg += 1;
                    let src = self.int_operand(v.depth, 0, ctx);
                    self.emitf(format_args!("    mv {dst}, {src}"));
                }
                Type::Float => {
                    let dst = *FP_ARGS
                        .get(fp_arg)
                        .ok_or_else(|| LangError::new(line, "too many float arguments (max 8)"))?;
                    fp_arg += 1;
                    let src = self.fp_operand(v.depth, 0, ctx);
                    self.emitf(format_args!("    fmv.d {dst}, {src}"));
                }
            }
        }
        // Pop the argument values.
        for v in arg_vals.iter().rev() {
            match v.ty {
                Type::Int => self.pop_int(ctx),
                Type::Float => self.pop_fp(ctx),
            }
        }

        self.emitf(format_args!("    call {name}"));

        // Restore live temporaries.
        for d in 0..live_int {
            let r = self.int_dest(d).to_string();
            self.load_from_sp(&r, ctx.callsave_base + d as i64 * 8);
        }
        for d in 0..live_fp {
            let r = self.fp_dest(d).to_string();
            self.fload_from_sp(&r, ctx.callsave_base + (INT_TEMPS + d) as i64 * 8);
        }

        // Result.
        match sig.ret {
            None => Ok(None),
            Some(Type::Int) => {
                let d = self.push_int(ctx);
                let rd = self.int_dest(d);
                self.emitf(format_args!("    mv {rd}, a0"));
                self.finish_int(d, ctx);
                Ok(Some(Val {
                    ty: Type::Int,
                    depth: d,
                }))
            }
            Some(Type::Float) => {
                let d = self.push_fp(ctx);
                let rd = self.fp_dest(d);
                self.emitf(format_args!("    fmv.d {rd}, fa0"));
                self.finish_fp(d, ctx);
                Ok(Some(Val {
                    ty: Type::Float,
                    depth: d,
                }))
            }
        }
    }
}
