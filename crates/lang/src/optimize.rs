//! AST-level optimizer for the mini-C compiler.
//!
//! The paper points out (Section 2) that "the value locality of particular
//! static loads in a program can be significantly affected by compiler
//! optimizations such as loop unrolling, loop peeling, tail replication,
//! etc., since these transformations tend to create multiple instances of
//! a load that may now exclusively target memory locations with high or
//! low value locality." This pass exists to study exactly that effect
//! (see `lvp-bench --bin ablation_opt`):
//!
//! * constant folding over int and float expressions,
//! * algebraic simplification (`x+0`, `x*1`, `x*0` when side-effect free),
//! * dead-branch elimination (`if (const)`) and dead-loop removal,
//! * full unrolling of small constant-trip-count `for` loops.

use crate::ast::*;

/// Optimization level for [`crate::compile_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No optimization: the naive codegen the workloads use by default.
    #[default]
    O0,
    /// Constant folding, branch elimination, and loop unrolling.
    O1,
}

/// Maximum trip count fully unrolled at O1.
const UNROLL_LIMIT: i64 = 8;

/// Applies the O1 pipeline to a parsed program.
pub fn optimize(mut ast: ProgramAst) -> ProgramAst {
    for f in &mut ast.funcs {
        let body = std::mem::take(&mut f.body);
        f.body = eliminate_dead_assigns(opt_stmts(body));
    }
    ast
}

/// Removes scalar assignments that are provably killed by a later
/// assignment to the same variable within the same straight-line statement
/// list, with no possible read in between. Unrolling adjacent loops leaves
/// exactly this pattern behind (`i = 8; j = 1; i = 0;`), which would
/// otherwise compile to dead register stores.
fn eliminate_dead_assigns(stmts: Vec<Stmt>) -> Vec<Stmt> {
    // Recurse into nested bodies first.
    let stmts: Vec<Stmt> = stmts
        .into_iter()
        .map(|s| match s {
            Stmt::If { cond, then, els } => Stmt::If {
                cond,
                then: eliminate_dead_assigns(then),
                els: eliminate_dead_assigns(els),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond,
                body: eliminate_dead_assigns(body),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init,
                cond,
                step,
                body: eliminate_dead_assigns(body),
            },
            other => other,
        })
        .collect();

    // A statement the scan may step over without observing `var`: a
    // declaration, or a call-free assignment that neither reads `var` nor
    // (for array stores) could alias a scalar.
    fn transparent(s: &Stmt, var: &str) -> bool {
        match s {
            Stmt::Decl { .. } => true,
            Stmt::Assign { lv, expr, .. } => {
                is_pure(expr)
                    && !expr_reads(expr, var)
                    && match lv {
                        LValue::Var(w) => w != var,
                        LValue::Index(_, idx) => is_pure(idx) && !expr_reads(idx, var),
                    }
            }
            _ => false,
        }
    }

    let mut keep = vec![true; stmts.len()];
    for (i, s) in stmts.iter().enumerate() {
        let Stmt::Assign {
            lv: LValue::Var(var),
            expr,
            ..
        } = s
        else {
            continue;
        };
        if !is_pure(expr) {
            continue; // RHS may have side effects
        }
        for later in &stmts[i + 1..] {
            // A plain reassignment kills; so does a `for` whose init
            // reassigns (the init runs unconditionally before the cond).
            let kills = match later {
                Stmt::Assign {
                    lv: LValue::Var(w),
                    expr: e2,
                    ..
                } => w == var && is_pure(e2) && !expr_reads(e2, var),
                Stmt::For {
                    init: Some(init), ..
                } => matches!(
                    init.as_ref(),
                    Stmt::Assign { lv: LValue::Var(w), expr: e2, .. }
                        if w == var && is_pure(e2) && !expr_reads(e2, var)
                ),
                _ => false,
            };
            if kills {
                keep[i] = false; // killed before any possible read
                break;
            }
            if !transparent(later, var) {
                break;
            }
        }
    }
    stmts
        .into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect()
}

/// Whether expression `e` reads variable `var`.
fn expr_reads(e: &Expr, var: &str) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) => false,
        Expr::Var(v, _) => v == var,
        Expr::Index(_, idx, _) => expr_reads(idx, var),
        Expr::Call(_, args, _) => args.iter().any(|a| expr_reads(a, var)),
        Expr::Unary(_, a, _) => expr_reads(a, var),
        Expr::Binary(_, a, b, _) => expr_reads(a, var) || expr_reads(b, var),
        Expr::Cast(_, a, _) => expr_reads(a, var),
    }
}

fn opt_stmts(stmts: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        opt_stmt(s, &mut out);
    }
    out
}

fn opt_stmt(s: Stmt, out: &mut Vec<Stmt>) {
    match s {
        Stmt::Assign { lv, expr, line } => {
            let lv = match lv {
                LValue::Index(name, idx) => LValue::Index(name, Box::new(fold(*idx))),
                v => v,
            };
            out.push(Stmt::Assign {
                lv,
                expr: fold(expr),
                line,
            });
        }
        Stmt::Expr(e) => out.push(Stmt::Expr(fold(e))),
        Stmt::Return(e, line) => out.push(Stmt::Return(e.map(fold), line)),
        Stmt::If { cond, then, els } => {
            let cond = fold(cond);
            match const_int(&cond) {
                Some(0) => out.extend(opt_stmts(els)),
                Some(_) => out.extend(opt_stmts(then)),
                None => out.push(Stmt::If {
                    cond,
                    then: opt_stmts(then),
                    els: opt_stmts(els),
                }),
            }
        }
        Stmt::While { cond, body } => {
            let cond = fold(cond);
            if const_int(&cond) == Some(0) {
                return; // dead loop
            }
            out.push(Stmt::While {
                cond,
                body: opt_stmts(body),
            });
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let init = init.map(|s| {
                let mut v = Vec::new();
                opt_stmt(*s, &mut v);
                v
            });
            let cond = cond.map(fold);
            let body = opt_stmts(body);
            if let Some(unrolled) = try_unroll(&init, &cond, &step, &body) {
                out.extend(unrolled);
                return;
            }
            // Re-box the (possibly folded) init statement(s).
            let init = match init {
                None => None,
                Some(mut v) if v.len() == 1 => Some(Box::new(v.pop().unwrap())),
                Some(v) => {
                    // Folding never splits a statement today, but guard
                    // against it: chain with Block2.
                    v.into_iter().rev().fold(None, |acc: Option<Box<Stmt>>, s| {
                        Some(match acc {
                            None => Box::new(s),
                            Some(rest) => Box::new(Stmt::Block2(Box::new(s), rest)),
                        })
                    })
                }
            };
            out.push(Stmt::For {
                init,
                cond,
                step: step.map(|s| {
                    let mut v = Vec::new();
                    opt_stmt(*s, &mut v);
                    Box::new(if v.len() == 1 {
                        v.pop().unwrap()
                    } else {
                        Stmt::Expr(Expr::Int(0)) // folded away entirely
                    })
                }),
                body,
            });
        }
        Stmt::Block2(a, b) => {
            opt_stmt(*a, out);
            opt_stmt(*b, out);
        }
        other @ (Stmt::Decl { .. } | Stmt::Break(_) | Stmt::Continue(_)) => out.push(other),
    }
}

/// Recognizes `for (i = C0; i < C1; i = i + C2)` with a body that never
/// writes `i`, never breaks/continues, and has a trip count within
/// [`UNROLL_LIMIT`]; returns the fully unrolled statement sequence.
fn try_unroll(
    init: &Option<Vec<Stmt>>,
    cond: &Option<Expr>,
    step: &Option<Box<Stmt>>,
    body: &[Stmt],
) -> Option<Vec<Stmt>> {
    let init = init.as_ref()?;
    if init.len() != 1 {
        return None;
    }
    let Stmt::Assign {
        lv: LValue::Var(var),
        expr: init_e,
        line,
    } = &init[0]
    else {
        return None;
    };
    let c0 = const_int(init_e)?;
    let Some(Expr::Binary(BinOp::Lt, lhs, rhs, _)) = cond else {
        return None;
    };
    let Expr::Var(cond_var, _) = lhs.as_ref() else {
        return None;
    };
    if cond_var != var {
        return None;
    }
    let c1 = const_int(rhs)?;
    let Stmt::Assign {
        lv: LValue::Var(step_var),
        expr: step_e,
        ..
    } = step.as_ref()?.as_ref()
    else {
        return None;
    };
    if step_var != var {
        return None;
    }
    let Expr::Binary(BinOp::Add, sl, sr, _) = step_e else {
        return None;
    };
    let Expr::Var(step_src, _) = sl.as_ref() else {
        return None;
    };
    if step_src != var {
        return None;
    }
    let c2 = const_int(sr)?;
    if c2 <= 0 || c1 <= c0 {
        // Zero-trip or malformed: keep the loop (cond guards it anyway),
        // except the provably zero-trip case which reduces to the init.
        if c1 <= c0 {
            return Some(vec![init[0].clone()]);
        }
        return None;
    }
    let trips = (c1 - c0 + c2 - 1) / c2;
    if trips > UNROLL_LIMIT {
        return None;
    }
    if writes_var(body, var) || has_loop_exit(body) || has_decl(body) {
        // Duplicating a declaration would redeclare the local; keep the loop.
        return None;
    }
    // Bodies that never read the loop variable need no per-iteration
    // `i = k` assignment; emitting one per copy creates a chain of dead
    // stores (each overwritten unread by the next).
    let body_reads_var = reads_var(body, var);
    let mut out = Vec::new();
    let mut i = c0;
    while i < c1 {
        if body_reads_var {
            out.push(Stmt::Assign {
                lv: LValue::Var(var.clone()),
                expr: Expr::Int(i),
                line: *line,
            });
        }
        out.extend_from_slice(body);
        i += c2;
    }
    // Loop variable's final value must match the un-unrolled execution.
    out.push(Stmt::Assign {
        lv: LValue::Var(var.clone()),
        expr: Expr::Int(i),
        line: *line,
    });
    Some(out)
}

/// Whether any expression in the statement tree reads `var`.
fn reads_var(stmts: &[Stmt], var: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Decl { .. } | Stmt::Break(_) | Stmt::Continue(_) => false,
        Stmt::Assign { lv, expr, .. } => {
            expr_reads(expr, var) || matches!(lv, LValue::Index(_, idx) if expr_reads(idx, var))
        }
        Stmt::Expr(e) => expr_reads(e, var),
        Stmt::Return(e, _) => e.as_ref().is_some_and(|e| expr_reads(e, var)),
        Stmt::If { cond, then, els } => {
            expr_reads(cond, var) || reads_var(then, var) || reads_var(els, var)
        }
        Stmt::While { cond, body } => expr_reads(cond, var) || reads_var(body, var),
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_deref()
                .is_some_and(|s| reads_var(std::slice::from_ref(s), var))
                || cond.as_ref().is_some_and(|c| expr_reads(c, var))
                || step
                    .as_deref()
                    .is_some_and(|s| reads_var(std::slice::from_ref(s), var))
                || reads_var(body, var)
        }
        Stmt::Block2(a, b) => {
            reads_var(std::slice::from_ref(a), var) || reads_var(std::slice::from_ref(b), var)
        }
    })
}

fn writes_var(stmts: &[Stmt], var: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign {
            lv: LValue::Var(v), ..
        } => v == var,
        Stmt::Assign { .. } | Stmt::Expr(_) | Stmt::Return(..) => false,
        Stmt::Decl { name, .. } => name == var, // shadowing: bail out
        Stmt::If { then, els, .. } => writes_var(then, var) || writes_var(els, var),
        Stmt::While { body, .. } => writes_var(body, var),
        Stmt::For {
            init, step, body, ..
        } => {
            init.as_deref()
                .is_some_and(|s| writes_var(std::slice::from_ref(s), var))
                || step
                    .as_deref()
                    .is_some_and(|s| writes_var(std::slice::from_ref(s), var))
                || writes_var(body, var)
        }
        Stmt::Block2(a, b) => {
            writes_var(std::slice::from_ref(a), var) || writes_var(std::slice::from_ref(b), var)
        }
        Stmt::Break(_) | Stmt::Continue(_) => false,
    })
}

/// Whether any declaration appears anywhere in the statement tree
/// (duplicating one by unrolling would redeclare the local).
fn has_decl(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Decl { .. } => true,
        Stmt::If { then, els, .. } => has_decl(then) || has_decl(els),
        Stmt::While { body, .. } => has_decl(body),
        Stmt::For {
            init, step, body, ..
        } => {
            init.as_deref()
                .is_some_and(|s| has_decl(std::slice::from_ref(s)))
                || step
                    .as_deref()
                    .is_some_and(|s| has_decl(std::slice::from_ref(s)))
                || has_decl(body)
        }
        Stmt::Block2(a, b) => {
            has_decl(std::slice::from_ref(a)) || has_decl(std::slice::from_ref(b))
        }
        _ => false,
    })
}

/// `break`/`continue` at THIS loop's level (not inside a nested loop).
fn has_loop_exit(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Break(_) | Stmt::Continue(_) => true,
        Stmt::If { then, els, .. } => has_loop_exit(then) || has_loop_exit(els),
        Stmt::Block2(a, b) => {
            has_loop_exit(std::slice::from_ref(a)) || has_loop_exit(std::slice::from_ref(b))
        }
        // break/continue inside a nested loop binds to that loop.
        Stmt::While { .. } | Stmt::For { .. } => false,
        _ => false,
    })
}

fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        _ => None,
    }
}

/// Whether an expression is free of calls (safe to delete).
fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_, _) => true,
        Expr::Index(_, idx, _) => is_pure(idx),
        Expr::Call(..) => false,
        Expr::Unary(_, a, _) => is_pure(a),
        Expr::Binary(_, a, b, _) => is_pure(a) && is_pure(b),
        Expr::Cast(_, a, _) => is_pure(a),
    }
}

/// Constant folding + algebraic simplification, bottom-up.
pub fn fold(e: Expr) -> Expr {
    match e {
        Expr::Unary(op, a, line) => {
            let a = fold(*a);
            if let Expr::Int(v) = a {
                return Expr::Int(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                    UnOp::BitNot => !v,
                });
            }
            if let (UnOp::Neg, Expr::Float(v)) = (op, &a) {
                return Expr::Float(-v);
            }
            Expr::Unary(op, Box::new(a), line)
        }
        Expr::Cast(ty, a, line) => {
            let a = fold(*a);
            match (ty, &a) {
                (Type::Float, Expr::Int(v)) => Expr::Float(*v as f64),
                (Type::Int, Expr::Float(v)) => Expr::Int(*v as i64),
                _ => Expr::Cast(ty, Box::new(a), line),
            }
        }
        Expr::Binary(op, a, b, line) => {
            let a = fold(*a);
            let b = fold(*b);
            if let (Expr::Int(x), Expr::Int(y)) = (&a, &b) {
                if let Some(v) = fold_int(op, *x, *y) {
                    return Expr::Int(v);
                }
            }
            if let (Expr::Float(x), Expr::Float(y)) = (&a, &b) {
                if let Some(v) = fold_float(op, *x, *y) {
                    return v;
                }
            }
            // Algebraic identities (int only; float identities change
            // NaN/-0.0 behavior so they are left alone).
            match (op, &a, &b) {
                (BinOp::Add, _, Expr::Int(0)) => return a,
                (BinOp::Add, Expr::Int(0), _) => return b,
                (BinOp::Sub, _, Expr::Int(0)) => return a,
                (BinOp::Mul, _, Expr::Int(1)) => return a,
                (BinOp::Mul, Expr::Int(1), _) => return b,
                (BinOp::Mul, x, Expr::Int(0)) if is_pure(x) => return Expr::Int(0),
                (BinOp::Mul, Expr::Int(0), y) if is_pure(y) => return Expr::Int(0),
                (BinOp::Shl, _, Expr::Int(0)) | (BinOp::Shr, _, Expr::Int(0)) => return a,
                (BinOp::BitOr, _, Expr::Int(0)) => return a,
                (BinOp::BitOr, Expr::Int(0), _) => return b,
                (BinOp::BitXor, _, Expr::Int(0)) => return a,
                (BinOp::And, Expr::Int(x), _) if *x != 0 => {
                    // (nonzero && b) == (b != 0): normalize via !!b.
                    return fold(Expr::Unary(
                        UnOp::Not,
                        Box::new(Expr::Unary(UnOp::Not, Box::new(b), line)),
                        line,
                    ));
                }
                (BinOp::And, Expr::Int(0), _) => return Expr::Int(0),
                (BinOp::Or, Expr::Int(x), _) if *x != 0 => return Expr::Int(1),
                _ => {}
            }
            Expr::Binary(op, Box::new(a), Box::new(b), line)
        }
        Expr::Index(name, idx, line) => Expr::Index(name, Box::new(fold(*idx)), line),
        Expr::Call(name, args, line) => {
            Expr::Call(name, args.into_iter().map(fold).collect(), line)
        }
        leaf => leaf,
    }
}

fn fold_int(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                -1 // ISA semantics for division by zero
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::Rem => {
            if y == 0 {
                x
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::Shl => x.wrapping_shl((y & 63) as u32),
        BinOp::Shr => x.wrapping_shr((y & 63) as u32),
        BinOp::BitAnd => x & y,
        BinOp::BitOr => x | y,
        BinOp::BitXor => x ^ y,
        BinOp::Lt => (x < y) as i64,
        BinOp::Le => (x <= y) as i64,
        BinOp::Gt => (x > y) as i64,
        BinOp::Ge => (x >= y) as i64,
        BinOp::Eq => (x == y) as i64,
        BinOp::Ne => (x != y) as i64,
        BinOp::And => (x != 0 && y != 0) as i64,
        BinOp::Or => (x != 0 || y != 0) as i64,
    })
}

fn fold_float(op: BinOp, x: f64, y: f64) -> Option<Expr> {
    Some(match op {
        BinOp::Add => Expr::Float(x + y),
        BinOp::Sub => Expr::Float(x - y),
        BinOp::Mul => Expr::Float(x * y),
        BinOp::Div => Expr::Float(x / y),
        BinOp::Lt => Expr::Int((x < y) as i64),
        BinOp::Le => Expr::Int((x <= y) as i64),
        BinOp::Gt => Expr::Int((x > y) as i64),
        BinOp::Ge => Expr::Int((x >= y) as i64),
        BinOp::Eq => Expr::Int((x == y) as i64),
        BinOp::Ne => Expr::Int((x != y) as i64),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn opt(src: &str) -> ProgramAst {
        optimize(parse(src).expect("parse"))
    }

    fn body(ast: &ProgramAst) -> &[Stmt] {
        &ast.funcs[0].body
    }

    #[test]
    fn folds_constants() {
        let ast = opt("fn main() { out(2 + 3 * 4); }");
        assert_eq!(
            body(&ast),
            &[Stmt::Expr(Expr::Call("out".into(), vec![Expr::Int(14)], 1))]
        );
    }

    #[test]
    fn folds_float_constants() {
        let ast = opt("fn main() { outf(1.5 * 2.0); out(1.0 < 2.0); }");
        let Stmt::Expr(Expr::Call(_, args, _)) = &body(&ast)[0] else {
            panic!()
        };
        assert_eq!(args[0], Expr::Float(3.0));
        let Stmt::Expr(Expr::Call(_, args, _)) = &body(&ast)[1] else {
            panic!()
        };
        assert_eq!(args[0], Expr::Int(1));
    }

    #[test]
    fn eliminates_dead_branches() {
        let ast = opt("fn main() { if (1) { out(1); } else { out(2); } if (0) { out(3); } }");
        assert_eq!(body(&ast).len(), 1, "both ifs resolved: {:?}", body(&ast));
    }

    #[test]
    fn removes_dead_while() {
        let ast = opt("fn main() { while (0) { out(9); } out(1); }");
        assert_eq!(body(&ast).len(), 1);
    }

    #[test]
    fn unrolls_small_loops() {
        let ast = opt("fn main() { int i; for (i = 0; i < 4; i = i + 1) { out(i); } }");
        // decl + 4 * (assign i, out) + final i assignment = 1 + 8 + 1
        let b = body(&ast);
        assert_eq!(b.len(), 10, "{b:?}");
        // Loop variable ends at its exit value.
        assert_eq!(
            b.last(),
            Some(&Stmt::Assign {
                lv: LValue::Var("i".into()),
                expr: Expr::Int(4),
                line: 1
            })
        );
    }

    #[test]
    fn does_not_unroll_large_or_unsafe_loops() {
        let big = opt("fn main() { int i; for (i = 0; i < 100; i = i + 1) { out(i); } }");
        assert!(matches!(body(&big)[1], Stmt::For { .. }));
        let writes = opt("fn main() { int i; for (i = 0; i < 4; i = i + 1) { i = i + 1; } }");
        assert!(matches!(body(&writes)[1], Stmt::For { .. }));
        let breaks = opt("fn main() { int i; for (i = 0; i < 4; i = i + 1) { break; } }");
        assert!(matches!(body(&breaks)[1], Stmt::For { .. }));
    }

    #[test]
    fn unrolls_with_stride_and_preserves_exit_value() {
        let ast = opt("fn main() { int i; for (i = 1; i < 8; i = i + 3) { out(i); } out(i); }");
        let b = body(&ast);
        // i takes 1, 4, 7; exits at 10.
        let outs: Vec<i64> = b
            .iter()
            .filter_map(|s| match s {
                Stmt::Assign {
                    lv: LValue::Var(v),
                    expr: Expr::Int(k),
                    ..
                } if v == "i" => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(outs, vec![1, 4, 7, 10]);
    }

    #[test]
    fn algebraic_identities() {
        let ast =
            opt("fn main() { int x; x = 5; out(x + 0); out(x * 1); out(x * 0); out(x | 0); }");
        let exprs: Vec<&Expr> = body(&ast)
            .iter()
            .filter_map(|s| match s {
                Stmt::Expr(Expr::Call(_, args, _)) => Some(&args[0]),
                _ => None,
            })
            .collect();
        assert!(matches!(exprs[0], Expr::Var(v, _) if v == "x"));
        assert!(matches!(exprs[1], Expr::Var(v, _) if v == "x"));
        assert_eq!(exprs[2], &Expr::Int(0));
        assert!(matches!(exprs[3], Expr::Var(v, _) if v == "x"));
    }

    #[test]
    fn side_effects_survive_mul_by_zero() {
        // f() has side effects: 0 * f() must NOT fold away.
        let ast = opt("fn f() -> int { return 1; } fn main() { out(0 * f()); }");
        let f = &ast.funcs[1];
        let Stmt::Expr(Expr::Call(_, args, _)) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(args[0], Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn dead_assign_chain_from_adjacent_unrolls_is_removed() {
        // Two adjacent unrolled loops: the first loop's exit-value
        // assignment `i = 2` is killed by the second loop's `i = 0`.
        let ast = opt("fn main() { int i; int s; s = 0; \
             for (i = 0; i < 2; i = i + 1) { s = s + 1; } \
             for (i = 0; i < 2; i = i + 1) { s = s + 2; } out(s); }");
        let i_assigns: Vec<i64> = body(&ast)
            .iter()
            .filter_map(|s| match s {
                Stmt::Assign {
                    lv: LValue::Var(v),
                    expr: Expr::Int(k),
                    ..
                } if v == "i" => Some(*k),
                _ => None,
            })
            .collect();
        // The bodies never read `i`, so only the final exit value remains.
        assert_eq!(i_assigns, vec![2], "{:?}", body(&ast));
    }

    #[test]
    fn dead_assign_not_removed_when_possibly_read() {
        // `out(i)` between the two writes reads i: both must survive.
        let ast = opt("fn main() { int i; i = 1; out(i); i = 2; out(i); }");
        let writes = body(&ast)
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { lv: LValue::Var(v), .. } if v == "i"))
            .count();
        assert_eq!(writes, 2);
    }

    #[test]
    fn for_init_kills_preceding_assignment() {
        let ast = opt("fn main() { int i; int s; s = 0; i = 7; \
             for (i = 0; i < 100; i = i + 1) { s = s + i; } out(s); }");
        // `i = 7` is dead: the loop init rewrites i before any read.
        let dead = body(&ast).iter().any(|s| {
            matches!(s, Stmt::Assign { lv: LValue::Var(v), expr: Expr::Int(7), .. } if v == "i")
        });
        assert!(!dead, "{:?}", body(&ast));
    }

    #[test]
    fn nested_break_does_not_block_outer_unroll() {
        let ast = opt("fn main() { int i; int j; for (i = 0; i < 2; i = i + 1) { \
             for (j = 0; j < 100; j = j + 1) { break; } } }");
        // Outer loop unrolls (the break binds to the inner loop).
        let fors = body(&ast)
            .iter()
            .filter(|s| matches!(s, Stmt::For { .. }))
            .count();
        assert_eq!(
            fors,
            2,
            "inner loop duplicated twice by the unroll: {:?}",
            body(&ast)
        );
    }
}
