//! Abstract syntax tree for the mini-C workload language.

use std::fmt;

/// A scalar value type.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE double.
    Float,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Float => f.write_str("float"),
        }
    }
}

/// Element type of an array (adds byte-sized `char` to the scalar types).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 64-bit integer elements.
    Int,
    /// 64-bit float elements.
    Float,
    /// Byte elements; reads zero-extend to `int`, writes truncate.
    Char,
}

impl ElemType {
    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            ElemType::Int | ElemType::Float => 8,
            ElemType::Char => 1,
        }
    }

    /// The scalar type an element loads as.
    pub fn scalar(self) -> Type {
        match self {
            ElemType::Float => Type::Float,
            _ => Type::Int,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemType::Int => f.write_str("int"),
            ElemType::Float => f.write_str("float"),
            ElemType::Char => f.write_str("char"),
        }
    }
}

/// A literal initializer value.
#[derive(Debug, Copy, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
}

/// Initializer of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Zero-initialized.
    None,
    /// Scalar initializer.
    Scalar(Literal),
    /// Array element list (padded with zeros).
    List(Vec<Literal>),
    /// String initializer for `char` arrays (NUL-terminated).
    Str(String),
}

/// A global variable or array.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element type (scalars use `Int`/`Float`).
    pub elem: ElemType,
    /// Array length; `None` for scalars.
    pub len: Option<u64>,
    /// Initializer.
    pub init: Init,
    /// Source line.
    pub line: usize,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Return type; `None` for void.
    pub ret: Option<Type>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// An lvalue: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Named scalar (local, param, or global).
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration `int x;` / `float f;` / `int a[8];` / `char b[64];`
    Decl {
        /// Name.
        name: String,
        /// Element type.
        elem: ElemType,
        /// Array length; `None` for scalars.
        len: Option<u64>,
        /// Source line.
        line: usize,
    },
    /// Assignment `lv = expr;`
    Assign {
        /// Target.
        lv: LValue,
        /// Value.
        expr: Expr,
        /// Source line.
        line: usize,
    },
    /// Conditional.
    If {
        /// Condition (int).
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Condition (int).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// For loop (desugared while with init/step).
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Condition; `None` means always true.
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Return with optional value.
    Return(Option<Expr>, usize),
    /// Bare expression (e.g. a call).
    Expr(Expr),
    /// Break out of the innermost loop.
    Break(usize),
    /// Continue the innermost loop.
    Continue(usize),
    /// Two statements in sequence (the `int x = e;` declaration sugar).
    Block2(Box<Stmt>, Box<Stmt>),
}

/// A binary operator.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// A unary operator.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (int only).
    Not,
    /// Bitwise complement (int only).
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Scalar variable reference.
    Var(String, usize),
    /// Array element read.
    Index(String, Box<Expr>, usize),
    /// Function or builtin call.
    Call(String, Vec<Expr>, usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, usize),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, usize),
    /// Cast `int(e)` or `float(e)`.
    Cast(Type, Box<Expr>, usize),
}

impl Expr {
    /// Source line of the expression (0 for literals).
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) => 0,
            Expr::Var(_, l)
            | Expr::Index(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::Unary(_, _, l)
            | Expr::Binary(_, _, _, l)
            | Expr::Cast(_, _, l) => *l,
        }
    }
}

/// A compile-time integer constant (`const int N = ...;`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// Name.
    pub name: String,
    /// Value.
    pub value: i64,
    /// Source line.
    pub line: usize,
}

/// A parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramAst {
    /// Named integer constants.
    pub consts: Vec<ConstDef>,
    /// Global variables and arrays.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub funcs: Vec<Func>,
}
