//! Recursive-descent parser for the mini-C workload language.
//!
//! Grammar sketch:
//!
//! ```text
//! program  := (const | global | fn)*
//! const    := "const" "int" IDENT "=" cexpr ";"
//! global   := "global" type IDENT ("[" cexpr "]")? ("=" init)? ";"
//! fn       := "fn" IDENT "(" params? ")" ("->" type)? block
//! stmt     := decl | assign | if | while | for | return | break | continue
//!           | expr ";" | block
//! expr     := precedence-climbing over || && | ^ & == != relational
//!             shifts additive multiplicative unary postfix primary
//! ```

use crate::ast::*;
use crate::token::{lex, LangError, SpannedTok, Tok};
use std::collections::HashMap;

/// Parses mini-C source into an AST.
///
/// # Errors
///
/// Returns a [`LangError`] with the offending line for any syntax error.
pub fn parse(source: &str) -> Result<ProgramAst, LangError> {
    let toks = lex(source)?;
    Parser {
        toks,
        pos: 0,
        consts: HashMap::new(),
    }
    .program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    consts: HashMap<String, i64>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn next(&mut self) -> Result<Tok, LangError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| LangError::new(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t.tok)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), LangError> {
        let line = self.line();
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(LangError::new(
                line,
                format!("expected `{want}`, found `{got}`"),
            ))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError::new(
                line,
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn program(mut self) -> Result<ProgramAst, LangError> {
        let mut ast = ProgramAst::default();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Const => {
                    let c = self.const_def()?;
                    self.consts.insert(c.name.clone(), c.value);
                    ast.consts.push(c);
                }
                Tok::Global => ast.globals.push(self.global()?),
                Tok::Fn => ast.funcs.push(self.func()?),
                other => {
                    return Err(LangError::new(
                        self.line(),
                        format!("expected `const`, `global`, or `fn`, found `{other}`"),
                    ));
                }
            }
        }
        Ok(ast)
    }

    fn const_def(&mut self) -> Result<ConstDef, LangError> {
        let line = self.line();
        self.expect(&Tok::Const)?;
        self.expect(&Tok::KwInt)?;
        let name = self.ident()?;
        self.expect(&Tok::Assign)?;
        let value = self.const_int()?;
        self.expect(&Tok::Semi)?;
        Ok(ConstDef { name, value, line })
    }

    /// Parses and folds a compile-time integer expression.
    fn const_int(&mut self) -> Result<i64, LangError> {
        let line = self.line();
        let e = self.expr()?;
        self.fold_const(&e).ok_or_else(|| {
            LangError::new(line, "expected a compile-time integer constant".to_string())
        })
    }

    fn fold_const(&self, e: &Expr) -> Option<i64> {
        match e {
            Expr::Int(v) => Some(*v),
            Expr::Var(name, _) => self.consts.get(name).copied(),
            Expr::Unary(UnOp::Neg, inner, _) => Some(self.fold_const(inner)?.wrapping_neg()),
            Expr::Unary(UnOp::BitNot, inner, _) => Some(!self.fold_const(inner)?),
            Expr::Binary(op, l, r, _) => {
                let (a, b) = (self.fold_const(l)?, self.fold_const(r)?);
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a.wrapping_div(b),
                    BinOp::Rem if b != 0 => a.wrapping_rem(b),
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    _ => return None,
                })
            }
            _ => None,
        }
    }

    fn elem_type(&mut self) -> Result<ElemType, LangError> {
        let line = self.line();
        match self.next()? {
            Tok::KwInt => Ok(ElemType::Int),
            Tok::KwFloat => Ok(ElemType::Float),
            Tok::KwChar => Ok(ElemType::Char),
            other => Err(LangError::new(
                line,
                format!("expected a type, found `{other}`"),
            )),
        }
    }

    fn scalar_type(&mut self) -> Result<Type, LangError> {
        let line = self.line();
        match self.elem_type()? {
            ElemType::Int => Ok(Type::Int),
            ElemType::Float => Ok(Type::Float),
            ElemType::Char => Err(LangError::new(
                line,
                "`char` is only allowed as an array element type",
            )),
        }
    }

    fn global(&mut self) -> Result<Global, LangError> {
        let line = self.line();
        self.expect(&Tok::Global)?;
        let elem = self.elem_type()?;
        let name = self.ident()?;
        let len = if self.eat(&Tok::LBracket) {
            let n = self.const_int()?;
            self.expect(&Tok::RBracket)?;
            if n <= 0 {
                return Err(LangError::new(
                    line,
                    format!("array `{name}` must have positive length"),
                ));
            }
            Some(n as u64)
        } else {
            None
        };
        if elem == ElemType::Char && len.is_none() {
            return Err(LangError::new(line, "`char` globals must be arrays"));
        }
        let init = if self.eat(&Tok::Assign) {
            match self.peek() {
                Some(Tok::LBrace) => {
                    self.next()?;
                    let mut items = Vec::new();
                    if !self.eat(&Tok::RBrace) {
                        loop {
                            items.push(self.literal()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RBrace)?;
                    }
                    Init::List(items)
                }
                Some(Tok::Str(_)) => {
                    let Tok::Str(s) = self.next()? else {
                        unreachable!()
                    };
                    Init::Str(s)
                }
                _ => Init::Scalar(self.literal()?),
            }
        } else {
            Init::None
        };
        self.expect(&Tok::Semi)?;
        Ok(Global {
            name,
            elem,
            len,
            init,
            line,
        })
    }

    fn literal(&mut self) -> Result<Literal, LangError> {
        let line = self.line();
        let neg = self.eat(&Tok::Minus);
        match self.next()? {
            Tok::Int(v) => {
                // Fall back to const names for convenience.
                Ok(Literal::Int(if neg { -v } else { v }))
            }
            Tok::Float(v) => Ok(Literal::Float(if neg { -v } else { v })),
            Tok::Ident(name) => {
                let v = *self.consts.get(&name).ok_or_else(|| {
                    LangError::new(line, format!("unknown constant `{name}` in initializer"))
                })?;
                Ok(Literal::Int(if neg { -v } else { v }))
            }
            other => Err(LangError::new(
                line,
                format!("expected literal, found `{other}`"),
            )),
        }
    }

    fn func(&mut self) -> Result<Func, LangError> {
        let line = self.line();
        self.expect(&Tok::Fn)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let ty = self.scalar_type()?;
                let pname = self.ident()?;
                params.push((pname, ty));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.scalar_type()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Func {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::KwInt | Tok::KwFloat | Tok::KwChar) => {
                let elem = self.elem_type()?;
                let name = self.ident()?;
                let len = if self.eat(&Tok::LBracket) {
                    let n = self.const_int()?;
                    self.expect(&Tok::RBracket)?;
                    if n <= 0 {
                        return Err(LangError::new(
                            line,
                            format!("array `{name}` must have positive length"),
                        ));
                    }
                    Some(n as u64)
                } else {
                    None
                };
                if elem == ElemType::Char && len.is_none() {
                    return Err(LangError::new(line, "`char` locals must be arrays"));
                }
                // Optional inline initialization sugar: `int x = e;`
                if self.eat(&Tok::Assign) {
                    if len.is_some() {
                        return Err(LangError::new(line, "array locals cannot be initialized"));
                    }
                    let expr = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    return Ok(Stmt::Block2(
                        Box::new(Stmt::Decl {
                            name: name.clone(),
                            elem,
                            len,
                            line,
                        }),
                        Box::new(Stmt::Assign {
                            lv: LValue::Var(name),
                            expr,
                            line,
                        }),
                    ));
                }
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Decl {
                    name,
                    elem,
                    len,
                    line,
                })
            }
            Some(Tok::If) => {
                self.next()?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.stmt_or_block()?;
                let els = if self.eat(&Tok::Else) {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            Some(Tok::While) => {
                self.next()?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Tok::For) => {
                self.next()?;
                self.expect(&Tok::LParen)?;
                let init = if self.peek() == Some(&Tok::Semi) {
                    self.next()?;
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&Tok::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Some(Tok::Return) => {
                self.next()?;
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None, line))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Return(Some(e), line))
                }
            }
            Some(Tok::Break) => {
                self.next()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Some(Tok::Continue) => {
                self.next()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            Some(Tok::LBrace) => {
                let body = self.block()?;
                Ok(Stmt::If {
                    cond: Expr::Int(1),
                    then: body,
                    els: Vec::new(),
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, LangError> {
        if self.peek() == Some(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// An assignment or expression statement, without the trailing `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        let e = self.expr()?;
        if self.eat(&Tok::Assign) {
            let lv = match e {
                Expr::Var(name, _) => LValue::Var(name),
                Expr::Index(name, idx, _) => LValue::Index(name, idx),
                _ => {
                    return Err(LangError::new(
                        line,
                        "left side of `=` must be a variable or array element",
                    ));
                }
            };
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                lv,
                expr: value,
                line,
            });
        }
        Ok(Stmt::Expr(e))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::OrOr) {
            let line = self.line();
            self.next()?;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bitor_expr()?;
        while self.peek() == Some(&Tok::AndAnd) {
            let line = self.line();
            self.next()?;
            let rhs = self.bitor_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bitxor_expr()?;
        while self.peek() == Some(&Tok::Pipe) {
            let line = self.line();
            self.next()?;
            let rhs = self.bitxor_expr()?;
            lhs = Expr::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bitand_expr()?;
        while self.peek() == Some(&Tok::Caret) {
            let line = self.line();
            self.next()?;
            let rhs = self.bitand_expr()?;
            lhs = Expr::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality_expr()?;
        while self.peek() == Some(&Tok::Amp) {
            let line = self.line();
            self.next()?;
            let rhs = self.equality_expr()?;
            lhs = Expr::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.next()?;
            let rhs = self.rel_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.shift_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.next()?;
            let rhs = self.shift_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Shl) => BinOp::Shl,
                Some(Tok::Shr) => BinOp::Shr,
                _ => break,
            };
            let line = self.line();
            self.next()?;
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.next()?;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.next()?;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Minus) => {
                self.next()?;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e), line))
            }
            Some(Tok::Bang) => {
                self.next()?;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e), line))
            }
            Some(Tok::Tilde) => {
                self.next()?;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::BitNot, Box::new(e), line))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.next()? {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            // Casts spell the type name like a call: int(e), float(e).
            Tok::KwInt => {
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Cast(Type::Int, Box::new(e), line))
            }
            Tok::KwFloat => {
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Cast(Type::Float, Box::new(e), line))
            }
            Tok::Ident(name) => match self.peek() {
                Some(Tok::LParen) => {
                    self.next()?;
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(Expr::Call(name, args, line))
                }
                Some(Tok::LBracket) => {
                    self.next()?;
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx), line))
                }
                _ => {
                    // Named constants fold to literals here.
                    if let Some(&v) = self.consts.get(&name) {
                        Ok(Expr::Int(v))
                    } else {
                        Ok(Expr::Var(name, line))
                    }
                }
            },
            other => Err(LangError::new(
                line,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let ast = parse("fn main() { out(1); }").unwrap();
        assert_eq!(ast.funcs.len(), 1);
        assert_eq!(ast.funcs[0].name, "main");
    }

    #[test]
    fn parses_globals_and_consts() {
        let ast = parse(
            "const int N = 4 * 8;\n\
             global int x = 5;\n\
             global float f = -2.5;\n\
             global int a[N];\n\
             global char s[16] = \"hi\";\n\
             global int t[4] = {1, 2, 3, 4};\n\
             fn main() { }",
        )
        .unwrap();
        assert_eq!(ast.consts[0].value, 32);
        assert_eq!(ast.globals.len(), 5);
        assert_eq!(ast.globals[2].len, Some(32), "a[N] with N = 32");
        assert_eq!(ast.globals[3].len, Some(16), "s[16]");
        assert_eq!(
            ast.globals[4].init,
            Init::List(vec![
                Literal::Int(1),
                Literal::Int(2),
                Literal::Int(3),
                Literal::Int(4)
            ])
        );
    }

    #[test]
    fn precedence() {
        let ast = parse("fn main() { out(1 + 2 * 3); }").unwrap();
        let Stmt::Expr(Expr::Call(_, args, _)) = &ast.funcs[0].body[0] else {
            panic!("expected call stmt");
        };
        // 1 + (2 * 3)
        let Expr::Binary(BinOp::Add, lhs, rhs, _) = &args[0] else {
            panic!("expected add at top");
        };
        assert_eq!(**lhs, Expr::Int(1));
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn for_loop_parses() {
        let ast = parse("fn main() { int i; for (i = 0; i < 10; i = i + 1) { out(i); } }").unwrap();
        let body = &ast.funcs[0].body;
        assert!(matches!(body[1], Stmt::For { .. }));
    }

    #[test]
    fn decl_with_init_desugars() {
        let ast = parse("fn main() { int x = 5; out(x); }").unwrap();
        assert!(matches!(ast.funcs[0].body[0], Stmt::Block2(_, _)));
    }

    #[test]
    fn casts_parse() {
        let ast = parse("fn main() { float f; f = float(3); out(int(f)); }").unwrap();
        assert_eq!(ast.funcs.len(), 1);
    }

    #[test]
    fn errors_have_lines() {
        let err = parse("fn main() {\n out(1)\n}").unwrap_err();
        assert!(err.line() >= 2);
        let err = parse("global char c;").unwrap_err();
        assert!(err.to_string().contains("char"));
    }

    #[test]
    fn array_length_const_folding() {
        let ast = parse("const int W = 8; global int g[W * W]; fn main() {}").unwrap();
        assert_eq!(ast.globals[0].len, Some(64));
    }
}
