//! # lvp-lang — the mini-C workload compiler
//!
//! A small C-like language and compiler targeting the LRISC ISA, used to
//! write the 17-benchmark suite that mirrors the paper's Table 1. The
//! compiler has two codegen profiles, inherited from the assembler:
//!
//! * [`AsmProfile::Toc`] (PowerPC/AIX style): global addresses are *loaded*
//!   from a table of contents through `gp`;
//! * [`AsmProfile::Gp`] (Alpha/OSF style): global addresses are synthesized
//!   with `lui`/`addi` ALU instructions.
//!
//! This reproduces the paper's two-ISA cross-check (Section 4): the same
//! source program produces different load populations under the two
//! conventions, exactly as the same C program did on the paper's PowerPC
//! and Alpha machines.
//!
//! # Language
//!
//! ```text
//! const int N = 64;
//! global int table[N];
//! global char text[256] = "hello";
//! global float scale = 1.5;
//!
//! fn hash(int k) -> int {
//!     return (k * 31 + 7) % N;
//! }
//!
//! fn main() {
//!     int i;
//!     for (i = 0; i < N; i = i + 1) {
//!         table[hash(i)] = table[hash(i)] + 1;
//!     }
//!     out(table[7]);
//! }
//! ```
//!
//! Types are `int` (i64), `float` (f64), and `char` (byte, arrays only).
//! There are no pointers; composite data lives in global or local arrays.
//! Builtins: `out(int)`, `outf(float)`, `sqrt(float)`, `fabs(float)`,
//! casts `int(e)` / `float(e)`.
//!
//! # Examples
//!
//! ```
//! use lvp_isa::AsmProfile;
//! use lvp_lang::compile;
//! use lvp_sim::Machine;
//!
//! let program = compile("fn main() { out(6 * 7); }", AsmProfile::Toc)?;
//! let mut m = Machine::new(&program);
//! m.run(10_000)?;
//! assert_eq!(m.output(), &[42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod codegen;
mod optimize;
mod parser;
mod token;

pub use ast::{
    BinOp, ConstDef, ElemType, Expr, Func, Global, Init, LValue, Literal, ProgramAst, Stmt, Type,
    UnOp,
};
pub use codegen::generate;
pub use optimize::{fold, optimize, OptLevel};
pub use parser::parse;
pub use token::{lex, LangError, SpannedTok, Tok};

use lvp_isa::{AsmProfile, Assembler, Program};

/// Compiles mini-C source to a loadable [`Program`] under the given
/// codegen profile, without optimization (the suite default, mirroring
/// the load-heavy code the paper's value-locality arguments rest on).
///
/// # Errors
///
/// Returns a [`LangError`] for front-end errors. Assembly of
/// compiler-generated code cannot fail unless the compiler itself is
/// buggy, so assembler errors are converted into a [`LangError`] carrying
/// the internal diagnostic.
pub fn compile(source: &str, profile: AsmProfile) -> Result<Program, LangError> {
    compile_with(source, profile, OptLevel::O0)
}

/// Compiles with an explicit optimization level. `O1` runs constant
/// folding, dead-branch elimination, and small-loop unrolling — the
/// transformations the paper names as reshaping per-static-load value
/// locality.
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_with(
    source: &str,
    profile: AsmProfile,
    opt: OptLevel,
) -> Result<Program, LangError> {
    let asm = compile_to_asm_with(source, opt)?;
    Assembler::new(profile)
        .assemble(&asm)
        .map_err(|e| LangError::new(0, format!("internal: generated assembly rejected: {e}")))
}

/// Compiles mini-C source to LRISC assembly text (profile-independent:
/// pseudo-instruction expansion happens in the assembler).
///
/// # Errors
///
/// Returns a [`LangError`] for lexing, parsing, or code-generation errors.
pub fn compile_to_asm(source: &str) -> Result<String, LangError> {
    compile_to_asm_with(source, OptLevel::O0)
}

/// [`compile_to_asm`] with an explicit optimization level.
///
/// # Errors
///
/// Same conditions as [`compile_to_asm`].
pub fn compile_to_asm_with(source: &str, opt: OptLevel) -> Result<String, LangError> {
    let mut ast = parse(source)?;
    if opt == OptLevel::O1 {
        ast = optimize(ast);
    }
    generate(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_sim::Machine;

    /// Compiles and runs under both profiles, checking both produce the
    /// same output; returns it.
    fn run_both(src: &str) -> Vec<u64> {
        let mut outputs = Vec::new();
        for profile in [AsmProfile::Toc, AsmProfile::Gp] {
            let program = compile(src, profile)
                .unwrap_or_else(|e| panic!("compile failed under {profile}: {e}"));
            let mut m = Machine::new(&program);
            m.run(50_000_000)
                .unwrap_or_else(|e| panic!("run failed under {profile}: {e}"));
            outputs.push(m.output().to_vec());
        }
        assert_eq!(outputs[0], outputs[1], "profiles disagree");
        outputs.pop().unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_both("fn main() { out(2 + 3 * 4 - 1); }"), vec![13]);
        assert_eq!(run_both("fn main() { out((2 + 3) * 4); }"), vec![20]);
        assert_eq!(
            run_both("fn main() { out(7 / 2); out(7 % 2); }"),
            vec![3, 1]
        );
        assert_eq!(
            run_both("fn main() { out(-5 / 2); out(1 << 10); out(-8 >> 2); }"),
            vec![(-2i64) as u64, 1024, (-2i64) as u64]
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            run_both("fn main() { out(3 < 4); out(4 <= 3); out(3 == 3); out(3 != 3); }"),
            vec![1, 0, 1, 0]
        );
        assert_eq!(
            run_both("fn main() { out(1 && 2); out(0 && 1); out(0 || 3); out(0 || 0); }"),
            vec![1, 0, 1, 0]
        );
        assert_eq!(
            run_both("fn main() { out(!0); out(!7); out(~0); }"),
            vec![1, 0, u64::MAX]
        );
    }

    #[test]
    fn short_circuit_side_effects() {
        let src = "
            global int calls = 0;
            fn bump() -> int { calls = calls + 1; return 1; }
            fn main() {
                int r;
                r = 0 && bump();
                out(calls);
                r = 1 || bump();
                out(calls);
                r = 1 && bump();
                out(calls);
            }
        ";
        assert_eq!(run_both(src), vec![0, 0, 1]);
    }

    #[test]
    fn control_flow() {
        let src = "
            fn main() {
                int i; int sum;
                sum = 0;
                for (i = 1; i <= 10; i = i + 1) {
                    if (i % 2 == 0) { sum = sum + i; } else { sum = sum - 1; }
                }
                out(sum);
                i = 0;
                while (1) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    if (i >= 6) { break; }
                }
                out(i);
            }
        ";
        assert_eq!(run_both(src), vec![25, 6]);
    }

    #[test]
    fn recursion_fibonacci() {
        let src = "
            fn fib(int n) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { out(fib(15)); }
        ";
        assert_eq!(run_both(src), vec![610]);
    }

    #[test]
    fn globals_arrays_and_strings() {
        let src = "
            const int N = 8;
            global int squares[N];
            global char msg[16] = \"abc\";
            global int total = 0;
            fn main() {
                int i;
                for (i = 0; i < N; i = i + 1) { squares[i] = i * i; }
                for (i = 0; i < N; i = i + 1) { total = total + squares[i]; }
                out(total);
                out(msg[0] + msg[1] + msg[2]);
                out(msg[3]);
            }
        ";
        assert_eq!(run_both(src), vec![140, (97 + 98 + 99) as u64, 0]);
    }

    #[test]
    fn local_arrays_and_chars() {
        let src = "
            fn main() {
                int a[10];
                char b[10];
                int i;
                for (i = 0; i < 10; i = i + 1) { a[i] = i * 3; b[i] = 200 + i; }
                out(a[9]);
                out(b[9]);
                out(b[0]);
            }
        ";
        assert_eq!(run_both(src), vec![27, 209, 200]);
    }

    #[test]
    fn floats_end_to_end() {
        let src = "
            global float acc = 0.0;
            fn main() {
                float x; int i;
                x = 1.5;
                for (i = 0; i < 4; i = i + 1) { acc = acc + x * x; }
                out(int(acc));
                outf(acc);
                out(acc > 8.9 && acc < 9.1);
                outf(sqrt(16.0));
                outf(fabs(0.0 - 2.5));
            }
        ";
        let out = run_both(src);
        assert_eq!(out[0], 9);
        assert_eq!(f64::from_bits(out[1]), 9.0);
        assert_eq!(out[2], 1);
        assert_eq!(f64::from_bits(out[3]), 4.0);
        assert_eq!(f64::from_bits(out[4]), 2.5);
    }

    #[test]
    fn float_params_and_returns() {
        let src = "
            fn mix(float a, float b, int w) -> float {
                if (w == 1) { return a; }
                return (a + b) / 2.0;
            }
            fn main() {
                outf(mix(2.0, 4.0, 0));
                outf(mix(2.0, 4.0, 1));
            }
        ";
        let out = run_both(src);
        assert_eq!(f64::from_bits(out[0]), 3.0);
        assert_eq!(f64::from_bits(out[1]), 2.0);
    }

    #[test]
    fn many_locals_spill_to_frame() {
        // More scalars than callee-saved registers forces frame slots.
        let src = "
            fn main() {
                int a; int b; int c; int d; int e; int f; int g; int h;
                int i; int j; int k; int l; int m; int n; int o; int p;
                a=1; b=2; c=3; d=4; e=5; f=6; g=7; h=8;
                i=9; j=10; k=11; l=12; m=13; n=14; o=15; p=16;
                out(a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p);
            }
        ";
        assert_eq!(run_both(src), vec![136]);
    }

    #[test]
    fn deep_expressions_spill() {
        // Parenthesized right-leaning tree forces depth > register temps.
        let src = "
            fn main() {
                out(1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12)))))))))));
            }
        ";
        assert_eq!(run_both(src), vec![78]);
    }

    #[test]
    fn calls_inside_expressions() {
        let src = "
            fn sq(int x) -> int { return x * x; }
            fn main() {
                out(sq(3) + sq(4) * sq(2) - sq(sq(2)));
            }
        ";
        assert_eq!(run_both(src), vec![(9 + 16 * 4 - 16) as u64]);
    }

    #[test]
    fn const_folding_and_char_literals() {
        let src = "
            const int K = 3 * 7;
            fn main() { out(K); out('A'); out('\\n'); }
        ";
        assert_eq!(run_both(src), vec![21, 65, 10]);
    }

    #[test]
    fn global_float_array_with_init() {
        let src = "
            global float w[4] = {0.5, 1.5, 2.5, 3.5};
            fn main() {
                float s; int i;
                s = 0.0;
                for (i = 0; i < 4; i = i + 1) { s = s + w[i]; }
                outf(s);
            }
        ";
        let out = run_both(src);
        assert_eq!(f64::from_bits(out[0]), 8.0);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(compile("fn main() { out(1.5); }", AsmProfile::Gp).is_err());
        assert!(compile("fn main() { float f; f = 1; }", AsmProfile::Gp).is_err());
        assert!(compile("fn main() { out(1 + 2.0); }", AsmProfile::Gp).is_err());
        assert!(compile("fn main() { outx(1); }", AsmProfile::Gp).is_err());
        assert!(compile("fn f() {} fn main() { out(f()); }", AsmProfile::Gp).is_err());
        assert!(compile("fn main() { break; }", AsmProfile::Gp).is_err());
        assert!(compile("fn nomain() {}", AsmProfile::Gp).is_err());
    }

    #[test]
    fn toc_profile_emits_more_loads() {
        let src = "
            global int g = 5;
            fn main() {
                int i; int s;
                s = 0;
                for (i = 0; i < 100; i = i + 1) { s = s + g; }
                out(s);
            }
        ";
        let mut loads = Vec::new();
        for profile in [AsmProfile::Toc, AsmProfile::Gp] {
            let program = compile(src, profile).unwrap();
            let mut m = Machine::new(&program);
            let trace = m.run_traced(1_000_000).unwrap();
            assert_eq!(m.output(), &[500]);
            loads.push(trace.stats().loads);
        }
        assert!(
            loads[0] > loads[1],
            "Toc profile must execute more loads (TOC address loads): {loads:?}"
        );
    }

    #[test]
    fn decl_with_initializer_sugar() {
        assert_eq!(
            run_both("fn main() { int x = 5; int y = x * 2; out(y); }"),
            vec![10]
        );
    }
}
