//! Lexer for the mini-C workload language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals & identifiers
    /// Integer literal (decimal, hex, char).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (for char-array initializers).
    Str(String),
    /// Identifier or keyword candidate.
    Ident(String),

    // keywords
    /// `global`
    Global,
    /// `const`
    Const,
    /// `fn`
    Fn,
    /// `int`
    KwInt,
    /// `float`
    KwFloat,
    /// `char`
    KwChar,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,

    // punctuation & operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => {
                let s = match other {
                    Tok::Global => "global",
                    Tok::Const => "const",
                    Tok::Fn => "fn",
                    Tok::KwInt => "int",
                    Tok::KwFloat => "float",
                    Tok::KwChar => "char",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::While => "while",
                    Tok::For => "for",
                    Tok::Return => "return",
                    Tok::Break => "break",
                    Tok::Continue => "continue",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Assign => "=",
                    Tok::Arrow => "->",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Bang => "!",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Tilde => "~",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Error produced by the compiler front end, carrying the source line.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    line: usize,
    msg: String,
}

impl LangError {
    /// Creates an error at `line` (0 for file-level errors).
    pub fn new(line: usize, msg: impl Into<String>) -> LangError {
        LangError {
            line,
            msg: msg.into(),
        }
    }

    /// 1-based source line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "compile error: {}", self.msg)
        } else {
            write!(f, "compile error at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for LangError {}

/// Tokenizes mini-C source.
///
/// # Errors
///
/// Returns a [`LangError`] for malformed literals or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, LangError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LangError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &source[start + 2..i];
                    let v = u64::from_str_radix(text, 16)
                        .map_err(|_| LangError::new(line, format!("bad hex literal 0x{text}")))?;
                    out.push(SpannedTok {
                        tok: Tok::Int(v as i64),
                        line,
                    });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let is_float = i < bytes.len()
                        && bytes[i] == b'.'
                        && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
                    if is_float {
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                        // optional exponent
                        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                            let mut j = i + 1;
                            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                                j += 1;
                            }
                            if j < bytes.len() && bytes[j].is_ascii_digit() {
                                i = j;
                                while i < bytes.len() && bytes[i].is_ascii_digit() {
                                    i += 1;
                                }
                            }
                        }
                        let text = &source[start..i];
                        let v: f64 = text.parse().map_err(|_| {
                            LangError::new(line, format!("bad float literal {text}"))
                        })?;
                        out.push(SpannedTok {
                            tok: Tok::Float(v),
                            line,
                        });
                    } else {
                        let text = &source[start..i];
                        let v: i64 = text
                            .parse()
                            .map_err(|_| LangError::new(line, format!("bad int literal {text}")))?;
                        out.push(SpannedTok {
                            tok: Tok::Int(v),
                            line,
                        });
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "global" => Tok::Global,
                    "const" => Tok::Const,
                    "fn" => Tok::Fn,
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    "char" => Tok::KwChar,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            b'\'' => {
                // char literal -> Int token
                let (v, consumed) = lex_char(&bytes[i..], line)?;
                out.push(SpannedTok {
                    tok: Tok::Int(v),
                    line,
                });
                i += consumed;
            }
            b'"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(LangError::new(line, "unterminated string literal"));
                    }
                    match bytes[j] {
                        b'"' => break,
                        b'\\' => {
                            let esc = *bytes
                                .get(j + 1)
                                .ok_or_else(|| LangError::new(line, "dangling escape"))?;
                            s.push(unescape(esc, line)? as char);
                            j += 2;
                        }
                        b'\n' => return Err(LangError::new(line, "newline in string literal")),
                        b => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
                i = j + 1;
            }
            _ => {
                // operators & punctuation
                let two = |a: u8| bytes.get(i + 1) == Some(&a);
                let (tok, width) = match c {
                    b'(' => (Tok::LParen, 1),
                    b')' => (Tok::RParen, 1),
                    b'{' => (Tok::LBrace, 1),
                    b'}' => (Tok::RBrace, 1),
                    b'[' => (Tok::LBracket, 1),
                    b']' => (Tok::RBracket, 1),
                    b';' => (Tok::Semi, 1),
                    b',' => (Tok::Comma, 1),
                    b'+' => (Tok::Plus, 1),
                    b'-' if two(b'>') => (Tok::Arrow, 2),
                    b'-' => (Tok::Minus, 1),
                    b'*' => (Tok::Star, 1),
                    b'/' => (Tok::Slash, 1),
                    b'%' => (Tok::Percent, 1),
                    b'=' if two(b'=') => (Tok::Eq, 2),
                    b'=' => (Tok::Assign, 1),
                    b'!' if two(b'=') => (Tok::Ne, 2),
                    b'!' => (Tok::Bang, 1),
                    b'<' if two(b'=') => (Tok::Le, 2),
                    b'<' if two(b'<') => (Tok::Shl, 2),
                    b'<' => (Tok::Lt, 1),
                    b'>' if two(b'=') => (Tok::Ge, 2),
                    b'>' if two(b'>') => (Tok::Shr, 2),
                    b'>' => (Tok::Gt, 1),
                    b'&' if two(b'&') => (Tok::AndAnd, 2),
                    b'&' => (Tok::Amp, 1),
                    b'|' if two(b'|') => (Tok::OrOr, 2),
                    b'|' => (Tok::Pipe, 1),
                    b'^' => (Tok::Caret, 1),
                    b'~' => (Tok::Tilde, 1),
                    other => {
                        return Err(LangError::new(
                            line,
                            format!("unexpected character `{}`", other as char),
                        ));
                    }
                };
                out.push(SpannedTok { tok, line });
                i += width;
            }
        }
    }
    Ok(out)
}

fn unescape(b: u8, line: usize) -> Result<u8, LangError> {
    Ok(match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(LangError::new(
                line,
                format!("unknown escape `\\{}`", other as char),
            ));
        }
    })
}

fn lex_char(bytes: &[u8], line: usize) -> Result<(i64, usize), LangError> {
    // bytes[0] == '\''
    match bytes.get(1) {
        Some(b'\\') => {
            let esc = *bytes
                .get(2)
                .ok_or_else(|| LangError::new(line, "dangling escape"))?;
            if bytes.get(3) != Some(&b'\'') {
                return Err(LangError::new(line, "unterminated char literal"));
            }
            Ok((unescape(esc, line)? as i64, 4))
        }
        Some(&c) if c != b'\'' => {
            if bytes.get(2) != Some(&b'\'') {
                return Err(LangError::new(line, "unterminated char literal"));
            }
            Ok((c as i64, 3))
        }
        _ => Err(LangError::new(line, "empty char literal")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn main int x_1"),
            vec![
                Tok::Fn,
                Tok::Ident("main".into()),
                Tok::KwInt,
                Tok::Ident("x_1".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0x2a 3.5 1.0e3 2.5e-2"),
            vec![
                Tok::Int(42),
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025)
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            toks("'a' '\\n' '\\''"),
            vec![Tok::Int(97), Tok::Int(10), Tok::Int(39)]
        );
        assert_eq!(toks("\"hi\\n\""), vec![Tok::Str("hi\n".into())]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("<= < << == = != && & -> -"),
            vec![
                Tok::Le,
                Tok::Lt,
                Tok::Shl,
                Tok::Eq,
                Tok::Assign,
                Tok::Ne,
                Tok::AndAnd,
                Tok::Amp,
                Tok::Arrow,
                Tok::Minus
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // line comment\n 2 /* block\n comment */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3)]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("1\n2\n\n3").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'ab'").is_err());
    }
}
