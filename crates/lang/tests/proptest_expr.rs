//! Property test: randomly generated integer expressions compile and
//! evaluate to exactly what a reference interpreter computes, under both
//! codegen profiles. This is the compiler's strongest correctness check:
//! it exercises constant materialization, expression-stack spilling, and
//! operator codegen end to end.

use lvp_isa::AsmProfile;
use lvp_lang::compile;
use lvp_sim::Machine;
use proptest::prelude::*;

/// An expression tree that avoids division by zero *syntactically*
/// (divisors are non-zero literals).
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    DivLit(Box<E>, i64),
    RemLit(Box<E>, i64),
    Shl(Box<E>, u8),
    Shr(Box<E>, u8),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::DivLit(a, d) => a.eval().wrapping_div(*d),
            E::RemLit(a, d) => a.eval().wrapping_rem(*d),
            E::Shl(a, s) => a.eval().wrapping_shl(*s as u32),
            E::Shr(a, s) => a.eval().wrapping_shr(*s as u32),
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Not(a) => (a.eval() == 0) as i64,
            E::Lt(a, b) => (a.eval() < b.eval()) as i64,
            E::Eq(a, b) => (a.eval() == b.eval()) as i64,
        }
    }

    fn source(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0 {
                    // Negative literals need parens after binary operators.
                    format!(
                        "(0 - {})",
                        (*v as i128).unsigned_abs().min(i64::MAX as u128)
                    )
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.source(), b.source()),
            E::Sub(a, b) => format!("({} - {})", a.source(), b.source()),
            E::Mul(a, b) => format!("({} * {})", a.source(), b.source()),
            E::DivLit(a, d) => format!("({} / {})", a.source(), d),
            E::RemLit(a, d) => format!("({} % {})", a.source(), d),
            E::Shl(a, s) => format!("({} << {})", a.source(), s),
            E::Shr(a, s) => format!("({} >> {})", a.source(), s),
            E::And(a, b) => format!("({} & {})", a.source(), b.source()),
            E::Or(a, b) => format!("({} | {})", a.source(), b.source()),
            E::Xor(a, b) => format!("({} ^ {})", a.source(), b.source()),
            E::Neg(a) => format!("(0 - {})", a.source()),
            E::Not(a) => format!("(!{})", a.source()),
            E::Lt(a, b) => format!("({} < {})", a.source(), b.source()),
            E::Eq(a, b) => format!("({} == {})", a.source(), b.source()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(E::Lit),
        any::<i32>().prop_map(|v| E::Lit(v as i64)),
    ];
    leaf.prop_recursive(6, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), prop_oneof![1i64..1000, -1000i64..-1])
                .prop_map(|(a, d)| E::DivLit(Box::new(a), d)),
            (inner.clone(), prop_oneof![1i64..1000, -1000i64..-1])
                .prop_map(|(a, d)| E::RemLit(Box::new(a), d)),
            (inner.clone(), 0u8..63).prop_map(|(a, s)| E::Shl(Box::new(a), s)),
            (inner.clone(), 0u8..63).prop_map(|(a, s)| E::Shr(Box::new(a), s)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expressions_evaluate_like_reference(e in arb_expr()) {
        let expected = e.eval() as u64;
        let src = format!("fn main() {{ out({}); }}", e.source());
        for profile in [AsmProfile::Toc, AsmProfile::Gp] {
            let program = compile(&src, profile)
                .unwrap_or_else(|err| panic!("compile failed: {err}\nsource: {src}"));
            let mut m = Machine::new(&program);
            m.run(10_000_000).unwrap();
            prop_assert_eq!(
                m.output(),
                &[expected],
                "profile {} disagreed with reference for {}",
                profile,
                src
            );
        }
    }

    /// Expressions stored through an intermediate variable behave the
    /// same as direct evaluation (exercises assignment codegen).
    #[test]
    fn assignment_preserves_value(e in arb_expr()) {
        let expected = e.eval() as u64;
        let src = format!(
            "global int g = 0;\nfn main() {{ int x; x = {}; g = x; out(g); }}",
            e.source()
        );
        let program = compile(&src, AsmProfile::Toc).unwrap();
        let mut m = Machine::new(&program);
        m.run(10_000_000).unwrap();
        prop_assert_eq!(m.output(), &[expected]);
    }
}
