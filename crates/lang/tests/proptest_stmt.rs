//! Property test: randomly generated *programs* (assignments, nested
//! conditionals, bounded loops, array writes, output) behave exactly
//! like a Rust reference interpreter, under both codegen profiles.

use lvp_isa::AsmProfile;
use lvp_lang::compile;
use lvp_sim::Machine;
use proptest::prelude::*;

/// Scalar variables available to the generator.
const VARS: [&str; 4] = ["a", "b", "c", "d"];
/// Global int array available to the generator.
const ARRAY_LEN: i64 = 8;

#[derive(Debug, Clone)]
enum Ex {
    Lit(i64),
    Var(usize),
    Index(Box<Ex>),
    Add(Box<Ex>, Box<Ex>),
    Sub(Box<Ex>, Box<Ex>),
    Mul(Box<Ex>, Box<Ex>),
    Lt(Box<Ex>, Box<Ex>),
    Eq(Box<Ex>, Box<Ex>),
    And(Box<Ex>, Box<Ex>),
}

#[derive(Debug, Clone)]
enum St {
    Assign(usize, Ex),
    Store(Ex, Ex), // arr[idx] = value
    Out(Ex),
    If(Ex, Vec<St>, Vec<St>),
    Loop(u8, Vec<St>), // repeat body k times (rendered as a for loop)
}

#[derive(Debug, Default)]
struct RefState {
    vars: [i64; 4],
    arr: [i64; ARRAY_LEN as usize],
    output: Vec<i64>,
}

fn eval(e: &Ex, st: &RefState) -> i64 {
    match e {
        Ex::Lit(v) => *v,
        Ex::Var(i) => st.vars[*i],
        Ex::Index(idx) => {
            let i = eval(idx, st).rem_euclid(ARRAY_LEN);
            st.arr[i as usize]
        }
        Ex::Add(a, b) => eval(a, st).wrapping_add(eval(b, st)),
        Ex::Sub(a, b) => eval(a, st).wrapping_sub(eval(b, st)),
        Ex::Mul(a, b) => eval(a, st).wrapping_mul(eval(b, st)),
        Ex::Lt(a, b) => (eval(a, st) < eval(b, st)) as i64,
        Ex::Eq(a, b) => (eval(a, st) == eval(b, st)) as i64,
        Ex::And(a, b) => (eval(a, st) != 0 && eval(b, st) != 0) as i64,
    }
}

fn exec(stmts: &[St], st: &mut RefState) {
    for s in stmts {
        match s {
            St::Assign(v, e) => st.vars[*v] = eval(e, st),
            St::Store(idx, val) => {
                let i = eval(idx, st).rem_euclid(ARRAY_LEN);
                let v = eval(val, st);
                st.arr[i as usize] = v;
            }
            St::Out(e) => {
                let v = eval(e, st);
                st.output.push(v);
            }
            St::If(c, then, els) => {
                if eval(c, st) != 0 {
                    exec(then, st);
                } else {
                    exec(els, st);
                }
            }
            St::Loop(k, body) => {
                for _ in 0..*k {
                    exec(body, st);
                }
            }
        }
    }
}

/// Renders an expression; array indexing wraps via a non-negative
/// modulus computed with the language's `%` on a made-positive index.
fn render_ex(e: &Ex) -> String {
    match e {
        Ex::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", v.unsigned_abs())
            } else {
                v.to_string()
            }
        }
        Ex::Var(i) => VARS[*i].to_string(),
        // rem_euclid(idx, 8): ((idx % 8) + 8) % 8
        Ex::Index(idx) => format!(
            "arr[(({} % {ARRAY_LEN}) + {ARRAY_LEN}) % {ARRAY_LEN}]",
            render_ex(idx)
        ),
        Ex::Add(a, b) => format!("({} + {})", render_ex(a), render_ex(b)),
        Ex::Sub(a, b) => format!("({} - {})", render_ex(a), render_ex(b)),
        Ex::Mul(a, b) => format!("({} * {})", render_ex(a), render_ex(b)),
        Ex::Lt(a, b) => format!("({} < {})", render_ex(a), render_ex(b)),
        Ex::Eq(a, b) => format!("({} == {})", render_ex(a), render_ex(b)),
        Ex::And(a, b) => format!("({} && {})", render_ex(a), render_ex(b)),
    }
}

fn render_stmts(stmts: &[St], indent: usize, loop_counter: &mut usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            St::Assign(v, e) => {
                out.push_str(&format!("{pad}{} = {};\n", VARS[*v], render_ex(e)));
            }
            St::Store(idx, val) => {
                out.push_str(&format!(
                    "{pad}arr[(({} % {ARRAY_LEN}) + {ARRAY_LEN}) % {ARRAY_LEN}] = {};\n",
                    render_ex(idx),
                    render_ex(val)
                ));
            }
            St::Out(e) => out.push_str(&format!("{pad}out({});\n", render_ex(e))),
            St::If(c, then, els) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_ex(c)));
                render_stmts(then, indent + 1, loop_counter, out);
                if els.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_stmts(els, indent + 1, loop_counter, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            St::Loop(k, body) => {
                let lv = format!("l{}", *loop_counter);
                *loop_counter += 1;
                out.push_str(&format!(
                    "{pad}for ({lv} = 0; {lv} < {k}; {lv} = {lv} + 1) {{\n"
                ));
                render_stmts(body, indent + 1, loop_counter, out);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn count_loops(stmts: &[St]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            St::Loop(_, body) => 1 + count_loops(body),
            St::If(_, a, b) => count_loops(a) + count_loops(b),
            _ => 0,
        })
        .sum()
}

fn render_program(stmts: &[St]) -> String {
    let mut body = String::new();
    let mut loop_counter = 0;
    render_stmts(stmts, 1, &mut loop_counter, &mut body);
    let mut decls = String::new();
    for v in VARS {
        decls.push_str(&format!("    int {v};\n"));
    }
    for i in 0..count_loops(stmts) {
        decls.push_str(&format!("    int l{i};\n"));
    }
    let mut inits = String::new();
    for v in VARS {
        inits.push_str(&format!("    {v} = 0;\n"));
    }
    format!(
        "global int arr[{ARRAY_LEN}];\nfn main() {{\n{decls}{inits}{body}    out(a); out(b); out(c); out(d);\n}}\n"
    )
}

fn arb_ex() -> impl Strategy<Value = Ex> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Ex::Lit),
        (0usize..4).prop_map(Ex::Var),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ex::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ex::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ex::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ex::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ex::Eq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ex::And(Box::new(a), Box::new(b))),
            inner.prop_map(|i| Ex::Index(Box::new(i))),
        ]
    })
}

fn arb_stmts() -> impl Strategy<Value = Vec<St>> {
    let stmt = prop_oneof![
        3 => (0usize..4, arb_ex()).prop_map(|(v, e)| St::Assign(v, e)),
        2 => (arb_ex(), arb_ex()).prop_map(|(i, v)| St::Store(i, v)),
        1 => arb_ex().prop_map(St::Out),
    ];
    let block = proptest::collection::vec(stmt, 1..5);
    block.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            2 => (0usize..4, arb_ex()).prop_map(|(v, e)| vec![St::Assign(v, e)]),
            1 => (arb_ex(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| vec![St::If(c, t, e)]),
            1 => (1u8..6, inner.clone()).prop_map(|(k, b)| vec![St::Loop(k, b)]),
            2 => (inner.clone(), inner).prop_map(|(mut a, b)| { a.extend(b); a }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn programs_match_reference_interpreter(stmts in arb_stmts()) {
        // Reference execution.
        let mut reference = RefState::default();
        exec(&stmts, &mut reference);
        let mut expected: Vec<u64> = reference.output.iter().map(|&v| v as u64).collect();
        expected.extend(reference.vars.iter().map(|&v| v as u64));

        let src = render_program(&stmts);
        let mut outputs: Vec<Vec<u64>> = Vec::new();
        // Both codegen profiles at O0, plus the optimizer at O1: all four
        // must agree with the reference interpreter.
        for profile in [AsmProfile::Toc, AsmProfile::Gp] {
            for opt in [lvp_lang::OptLevel::O0, lvp_lang::OptLevel::O1] {
                let program = lvp_lang::compile_with(&src, profile, opt)
                    .unwrap_or_else(|e| panic!("compile failed ({opt:?}): {e}\n{src}"));
                let mut m = Machine::new(&program);
                m.run(50_000_000)
                    .unwrap_or_else(|e| panic!("run failed ({opt:?}): {e}\n{src}"));
                outputs.push(m.output().to_vec());
            }
        }
        for (i, o) in outputs.iter().enumerate() {
            prop_assert_eq!(
                o, &expected,
                "variant {} disagrees with the reference\n{}", i, src
            );
        }
    }
}

/// Deterministic sanity check that the generator plumbing works at all
/// (guards against a vacuously-passing property).
#[test]
fn reference_machinery_smoke_test() {
    let stmts = vec![
        St::Assign(0, Ex::Lit(5)),
        St::Loop(
            3,
            vec![St::Assign(
                0,
                Ex::Add(Box::new(Ex::Var(0)), Box::new(Ex::Lit(2))),
            )],
        ),
        St::Store(Ex::Lit(2), Ex::Var(0)),
        St::Out(Ex::Index(Box::new(Ex::Lit(2)))),
    ];
    let mut r = RefState::default();
    exec(&stmts, &mut r);
    assert_eq!(r.output, vec![11]);
    let src = render_program(&stmts);
    let program = compile(&src, AsmProfile::Toc).unwrap();
    let mut m = Machine::new(&program);
    m.run(1_000_000).unwrap();
    assert_eq!(m.output()[0], 11);
}
