//! # lvp-sim — functional LRISC simulation and trace generation
//!
//! Phase 1 of the paper's three-phase experimental framework: execute a
//! program and capture *all instruction, value and address references* as a
//! [`lvp_trace::Trace`] (the paper used IBM's TRIP6000 and DEC's ATOM for
//! this; see Section 5 of the paper).
//!
//! The central type is [`Machine`]: construct one from an assembled
//! [`lvp_isa::Program`], optionally inject input bytes into data memory,
//! then call [`Machine::run_traced`] to retire instructions and collect
//! their trace entries.
//!
//! # Examples
//!
//! ```
//! use lvp_isa::{AsmProfile, Assembler};
//! use lvp_sim::Machine;
//!
//! let program = Assembler::new(AsmProfile::Toc).assemble(
//!     "main: li a0, 2\n li a1, 3\n add a0, a0, a1\n out a0\n halt\n",
//! )?;
//! let mut machine = Machine::new(&program);
//! let trace = machine.run_traced(1_000)?;
//! assert_eq!(machine.output(), &[5]);
//! assert_eq!(trace.stats().instructions, machine.instret());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod machine;
mod memory;

pub use machine::{Machine, SimError, EXIT_ADDR};
pub use memory::{MemError, Memory};
