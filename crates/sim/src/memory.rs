//! Flat data memory for the functional simulator.

use lvp_isa::{DATA_BASE, MEM_SIZE};
use std::fmt;

/// Error produced by a bad memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address outside the data/stack region.
    OutOfRange { addr: u64, width: u8 },
    /// Address not naturally aligned for the access width.
    Unaligned { addr: u64, width: u8 },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, width } => {
                write!(
                    f,
                    "memory access of {width} bytes at {addr:#x} out of range"
                )
            }
            MemError::Unaligned { addr, width } => {
                write!(f, "unaligned {width}-byte memory access at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable data memory covering `[DATA_BASE, MEM_SIZE)`.
///
/// Accesses below `DATA_BASE` (including null and text addresses) fault,
/// which catches the most common workload bugs. All accesses must be
/// naturally aligned.
pub struct Memory {
    bytes: Vec<u8>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory {{ {} bytes }}", self.bytes.len())
    }
}

impl Memory {
    /// Creates zeroed memory with the `data` image loaded at `DATA_BASE`.
    ///
    /// # Panics
    ///
    /// Panics if the data image does not fit below the stack region.
    pub fn new(data: &[u8]) -> Memory {
        let span = (MEM_SIZE - DATA_BASE) as usize;
        assert!(data.len() <= span, "data image too large for memory");
        let mut bytes = vec![0u8; span];
        bytes[..data.len()].copy_from_slice(data);
        Memory { bytes }
    }

    #[inline]
    fn index(&self, addr: u64, width: u8) -> Result<usize, MemError> {
        if !addr.is_multiple_of(width as u64) {
            return Err(MemError::Unaligned { addr, width });
        }
        if addr < DATA_BASE || addr + width as u64 > MEM_SIZE {
            return Err(MemError::OutOfRange { addr, width });
        }
        Ok((addr - DATA_BASE) as usize)
    }

    /// Loads `width` bytes (1, 2, 4, or 8), zero-extended into a `u64`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or unaligned access.
    #[inline]
    pub fn load(&self, addr: u64, width: u8) -> Result<u64, MemError> {
        let i = self.index(addr, width)?;
        Ok(match width {
            1 => self.bytes[i] as u64,
            2 => u16::from_le_bytes(self.bytes[i..i + 2].try_into().unwrap()) as u64,
            4 => u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()) as u64,
            8 => u64::from_le_bytes(self.bytes[i..i + 8].try_into().unwrap()),
            _ => unreachable!("invalid width"),
        })
    }

    /// Stores the low `width` bytes of `value`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or unaligned access.
    #[inline]
    pub fn store(&mut self, addr: u64, width: u8, value: u64) -> Result<(), MemError> {
        let i = self.index(addr, width)?;
        match width {
            1 => self.bytes[i] = value as u8,
            2 => self.bytes[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            4 => self.bytes[i..i + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            8 => self.bytes[i..i + 8].copy_from_slice(&value.to_le_bytes()),
            _ => unreachable!("invalid width"),
        }
        Ok(())
    }

    /// Copies a byte slice into memory; used to inject workload inputs.
    ///
    /// # Errors
    ///
    /// Fails if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        if addr < DATA_BASE || addr + bytes.len() as u64 > MEM_SIZE {
            return Err(MemError::OutOfRange { addr, width: 1 });
        }
        let i = (addr - DATA_BASE) as usize;
        self.bytes[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a byte slice out of memory; used to extract workload results.
    ///
    /// # Errors
    ///
    /// Fails if the range is out of bounds.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        if addr < DATA_BASE || addr + len as u64 > MEM_SIZE {
            return Err(MemError::OutOfRange { addr, width: 1 });
        }
        let i = (addr - DATA_BASE) as usize;
        Ok(&self.bytes[i..i + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip_all_widths() {
        let mut m = Memory::new(&[]);
        for (width, value) in [
            (1u8, 0xabu64),
            (2, 0xbeef),
            (4, 0xdead_beef),
            (8, u64::MAX - 5),
        ] {
            let addr = DATA_BASE + 64;
            m.store(addr, width, value).unwrap();
            assert_eq!(m.load(addr, width).unwrap(), value);
        }
    }

    #[test]
    fn narrow_store_truncates() {
        let mut m = Memory::new(&[]);
        m.store(DATA_BASE, 8, u64::MAX).unwrap();
        m.store(DATA_BASE, 1, 0).unwrap();
        assert_eq!(m.load(DATA_BASE, 8).unwrap(), u64::MAX - 0xff);
    }

    #[test]
    fn initial_image_is_loaded() {
        let m = Memory::new(&[1, 2, 3, 4]);
        assert_eq!(m.load(DATA_BASE, 4).unwrap(), 0x04030201);
        // Rest of memory is zero.
        assert_eq!(m.load(DATA_BASE + 8, 8).unwrap(), 0);
    }

    #[test]
    fn null_and_text_accesses_fault() {
        let m = Memory::new(&[]);
        assert!(matches!(m.load(0, 8), Err(MemError::OutOfRange { .. })));
        assert!(matches!(
            m.load(0x1_0000, 4),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn unaligned_accesses_fault() {
        let m = Memory::new(&[]);
        assert!(matches!(
            m.load(DATA_BASE + 1, 8),
            Err(MemError::Unaligned { .. })
        ));
        assert!(matches!(
            m.load(DATA_BASE + 2, 4),
            Err(MemError::Unaligned { .. })
        ));
        assert!(m.load(DATA_BASE + 2, 2).is_ok());
    }

    #[test]
    fn end_of_memory_bounds() {
        let mut m = Memory::new(&[]);
        assert!(m.store(MEM_SIZE - 8, 8, 1).is_ok());
        assert!(m.store(MEM_SIZE - 4, 8, 1).is_err());
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut m = Memory::new(&[]);
        m.write_bytes(DATA_BASE + 100, b"hello world").unwrap();
        assert_eq!(m.read_bytes(DATA_BASE + 100, 11).unwrap(), b"hello world");
    }
}
