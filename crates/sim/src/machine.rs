//! The LRISC functional simulator.

use crate::memory::{MemError, Memory};
use lvp_isa::{Instr, Program, Reg, STACK_TOP};
use lvp_trace::{BranchEvent, MemAccess, OpKind, RegRef, Trace, TraceEntry};
use std::fmt;

/// Synthetic return address installed in `ra` at startup: returning from
/// the entry function jumps here and halts the machine gracefully, so
/// programs may end with either `halt` or `ret`.
pub const EXIT_ADDR: u64 = 0xffff_0000;

/// Error produced while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Fetched from an address outside the text segment.
    BadFetch {
        /// The offending program counter.
        pc: u64,
    },
    /// A load or store faulted.
    Mem {
        /// Program counter of the faulting instruction.
        pc: u64,
        /// The underlying memory fault.
        cause: MemError,
    },
    /// The instruction budget was exhausted before `halt`.
    OutOfFuel {
        /// Number of instructions executed.
        executed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadFetch { pc } => write!(f, "instruction fetch from {pc:#x} failed"),
            SimError::Mem { pc, cause } => write!(f, "at pc {pc:#x}: {cause}"),
            SimError::OutOfFuel { executed } => {
                write!(
                    f,
                    "instruction budget exhausted after {executed} instructions"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// A functional LRISC machine bound to a program.
///
/// The machine executes instructions one at a time, optionally producing a
/// [`TraceEntry`] per retired instruction — the paper's "phase 1" trace
/// generation (its TRIP6000/ATOM substitute).
///
/// # Examples
///
/// ```
/// use lvp_isa::{AsmProfile, Assembler};
/// use lvp_sim::Machine;
///
/// let p = Assembler::new(AsmProfile::Gp)
///     .assemble("main: li a0, 6\n li a1, 7\n mul a0, a0, a1\n out a0\n halt\n")?;
/// let mut m = Machine::new(&p);
/// m.run(1_000)?;
/// assert_eq!(m.output(), &[42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Machine<'a> {
    program: &'a Program,
    pc: u64,
    regs: [u64; 32],
    fregs: [f64; 32],
    mem: Memory,
    output: Vec<u64>,
    instret: u64,
    halted: bool,
}

impl fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Machine {{ pc: {:#x}, instret: {}, halted: {} }}",
            self.pc, self.instret, self.halted
        )
    }
}

impl<'a> Machine<'a> {
    /// Creates a machine with registers and memory initialized for
    /// `program`: `pc` at the entry point, `sp` at the stack top, `gp` at
    /// the TOC/constant-pool base, and `ra` at [`EXIT_ADDR`].
    pub fn new(program: &'a Program) -> Machine<'a> {
        let mut regs = [0u64; 32];
        regs[Reg::SP.number() as usize] = STACK_TOP;
        regs[Reg::GP.number() as usize] = program.pool_base();
        regs[Reg::RA.number() as usize] = EXIT_ADDR;
        Machine {
            program,
            pc: program.entry(),
            regs,
            fregs: [0.0; 32],
            mem: Memory::new(program.data()),
            output: Vec::new(),
            instret: 0,
            halted: false,
        }
    }

    /// The program this machine executes.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of retired instructions.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Whether the machine has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Values emitted by `out`/`outf` (FP values as raw bits), in order.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// An order-sensitive 64-bit digest of the output channel, used by the
    /// workload suite to validate program correctness.
    pub fn output_checksum(&self) -> u64 {
        // FNV-1a over the little-endian bytes of each emitted value.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.output {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Reads an integer register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Writes an integer register (writes to `zero` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = value;
        }
    }

    /// Direct access to data memory, e.g. to inject inputs before running.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Direct read access to data memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Executes one instruction, returning its trace entry, or `None` if
    /// the machine has already halted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on a fetch or memory fault.
    pub fn step(&mut self) -> Result<Option<TraceEntry>, SimError> {
        if self.halted {
            return Ok(None);
        }
        if self.pc == EXIT_ADDR {
            self.halted = true;
            return Ok(None);
        }
        let pc = self.pc;
        let instr = *self.program.fetch(pc).ok_or(SimError::BadFetch { pc })?;
        let entry = self.execute(pc, instr)?;
        self.instret += 1;
        Ok(Some(entry))
    }

    /// Runs until `halt` or until `max_instrs` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfFuel`] if the budget expires first, or any
    /// fault raised by execution.
    pub fn run(&mut self, max_instrs: u64) -> Result<u64, SimError> {
        let start = self.instret;
        while !self.halted {
            if self.instret - start >= max_instrs {
                return Err(SimError::OutOfFuel {
                    executed: self.instret - start,
                });
            }
            self.step()?;
        }
        Ok(self.instret - start)
    }

    /// Runs to completion, collecting the full instruction trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_traced(&mut self, max_instrs: u64) -> Result<Trace, SimError> {
        let mut trace = Trace::with_capacity(4096);
        let start = self.instret;
        while !self.halted {
            if self.instret - start >= max_instrs {
                return Err(SimError::OutOfFuel {
                    executed: self.instret - start,
                });
            }
            match self.step()? {
                Some(e) => trace.push(e),
                None => break,
            }
        }
        Ok(trace)
    }

    /// Runs to completion, invoking `f` for every retired instruction
    /// (streaming alternative to [`Machine::run_traced`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_with<F: FnMut(&TraceEntry)>(
        &mut self,
        max_instrs: u64,
        mut f: F,
    ) -> Result<u64, SimError> {
        let start = self.instret;
        while !self.halted {
            if self.instret - start >= max_instrs {
                return Err(SimError::OutOfFuel {
                    executed: self.instret - start,
                });
            }
            match self.step()? {
                Some(e) => f(&e),
                None => break,
            }
        }
        Ok(self.instret - start)
    }

    #[inline]
    fn src(r: Reg) -> Option<RegRef> {
        (!r.is_zero()).then(|| RegRef::int(r.number()))
    }

    #[inline]
    fn dst(r: Reg) -> Option<RegRef> {
        (!r.is_zero()).then(|| RegRef::int(r.number()))
    }

    fn execute(&mut self, pc: u64, instr: Instr) -> Result<TraceEntry, SimError> {
        use Instr::*;
        let mut next_pc = pc + 4;
        let mut entry = TraceEntry::simple(pc, OpKind::IntSimple);

        macro_rules! alu_rrr {
            ($rd:expr, $rs1:expr, $rs2:expr, $kind:expr, $f:expr) => {{
                let a = self.reg($rs1);
                let b = self.reg($rs2);
                self.set_reg($rd, $f(a, b));
                entry.kind = $kind;
                entry.dst = Self::dst($rd);
                entry.srcs = [Self::src($rs1), Self::src($rs2)];
            }};
        }
        macro_rules! alu_rri {
            ($rd:expr, $rs1:expr, $kind:expr, $f:expr) => {{
                let a = self.reg($rs1);
                self.set_reg($rd, $f(a));
                entry.kind = $kind;
                entry.dst = Self::dst($rd);
                entry.srcs = [Self::src($rs1), None];
            }};
        }
        macro_rules! fp_rrr {
            ($fd:expr, $fs1:expr, $fs2:expr, $kind:expr, $f:expr) => {{
                let a = self.fregs[$fs1.number() as usize];
                let b = self.fregs[$fs2.number() as usize];
                self.fregs[$fd.number() as usize] = $f(a, b);
                entry.kind = $kind;
                entry.dst = Some(RegRef::fp($fd.number()));
                entry.srcs = [
                    Some(RegRef::fp($fs1.number())),
                    Some(RegRef::fp($fs2.number())),
                ];
            }};
        }
        macro_rules! load {
            ($rd:expr, $base:expr, $off:expr, $width:expr, $ext:expr) => {{
                let addr = self.reg($base).wrapping_add($off as i64 as u64);
                let raw = self
                    .mem
                    .load(addr, $width)
                    .map_err(|cause| SimError::Mem { pc, cause })?;
                let value: u64 = $ext(raw);
                self.set_reg($rd, value);
                entry.kind = OpKind::Load;
                entry.dst = Self::dst($rd);
                entry.srcs = [Self::src($base), None];
                entry.mem = Some(MemAccess {
                    addr,
                    width: $width,
                    value,
                    fp: false,
                });
            }};
        }
        macro_rules! store {
            ($rs2:expr, $base:expr, $off:expr, $width:expr) => {{
                let addr = self.reg($base).wrapping_add($off as i64 as u64);
                let value = self.reg($rs2);
                self.mem
                    .store(addr, $width, value)
                    .map_err(|cause| SimError::Mem { pc, cause })?;
                entry.kind = OpKind::Store;
                entry.srcs = [Self::src($base), Self::src($rs2)];
                let stored = if $width == 8 {
                    value
                } else {
                    value & ((1u64 << ($width * 8)) - 1)
                };
                entry.mem = Some(MemAccess {
                    addr,
                    width: $width,
                    value: stored,
                    fp: false,
                });
            }};
        }
        macro_rules! branch {
            ($rs1:expr, $rs2:expr, $off:expr, $cond:expr) => {{
                let a = self.reg($rs1);
                let b = self.reg($rs2);
                let taken = $cond(a, b);
                let target = if taken {
                    pc.wrapping_add($off as i64 as u64)
                } else {
                    next_pc
                };
                if taken {
                    next_pc = target;
                }
                entry.kind = OpKind::CondBranch;
                entry.srcs = [Self::src($rs1), Self::src($rs2)];
                entry.branch = Some(BranchEvent { taken, target });
            }};
        }

        match instr {
            Add { rd, rs1, rs2 } => alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a
                .wrapping_add(b)),
            Sub { rd, rs1, rs2 } => alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a
                .wrapping_sub(b)),
            Sll { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a
                    << (b & 63))
            }
            Slt { rd, rs1, rs2 } => {
                alu_rrr!(
                    rd,
                    rs1,
                    rs2,
                    OpKind::IntSimple,
                    |a: u64, b: u64| ((a as i64) < (b as i64)) as u64
                )
            }
            Sltu { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| (a < b)
                    as u64)
            }
            Xor { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a ^ b)
            }
            Srl { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a
                    >> (b & 63))
            }
            Sra { rd, rs1, rs2 } => {
                alu_rrr!(
                    rd,
                    rs1,
                    rs2,
                    OpKind::IntSimple,
                    |a: u64, b: u64| ((a as i64) >> (b & 63)) as u64
                )
            }
            Or { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a | b)
            }
            And { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntSimple, |a: u64, b: u64| a & b)
            }
            Mul { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntComplex, |a: u64, b: u64| a
                    .wrapping_mul(b))
            }
            Mulh { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntComplex, |a: u64, b: u64| {
                    (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64
                })
            }
            Div { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntComplex, |a: u64, b: u64| {
                    let (a, b) = (a as i64, b as i64);
                    if b == 0 {
                        u64::MAX // -1
                    } else {
                        a.wrapping_div(b) as u64
                    }
                })
            }
            Divu { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntComplex, |a: u64, b: u64| a
                    .checked_div(b)
                    .unwrap_or(u64::MAX))
            }
            Rem { rd, rs1, rs2 } => {
                alu_rrr!(rd, rs1, rs2, OpKind::IntComplex, |a: u64, b: u64| {
                    let (a, b) = (a as i64, b as i64);
                    if b == 0 {
                        a as u64
                    } else {
                        a.wrapping_rem(b) as u64
                    }
                })
            }
            Remu { rd, rs1, rs2 } => {
                alu_rrr!(
                    rd,
                    rs1,
                    rs2,
                    OpKind::IntComplex,
                    |a: u64, b: u64| if b == 0 { a } else { a % b }
                )
            }
            Addi { rd, rs1, imm } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| a
                    .wrapping_add(imm as i64 as u64))
            }
            Slti { rd, rs1, imm } => {
                alu_rri!(
                    rd,
                    rs1,
                    OpKind::IntSimple,
                    |a: u64| ((a as i64) < imm as i64) as u64
                )
            }
            Sltiu { rd, rs1, imm } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| (a < imm as i64 as u64)
                    as u64)
            }
            Xori { rd, rs1, imm } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| a ^ (imm as i64 as u64))
            }
            Ori { rd, rs1, imm } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| a | (imm as i64 as u64))
            }
            Andi { rd, rs1, imm } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| a & (imm as i64 as u64))
            }
            Slli { rd, rs1, shamt } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| a << shamt)
            }
            Srli { rd, rs1, shamt } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| a >> shamt)
            }
            Srai { rd, rs1, shamt } => {
                alu_rri!(rd, rs1, OpKind::IntSimple, |a: u64| ((a as i64) >> shamt)
                    as u64)
            }
            Lui { rd, imm } => {
                self.set_reg(rd, ((imm as i64) << 12) as u64);
                entry.dst = Self::dst(rd);
            }
            Lb { rd, base, offset } => {
                load!(rd, base, offset, 1, |raw: u64| raw as u8 as i8 as i64
                    as u64)
            }
            Lbu { rd, base, offset } => load!(rd, base, offset, 1, |raw: u64| raw),
            Lh { rd, base, offset } => {
                load!(rd, base, offset, 2, |raw: u64| raw as u16 as i16 as i64
                    as u64)
            }
            Lhu { rd, base, offset } => load!(rd, base, offset, 2, |raw: u64| raw),
            Lw { rd, base, offset } => {
                load!(rd, base, offset, 4, |raw: u64| raw as u32 as i32 as i64
                    as u64)
            }
            Lwu { rd, base, offset } => load!(rd, base, offset, 4, |raw: u64| raw),
            Ld { rd, base, offset } => load!(rd, base, offset, 8, |raw: u64| raw),
            Fld { fd, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                let raw = self
                    .mem
                    .load(addr, 8)
                    .map_err(|cause| SimError::Mem { pc, cause })?;
                self.fregs[fd.number() as usize] = f64::from_bits(raw);
                entry.kind = OpKind::Load;
                entry.dst = Some(RegRef::fp(fd.number()));
                entry.srcs = [Self::src(base), None];
                entry.mem = Some(MemAccess {
                    addr,
                    width: 8,
                    value: raw,
                    fp: true,
                });
            }
            Sb { rs2, base, offset } => store!(rs2, base, offset, 1),
            Sh { rs2, base, offset } => store!(rs2, base, offset, 2),
            Sw { rs2, base, offset } => store!(rs2, base, offset, 4),
            Sd { rs2, base, offset } => store!(rs2, base, offset, 8),
            Fsd { fs2, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                let bits = self.fregs[fs2.number() as usize].to_bits();
                self.mem
                    .store(addr, 8, bits)
                    .map_err(|cause| SimError::Mem { pc, cause })?;
                entry.kind = OpKind::Store;
                entry.srcs = [Self::src(base), Some(RegRef::fp(fs2.number()))];
                entry.mem = Some(MemAccess {
                    addr,
                    width: 8,
                    value: bits,
                    fp: true,
                });
            }
            FaddD { fd, fs1, fs2 } => fp_rrr!(fd, fs1, fs2, OpKind::FpSimple, |a: f64, b| a + b),
            FsubD { fd, fs1, fs2 } => fp_rrr!(fd, fs1, fs2, OpKind::FpSimple, |a: f64, b| a - b),
            FmulD { fd, fs1, fs2 } => fp_rrr!(fd, fs1, fs2, OpKind::FpSimple, |a: f64, b| a * b),
            FdivD { fd, fs1, fs2 } => fp_rrr!(fd, fs1, fs2, OpKind::FpComplex, |a: f64, b| a / b),
            FminD { fd, fs1, fs2 } => {
                fp_rrr!(fd, fs1, fs2, OpKind::FpSimple, |a: f64, b: f64| a.min(b))
            }
            FmaxD { fd, fs1, fs2 } => {
                fp_rrr!(fd, fs1, fs2, OpKind::FpSimple, |a: f64, b: f64| a.max(b))
            }
            FsqrtD { fd, fs1 } => {
                let a = self.fregs[fs1.number() as usize];
                self.fregs[fd.number() as usize] = a.sqrt();
                entry.kind = OpKind::FpComplex;
                entry.dst = Some(RegRef::fp(fd.number()));
                entry.srcs = [Some(RegRef::fp(fs1.number())), None];
            }
            FnegD { fd, fs1 } => {
                let a = self.fregs[fs1.number() as usize];
                self.fregs[fd.number() as usize] = -a;
                entry.kind = OpKind::FpSimple;
                entry.dst = Some(RegRef::fp(fd.number()));
                entry.srcs = [Some(RegRef::fp(fs1.number())), None];
            }
            FabsD { fd, fs1 } => {
                let a = self.fregs[fs1.number() as usize];
                self.fregs[fd.number() as usize] = a.abs();
                entry.kind = OpKind::FpSimple;
                entry.dst = Some(RegRef::fp(fd.number()));
                entry.srcs = [Some(RegRef::fp(fs1.number())), None];
            }
            FeqD { rd, fs1, fs2 } | FltD { rd, fs1, fs2 } | FleD { rd, fs1, fs2 } => {
                let a = self.fregs[fs1.number() as usize];
                let b = self.fregs[fs2.number() as usize];
                let v = match instr {
                    FeqD { .. } => a == b,
                    FltD { .. } => a < b,
                    _ => a <= b,
                };
                self.set_reg(rd, v as u64);
                entry.kind = OpKind::FpSimple;
                entry.dst = Self::dst(rd);
                entry.srcs = [
                    Some(RegRef::fp(fs1.number())),
                    Some(RegRef::fp(fs2.number())),
                ];
            }
            FcvtDL { fd, rs1 } => {
                let a = self.reg(rs1) as i64;
                self.fregs[fd.number() as usize] = a as f64;
                entry.kind = OpKind::FpSimple;
                entry.dst = Some(RegRef::fp(fd.number()));
                entry.srcs = [Self::src(rs1), None];
            }
            FcvtLD { rd, fs1 } => {
                let a = self.fregs[fs1.number() as usize];
                self.set_reg(rd, (a as i64) as u64);
                entry.kind = OpKind::FpSimple;
                entry.dst = Self::dst(rd);
                entry.srcs = [Some(RegRef::fp(fs1.number())), None];
            }
            FmvXD { rd, fs1 } => {
                self.set_reg(rd, self.fregs[fs1.number() as usize].to_bits());
                entry.kind = OpKind::FpSimple;
                entry.dst = Self::dst(rd);
                entry.srcs = [Some(RegRef::fp(fs1.number())), None];
            }
            FmvDX { fd, rs1 } => {
                self.fregs[fd.number() as usize] = f64::from_bits(self.reg(rs1));
                entry.kind = OpKind::FpSimple;
                entry.dst = Some(RegRef::fp(fd.number()));
                entry.srcs = [Self::src(rs1), None];
            }
            Beq { rs1, rs2, offset } => branch!(rs1, rs2, offset, |a, b| a == b),
            Bne { rs1, rs2, offset } => branch!(rs1, rs2, offset, |a, b| a != b),
            Blt { rs1, rs2, offset } => {
                branch!(rs1, rs2, offset, |a, b| (a as i64) < (b as i64))
            }
            Bge { rs1, rs2, offset } => {
                branch!(rs1, rs2, offset, |a, b| (a as i64) >= (b as i64))
            }
            Bltu { rs1, rs2, offset } => branch!(rs1, rs2, offset, |a: u64, b: u64| a < b),
            Bgeu { rs1, rs2, offset } => branch!(rs1, rs2, offset, |a: u64, b: u64| a >= b),
            Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                let target = pc.wrapping_add(offset as i64 as u64);
                next_pc = target;
                entry.kind = OpKind::Jump;
                entry.dst = Self::dst(rd);
                entry.branch = Some(BranchEvent {
                    taken: true,
                    target,
                });
            }
            Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                entry.kind = OpKind::IndirectJump;
                entry.dst = Self::dst(rd);
                entry.srcs = [Self::src(rs1), None];
                entry.branch = Some(BranchEvent {
                    taken: true,
                    target,
                });
            }
            Out { rs1 } => {
                self.output.push(self.reg(rs1));
                entry.kind = OpKind::System;
                entry.srcs = [Self::src(rs1), None];
            }
            OutF { fs1 } => {
                self.output
                    .push(self.fregs[fs1.number() as usize].to_bits());
                entry.kind = OpKind::System;
                entry.srcs = [Some(RegRef::fp(fs1.number())), None];
            }
            Halt => {
                self.halted = true;
                entry.kind = OpKind::System;
            }
            Nop => {
                entry.kind = OpKind::System;
            }
        }

        self.pc = next_pc;
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};

    fn run_gp(src: &str) -> Machine<'static> {
        let program = Box::leak(Box::new(
            Assembler::new(AsmProfile::Gp)
                .assemble(src)
                .expect("assembly failed"),
        ));
        let mut m = Machine::new(program);
        m.run(1_000_000).expect("run failed");
        m
    }

    #[test]
    fn arithmetic_loop() {
        let m = run_gp(
            "main: li a0, 10\n li a1, 0\nloop: add a1, a1, a0\n addi a0, a0, -1\n bnez a0, loop\n out a1\n halt\n",
        );
        assert_eq!(m.output(), &[55]);
    }

    #[test]
    fn ret_from_main_halts() {
        let m = run_gp("main: li a0, 1\n out a0\n ret\n");
        assert!(m.halted());
        assert_eq!(m.output(), &[1]);
    }

    #[test]
    fn call_and_return() {
        let m = run_gp(
            "
main:
    addi sp, sp, -16
    sd   ra, 0(sp)
    li   a0, 20
    call double
    out  a0
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
double:
    add  a0, a0, a0
    ret
",
        );
        assert_eq!(m.output(), &[40]);
    }

    #[test]
    fn memory_and_globals() {
        let m = run_gp(
            "
main:
    la   t0, counter
    ld   t1, 0(t0)
    addi t1, t1, 5
    sd   t1, 0(t0)
    ld   t2, 0(t0)
    out  t2
    halt
    .data
counter: .dword 37
",
        );
        assert_eq!(m.output(), &[42]);
    }

    #[test]
    fn signed_loads() {
        let m = run_gp(
            "
main:
    la  t0, bytes
    lb  t1, 0(t0)
    out t1
    lbu t2, 0(t0)
    out t2
    lh  t3, 2(t0)
    out t3
    lw  t4, 4(t0)
    out t4
    halt
    .data
bytes: .byte 0xff, 0\n .half 0x8000\n .word 0xffffffff
",
        );
        assert_eq!(
            m.output(),
            &[(-1i64) as u64, 0xff, (-32768i64) as u64, (-1i64) as u64]
        );
    }

    #[test]
    fn division_edge_cases() {
        let m = run_gp(
            "
main:
    li  t0, 7
    li  t1, 0
    div t2, t0, t1
    out t2
    rem t3, t0, t1
    out t3
    li  t4, -7
    li  t5, 2
    div t6, t4, t5
    out t6
    halt
",
        );
        assert_eq!(m.output(), &[u64::MAX, 7, (-3i64) as u64]);
    }

    #[test]
    fn floating_point() {
        let m = run_gp(
            "
main:
    fli  ft0, 2.0
    fli  ft1, 0.25
    fdiv.d ft2, ft0, ft1
    outf ft2
    fsqrt.d ft3, ft0
    fmul.d ft3, ft3, ft3
    flt.d t0, ft0, ft2
    out  t0
    halt
",
        );
        assert_eq!(f64::from_bits(m.output()[0]), 8.0);
        assert_eq!(m.output()[1], 1);
    }

    #[test]
    fn fuel_exhaustion() {
        let program = Assembler::new(AsmProfile::Gp)
            .assemble("main: j main\n")
            .unwrap();
        let mut m = Machine::new(&program);
        let err = m.run(100).unwrap_err();
        assert_eq!(err, SimError::OutOfFuel { executed: 100 });
    }

    #[test]
    fn null_dereference_faults() {
        let program = Assembler::new(AsmProfile::Gp)
            .assemble("main: ld t0, 0(zero)\n halt\n")
            .unwrap();
        let mut m = Machine::new(&program);
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, SimError::Mem { .. }));
    }

    #[test]
    fn trace_records_loads_with_extended_values() {
        let program = Assembler::new(AsmProfile::Gp)
            .assemble("main: la t0, v\n lw t1, 0(t0)\n halt\n.data\nv: .word 0xffffffff\n")
            .unwrap();
        let mut m = Machine::new(&program);
        let trace = m.run_traced(100).unwrap();
        let load = trace.iter().find(|e| e.is_load()).unwrap();
        let mem = load.mem.unwrap();
        assert_eq!(
            mem.value,
            u64::MAX,
            "trace must hold the sign-extended register value"
        );
        assert_eq!(mem.width, 4);
    }

    #[test]
    fn trace_branch_events() {
        let program = Assembler::new(AsmProfile::Gp)
            .assemble("main: li t0, 1\n beqz t0, skip\n nop\nskip: halt\n")
            .unwrap();
        let mut m = Machine::new(&program);
        let trace = m.run_traced(100).unwrap();
        let br = trace.iter().find(|e| e.kind == OpKind::CondBranch).unwrap();
        let ev = br.branch.unwrap();
        assert!(!ev.taken);
        assert_eq!(ev.target, br.pc + 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "main: li a0, 123456\n li a1, 789\n mul a2, a0, a1\n out a2\n halt\n";
        let p = Assembler::new(AsmProfile::Gp).assemble(src).unwrap();
        let mut m1 = Machine::new(&p);
        let mut m2 = Machine::new(&p);
        let t1 = m1.run_traced(1000).unwrap();
        let t2 = m2.run_traced(1000).unwrap();
        assert_eq!(t1.entries(), t2.entries());
        assert_eq!(m1.output_checksum(), m2.output_checksum());
    }

    #[test]
    fn output_checksum_is_order_sensitive() {
        let p1 = Assembler::new(AsmProfile::Gp)
            .assemble("main: li a0, 1\n li a1, 2\n out a0\n out a1\n halt\n")
            .unwrap();
        let p2 = Assembler::new(AsmProfile::Gp)
            .assemble("main: li a0, 1\n li a1, 2\n out a1\n out a0\n halt\n")
            .unwrap();
        let mut m1 = Machine::new(&p1);
        let mut m2 = Machine::new(&p2);
        m1.run(100).unwrap();
        m2.run(100).unwrap();
        assert_ne!(m1.output_checksum(), m2.output_checksum());
    }

    #[test]
    fn toc_profile_runs_identically() {
        let src = "
main:
    la   t0, table
    ld   t1, 8(t0)
    out  t1
    halt
    .data
table: .dword 10, 20, 30
";
        for profile in [AsmProfile::Toc, AsmProfile::Gp] {
            let p = Assembler::new(profile).assemble(src).unwrap();
            let mut m = Machine::new(&p);
            m.run(100).unwrap();
            assert_eq!(m.output(), &[20], "profile {profile} produced wrong result");
        }
    }
}
