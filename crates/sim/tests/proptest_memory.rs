//! Property tests: the simulator memory against a byte-map reference
//! model, and machine determinism.

use lvp_isa::{AsmProfile, Assembler, DATA_BASE, MEM_SIZE};
use lvp_sim::{Machine, Memory};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MemOp {
    Store { addr: u64, width: u8, value: u64 },
    Load { addr: u64, width: u8 },
}

fn arb_mem_ops() -> impl Strategy<Value = Vec<MemOp>> {
    let width = prop_oneof![Just(1u8), Just(2), Just(4), Just(8)];
    proptest::collection::vec(
        prop_oneof![
            (0u64..512, width.clone(), any::<u64>()).prop_map(|(o, w, v)| {
                MemOp::Store {
                    addr: DATA_BASE + o * 8,
                    width: w,
                    value: v,
                }
            }),
            (0u64..512, width).prop_map(|(o, w)| MemOp::Load {
                addr: DATA_BASE + o * 8,
                width: w
            }),
        ],
        1..200,
    )
}

proptest! {
    /// Memory behaves exactly like a per-byte map.
    #[test]
    fn memory_matches_byte_map(ops in arb_mem_ops()) {
        let mut mem = Memory::new(&[]);
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match op {
                MemOp::Store { addr, width, value } => {
                    mem.store(*addr, *width, *value).unwrap();
                    for i in 0..*width as u64 {
                        reference.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                MemOp::Load { addr, width } => {
                    let got = mem.load(*addr, *width).unwrap();
                    let mut expect = 0u64;
                    for i in 0..*width as u64 {
                        expect |= (*reference.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
                    }
                    prop_assert_eq!(got, expect);
                }
            }
        }
    }

    /// Every unaligned or out-of-range access errors and never panics.
    #[test]
    fn bad_accesses_error_cleanly(addr in any::<u64>(), width_sel in 0u8..4) {
        let width = [1u8, 2, 4, 8][width_sel as usize];
        let mut mem = Memory::new(&[]);
        let aligned = addr % width as u64 == 0;
        let in_range = addr >= DATA_BASE && addr.checked_add(width as u64).is_some_and(|end| end <= MEM_SIZE);
        let ok = aligned && in_range;
        prop_assert_eq!(mem.load(addr, width).is_ok(), ok);
        prop_assert_eq!(mem.store(addr, width, 0xdead).is_ok(), ok);
    }

    /// Simulating a random straight-line ALU program is deterministic and
    /// register x0 stays zero.
    #[test]
    fn straightline_programs_deterministic(
        ops in proptest::collection::vec((0u8..4, 1u8..32, 1u8..32, -100i32..100), 1..50)
    ) {
        let mut src = String::from("main:\n");
        for (op, rd, rs, imm) in &ops {
            let line = match op {
                0 => format!("    addi x{rd}, x{rs}, {imm}\n"),
                1 => format!("    xor x{rd}, x{rs}, x{rd}\n"),
                2 => format!("    slli x{rd}, x{rs}, {}\n", (*imm).unsigned_abs() % 64),
                _ => format!("    sub x{rd}, zero, x{rs}\n"),
            };
            src.push_str(&line);
        }
        src.push_str("    out x1\n    halt\n");
        let program = Assembler::new(AsmProfile::Gp).assemble(&src).unwrap();
        let mut m1 = Machine::new(&program);
        let mut m2 = Machine::new(&program);
        let t1 = m1.run_traced(100_000).unwrap();
        let t2 = m2.run_traced(100_000).unwrap();
        prop_assert_eq!(t1.entries(), t2.entries());
        prop_assert_eq!(m1.output(), m2.output());
        prop_assert_eq!(m1.reg(lvp_isa::Reg::ZERO), 0);
    }
}
