//! Dynamic branch prediction: a 2-bit BHT plus a small direct-mapped BTB
//! for indirect jumps (the 620's branch machinery at the fidelity the
//! paper's model requires).

/// A pattern-less bimodal branch predictor (per-PC 2-bit saturating
/// counters) with a direct-mapped branch target buffer for indirect
/// targets.
///
/// # Examples
///
/// ```
/// use lvp_uarch::BranchPredictor;
/// let mut bp = BranchPredictor::new(2048, 256);
/// // Cold counters start weakly not-taken.
/// assert!(!bp.predict_taken(0x10000));
/// bp.update_taken(0x10000, true);
/// bp.update_taken(0x10000, true);
/// assert!(bp.predict_taken(0x10000));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bht: Vec<u8>,
    bht_mask: usize,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    btb_mask: usize,
}

impl BranchPredictor {
    /// Creates a predictor with `bht_entries` 2-bit counters and
    /// `btb_entries` target slots (both powers of two).
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two.
    pub fn new(bht_entries: usize, btb_entries: usize) -> BranchPredictor {
        assert!(
            bht_entries.is_power_of_two(),
            "BHT size must be a power of two"
        );
        assert!(
            btb_entries.is_power_of_two(),
            "BTB size must be a power of two"
        );
        BranchPredictor {
            bht: vec![1; bht_entries], // weakly not-taken
            bht_mask: bht_entries - 1,
            btb_tags: vec![u64::MAX; btb_entries],
            btb_targets: vec![0; btb_entries],
            btb_mask: btb_entries - 1,
        }
    }

    #[inline]
    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.bht_mask
    }

    #[inline]
    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.btb_mask
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[inline]
    pub fn predict_taken(&self, pc: u64) -> bool {
        self.bht[self.bht_index(pc)] >= 2
    }

    /// Trains the direction predictor with the actual outcome.
    #[inline]
    pub fn update_taken(&mut self, pc: u64, taken: bool) {
        let idx = self.bht_index(pc);
        let c = &mut self.bht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predicted target of the indirect jump at `pc`, if the BTB has one.
    #[inline]
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        let i = self.btb_index(pc);
        (self.btb_tags[i] == pc).then(|| self.btb_targets[i])
    }

    /// Trains the BTB with the actual target.
    #[inline]
    pub fn update_target(&mut self, pc: u64, target: u64) {
        let i = self.btb_index(pc);
        self.btb_tags[i] = pc;
        self.btb_targets[i] = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_hysteresis() {
        let mut bp = BranchPredictor::new(64, 16);
        let pc = 0x10000;
        bp.update_taken(pc, true);
        bp.update_taken(pc, true); // strongly taken (counter 3)
        assert!(bp.predict_taken(pc));
        bp.update_taken(pc, false); // 2: still predicts taken
        assert!(bp.predict_taken(pc));
        bp.update_taken(pc, false); // 1: now not-taken
        assert!(!bp.predict_taken(pc));
    }

    #[test]
    fn loop_branch_predicts_well() {
        let mut bp = BranchPredictor::new(64, 16);
        let pc = 0x10040;
        let mut correct = 0;
        // 10 iterations of a loop taken 9 times then exiting.
        for round in 0..10 {
            for i in 0..10 {
                let taken = i != 9;
                if bp.predict_taken(pc) == taken && round > 0 {
                    correct += 1;
                }
                bp.update_taken(pc, taken);
            }
        }
        assert!(
            correct >= 9 * 8,
            "bimodal should predict a 90% loop well: {correct}"
        );
    }

    #[test]
    fn btb_tracks_stable_targets() {
        let mut bp = BranchPredictor::new(64, 16);
        assert_eq!(bp.predict_target(0x10000), None);
        bp.update_target(0x10000, 0x20000);
        assert_eq!(bp.predict_target(0x10000), Some(0x20000));
        // Aliasing PC evicts (direct-mapped with tags).
        bp.update_target(0x10000 + 16 * 4, 0x30000);
        assert_eq!(bp.predict_target(0x10000), None);
    }
}
