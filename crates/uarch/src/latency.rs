//! Instruction issue/result latencies — the paper's Table 5.

use lvp_trace::OpKind;

/// Result latencies (cycles) for one machine model, matching the paper's
/// Table 5 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    /// Simple integer ALU result latency.
    pub int_simple: u64,
    /// Complex integer (multiply/divide) result latency.
    pub int_complex: u64,
    /// Load-use latency on an L1 hit (address generation + cache access).
    pub load: u64,
    /// Simple FP result latency.
    pub fp_simple: u64,
    /// Complex FP (divide/sqrt) result latency.
    pub fp_complex: u64,
    /// Branch misprediction penalty (refetch bubble), cycles.
    pub mispredict_penalty: u64,
}

impl LatencyTable {
    /// PowerPC 620 latencies (Table 5, columns 2–3): loads 2 cycles,
    /// simple FP 3, complex integer ~16 (mid of the 1–35 range), complex
    /// FP 18, mispredict 1+.
    pub fn ppc620() -> LatencyTable {
        LatencyTable {
            int_simple: 1,
            int_complex: 16,
            load: 2,
            fp_simple: 3,
            fp_complex: 18,
            mispredict_penalty: 2,
        }
    }

    /// Alpha 21164 latencies (Table 5, columns 4–5): loads 2 cycles,
    /// simple FP 4, complex integer 16, complex FP ~50 (mid of 36–65),
    /// mispredict 4.
    pub fn alpha21164() -> LatencyTable {
        LatencyTable {
            int_simple: 1,
            int_complex: 16,
            load: 2,
            fp_simple: 4,
            fp_complex: 50,
            mispredict_penalty: 4,
        }
    }

    /// Result latency for an operation kind (loads assume an L1 hit; the
    /// memory hierarchy adds miss cycles on top).
    pub fn result_latency(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::IntSimple | OpKind::System => self.int_simple,
            OpKind::IntComplex => self.int_complex,
            OpKind::Load | OpKind::Store => self.load,
            OpKind::FpSimple => self.fp_simple,
            OpKind::FpComplex => self.fp_complex,
            OpKind::CondBranch | OpKind::Jump | OpKind::IndirectJump => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values() {
        let p = LatencyTable::ppc620();
        assert_eq!(p.load, 2);
        assert_eq!(p.fp_simple, 3);
        let a = LatencyTable::alpha21164();
        assert_eq!(a.fp_simple, 4);
        assert_eq!(a.mispredict_penalty, 4);
        assert!(a.fp_complex > p.fp_complex);
    }

    #[test]
    fn kinds_map_to_latencies() {
        let t = LatencyTable::ppc620();
        assert_eq!(t.result_latency(OpKind::IntSimple), 1);
        assert_eq!(t.result_latency(OpKind::IntComplex), 16);
        assert_eq!(t.result_latency(OpKind::Load), 2);
        assert_eq!(t.result_latency(OpKind::CondBranch), 1);
    }
}
