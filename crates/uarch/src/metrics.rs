//! Result metrics shared by the timing models — everything needed to
//! regenerate the paper's Figures 6–9 and Table 6.

use lvp_trace::OpKind;
use std::collections::BTreeMap;
use std::fmt;

/// Histogram of load verification latencies (cycles from dispatch to
/// verification of a correctly-predicted load), bucketed exactly like the
/// paper's Figure 7: `<4, 4, 5, 6, 7, >7`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyLatencyHistogram {
    /// Counts for buckets `<4`, `4`, `5`, `6`, `7`, `>7`.
    pub buckets: [u64; 6],
}

impl VerifyLatencyHistogram {
    /// Bucket labels in order.
    pub const LABELS: [&'static str; 6] = ["<4", "4", "5", "6", "7", ">7"];

    /// Records one verification latency.
    pub fn record(&mut self, cycles: u64) {
        let idx = match cycles {
            0..=3 => 0,
            4 => 1,
            5 => 2,
            6 => 3,
            7 => 4,
            _ => 5,
        };
        self.buckets[idx] += 1;
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Percentage distribution over the buckets (zeros when empty).
    pub fn percentages(&self) -> [f64; 6] {
        let total = self.total();
        if total == 0 {
            return [0.0; 6];
        }
        self.buckets.map(|b| 100.0 * b as f64 / total as f64)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &VerifyLatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
    }
}

/// Per-functional-unit operand-wait accounting for the paper's Figure 8:
/// the time instructions spend in reservation stations waiting for their
/// true dependencies to resolve.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperandWaitStats {
    waits: BTreeMap<OpKind, (u64, u64)>, // kind -> (total wait cycles, count)
}

impl OperandWaitStats {
    /// Records that an instruction of `kind` waited `cycles` for its
    /// operands.
    pub fn record(&mut self, kind: OpKind, cycles: u64) {
        let e = self.waits.entry(kind).or_insert((0, 0));
        e.0 += cycles;
        e.1 += 1;
    }

    /// Average wait of one kind, in cycles.
    pub fn average(&self, kind: OpKind) -> f64 {
        match self.waits.get(&kind) {
            Some(&(total, count)) if count > 0 => total as f64 / count as f64,
            _ => 0.0,
        }
    }

    /// Average over a group of kinds (e.g. the 620's two SCFX units).
    pub fn average_of(&self, kinds: &[OpKind]) -> f64 {
        let (mut total, mut count) = (0u64, 0u64);
        for k in kinds {
            if let Some(&(t, c)) = self.waits.get(k) {
                total += t;
                count += c;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &OperandWaitStats) {
        for (k, &(t, c)) in &other.waits {
            let e = self.waits.entry(*k).or_insert((0, 0));
            e.0 += t;
            e.1 += c;
        }
    }
}

/// The complete result of one timing simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Retired loads.
    pub loads: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L1 data-cache accesses (constant-verified loads never access it).
    pub l1_accesses: u64,
    /// Accesses that reached L2.
    pub l2_accesses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted conditional branches (plus BTB-missed indirect jumps).
    pub mispredicts: u64,
    /// Loads whose value was predicted usable (correct or constant).
    pub predicted_loads: u64,
    /// Loads annotated as value-mispredicted.
    pub mispredicted_loads: u64,
    /// Loads verified by the CVU (no cache access).
    pub constant_loads: u64,
    /// Distinct cycles with at least one L1 bank conflict (Figure 9).
    pub bank_conflict_cycles: u64,
    /// Verification-latency histogram (Figure 7).
    pub verify_latency: VerifyLatencyHistogram,
    /// Per-FU operand wait accounting (Figure 8).
    pub operand_wait: OperandWaitStats,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to `baseline` (same instruction
    /// count assumed).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// L1 miss rate per access.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// Fraction of cycles with a bank conflict (Figure 9).
    pub fn bank_conflict_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bank_conflict_cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs in {} cycles (IPC {:.3}), L1 miss {:.2}%, {} bank-conflict cycles",
            self.instructions,
            self.cycles,
            self.ipc(),
            100.0 * self.l1_miss_rate(),
            self.bank_conflict_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = VerifyLatencyHistogram::default();
        for (lat, expect_bucket) in [
            (0u64, 0usize),
            (3, 0),
            (4, 1),
            (5, 2),
            (6, 3),
            (7, 4),
            (8, 5),
            (100, 5),
        ] {
            let before = h.buckets[expect_bucket];
            h.record(lat);
            assert_eq!(h.buckets[expect_bucket], before + 1, "latency {lat}");
        }
        assert_eq!(h.total(), 8);
        let pct = h.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn operand_wait_averages() {
        let mut w = OperandWaitStats::default();
        w.record(OpKind::Load, 4);
        w.record(OpKind::Load, 6);
        w.record(OpKind::FpSimple, 10);
        assert!((w.average(OpKind::Load) - 5.0).abs() < 1e-12);
        assert!((w.average_of(&[OpKind::Load, OpKind::FpSimple]) - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.average(OpKind::IntComplex), 0.0);
    }

    #[test]
    fn speedup_and_rates() {
        let base = SimResult {
            cycles: 1000,
            instructions: 800,
            ..SimResult::default()
        };
        let fast = SimResult {
            cycles: 800,
            instructions: 800,
            ..SimResult::default()
        };
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
        assert!((base.ipc() - 0.8).abs() < 1e-12);
    }
}
