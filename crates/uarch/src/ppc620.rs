//! Trace-driven cycle model of a PowerPC 620-class out-of-order core
//! (paper Section 4.1, Figure 4), with the widened "620+" configuration
//! of Section 6.2.
//!
//! Modelled mechanisms: 4-wide fetch/dispatch/completion, per-FU
//! reservation stations, GPR/FPR rename buffers, a completion buffer with
//! in-order retirement, bimodal branch prediction with BTB, a dual-banked
//! non-blocking L1 data cache over an L2/memory hierarchy, and the full
//! LVP interaction of Section 4.1:
//!
//! * predicted loads forward their value at **dispatch**; dependents may
//!   issue immediately but hold their reservation stations until the load
//!   verifies (one cycle after the actual value returns);
//! * on an incorrect prediction, dependents that issued early reissue one
//!   cycle after the value returns (dependents that had not issued pay no
//!   penalty);
//! * CVU-verified constant loads never touch the cache: no bank usage, no
//!   miss.
//!
//! Simplifications (documented in DESIGN.md): perfect I-fetch and no
//! store-to-load alias refetch. Outstanding misses are bounded by the
//! configured MSHR count (the 620's non-blocking cache).

use crate::branch::BranchPredictor;
use crate::cache::{BankArbiter, CacheConfig, MemHierarchy, MemLatency};
use crate::latency::LatencyTable;
use crate::metrics::SimResult;
use lvp_trace::{OpKind, PredOutcome, Trace};
use std::collections::VecDeque;

/// Functional-unit classes of the 620 (Figure 4).
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
enum Fu {
    /// Single-cycle fixed point (2 units).
    Scfx,
    /// Multi-cycle fixed point (1 unit, unpipelined).
    Mcfx,
    /// Floating point (1 unit; complex ops unpipelined).
    Fpu,
    /// Load/store (1 unit on the 620, 2 on the 620+).
    Lsu,
    /// Branch unit.
    Bru,
}

const FU_KINDS: [Fu; 5] = [Fu::Scfx, Fu::Mcfx, Fu::Fpu, Fu::Lsu, Fu::Bru];

/// Dense index of a functional-unit class in [`FU_KINDS`] order.
const fn fu_ix(fu: Fu) -> usize {
    match fu {
        Fu::Scfx => 0,
        Fu::Mcfx => 1,
        Fu::Fpu => 2,
        Fu::Lsu => 3,
        Fu::Bru => 4,
    }
}

fn fu_of(kind: OpKind) -> Fu {
    match kind {
        OpKind::IntSimple | OpKind::System => Fu::Scfx,
        OpKind::IntComplex => Fu::Mcfx,
        OpKind::FpSimple | OpKind::FpComplex => Fu::Fpu,
        OpKind::Load | OpKind::Store => Fu::Lsu,
        OpKind::CondBranch | OpKind::Jump | OpKind::IndirectJump => Fu::Bru,
    }
}

/// Configuration of the 620-class model.
#[derive(Debug, Clone)]
pub struct Ppc620Config {
    /// Display name.
    pub name: &'static str,
    /// Fetch/dispatch/completion width.
    pub width: usize,
    /// Reservation stations per functional-unit *class*.
    pub rs_per_class: usize,
    /// GPR rename buffers.
    pub gpr_renames: usize,
    /// FPR rename buffers.
    pub fpr_renames: usize,
    /// Completion (reorder) buffer entries.
    pub completion_buffer: usize,
    /// Number of load/store units.
    pub n_lsu: usize,
    /// Loads+stores that may dispatch per cycle.
    pub mem_dispatch_per_cycle: usize,
    /// Instruction latencies.
    pub latency: LatencyTable,
    /// L1 data-cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Miss latencies.
    pub mem_latency: MemLatency,
    /// Miss-status holding registers: maximum outstanding L1 misses the
    /// non-blocking cache supports; further missing loads wait to issue.
    pub mshrs: usize,
}

impl Ppc620Config {
    /// The baseline PowerPC 620: 2-entry reservation stations per unit
    /// class (4 for the two SCFX units), 8+8 rename buffers, a 16-entry
    /// completion buffer, one LSU, and one load/store dispatch per cycle.
    pub fn base() -> Ppc620Config {
        Ppc620Config {
            name: "620",
            width: 4,
            rs_per_class: 4,
            gpr_renames: 8,
            fpr_renames: 8,
            completion_buffer: 16,
            n_lsu: 1,
            mem_dispatch_per_cycle: 1,
            latency: LatencyTable::ppc620(),
            l1: CacheConfig::ppc620_l1d(),
            l2: CacheConfig::ppc620_l2(),
            mem_latency: MemLatency::ppc620(),
            mshrs: 4,
        }
    }

    /// The "next-generation" 620+ (Section 6.2): doubled reservation
    /// stations, rename buffers and completion buffer; a second LSU
    /// without an extra cache port; up to two loads/stores dispatched per
    /// cycle.
    pub fn plus() -> Ppc620Config {
        Ppc620Config {
            name: "620+",
            rs_per_class: 8,
            gpr_renames: 16,
            fpr_renames: 16,
            completion_buffer: 32,
            n_lsu: 2,
            mem_dispatch_per_cycle: 2,
            ..Ppc620Config::base()
        }
    }

    fn units(&self, fu: Fu) -> usize {
        match fu {
            Fu::Scfx => 2,
            Fu::Mcfx | Fu::Fpu | Fu::Bru => 1,
            Fu::Lsu => self.n_lsu,
        }
    }
}

#[derive(Debug, Copy, Clone, PartialEq, Eq)]
enum State {
    Waiting,
    Executing,
    Finished,
}

#[derive(Debug, Clone)]
struct Slot {
    seq: u64,
    kind: OpKind,
    fu: Fu,
    pred: Option<PredOutcome>,
    mem_addr: u64,
    dst: Option<usize>,
    src_producers: [Option<u64>; 2],
    state: State,
    dispatch_cycle: u64,
    min_issue_cycle: u64,
    issue_cycle: u64,
    finish_cycle: u64,
    /// For predicted loads: finish + 1; otherwise == finish.
    verify_cycle: u64,
    /// Sequence numbers of speculative (predicted-load) sources this slot
    /// consumed; RS release and retirement wait until they all verify.
    spec_srcs: [Option<u64>; 2],
    issued_spec: bool,
    holds_rs: bool,
    operand_wait: u64,
    squashed_once: bool,
}

/// Runs the 620-class model over a trace.
///
/// `outcomes` carries one [`PredOutcome`] per dynamic load (from
/// [`lvp_predictor::LvpUnit::annotate`], under any
/// [`lvp_predictor::PredictorKind`]); pass `None` for the no-LVP
/// baseline. The model reads only these verdicts — never the
/// predictor's tables — so every backend is costed identically.
///
/// # Panics
///
/// Panics if `outcomes` is `Some` but shorter than the trace's load
/// count, or if the model stops making progress (an internal bug).
pub fn simulate_620(
    trace: &Trace,
    outcomes: Option<&[PredOutcome]>,
    config: &Ppc620Config,
) -> SimResult {
    let mut result = SimResult::default();
    let mut bp = BranchPredictor::new(2048, 256);
    let mut mem = MemHierarchy::new(config.l1, config.l2, config.mem_latency);
    let mut banks = BankArbiter::new();

    let entries = trace.entries();
    let mut next_dispatch = 0usize; // trace index
    let mut load_index = 0usize;

    let mut window: VecDeque<Slot> = VecDeque::with_capacity(config.completion_buffer);
    let mut head_seq: u64 = 0; // seq of window[0]
    let mut reg_producer: [Option<u64>; 64] = [None; 64];

    let mut rs_used = [0usize; 5];
    let rs_cap = config.rs_per_class;

    let mut gpr_free = config.gpr_renames;
    let mut fpr_free = config.fpr_renames;

    // Unpipelined-unit busy-until cycles.
    let mut mcfx_busy: u64 = 0;
    let mut fpu_complex_busy: u64 = 0;
    // Fill times of in-flight L1 misses (the MSHRs).
    let mut mshr_fill: Vec<u64> = Vec::new();
    // Reused worklist for transitive squashes.
    let mut squash_scratch: Vec<u64> = Vec::new();

    // Branch redirect state.
    let mut pending_gate: Option<u64> = None; // seq of unresolved mispredicted branch
    let mut dispatch_blocked_until: u64 = 0;

    let mut cycle: u64 = 0;
    let mut last_progress: (u64, (u64, usize)) = (0, (0, 0));

    while next_dispatch < entries.len() || !window.is_empty() {
        // Number of state changes this cycle; when a full cycle performs
        // none, every future change is gated on a known event cycle and
        // the idle stretch can be skipped wholesale (see below).
        let mut activity = 0usize;

        // ---- 1. process verifications & squashes scheduled this cycle ----
        // ---- 2. executing -> finished ----
        // ---- 3. release reservation stations ----
        // One merged pass. The orderings the split passes enforced do not
        // observe each other: squashing only distinguishes Waiting from
        // issued slots (not Executing from Finished), a same-cycle finish
        // can never satisfy `verify_cycle == cycle` (verify > finish for
        // predicted loads), and an RS released before a later squash
        // re-acquires it in the same pass — so the merged pass computes
        // the identical fixed state (asserted against the split-pass
        // reference implementation in the test module).
        for i in 0..window.len() {
            let s = &mut window[i];
            if s.state == State::Executing && s.finish_cycle <= cycle {
                s.state = State::Finished;
                activity += 1;
            }
            let (incorrect, vc, lseq, lfinish) = (
                s.pred == Some(PredOutcome::Incorrect) && !s.squashed_once,
                s.verify_cycle,
                s.seq,
                s.finish_cycle,
            );
            if incorrect && s.state == State::Finished && vc == cycle {
                s.squashed_once = true;
                activity += 1;
                squash_dependents(
                    &mut window,
                    lseq,
                    lfinish,
                    cycle,
                    &mut rs_used,
                    &mut squash_scratch,
                );
            }
            let s = &window[i];
            if !s.holds_rs || s.state == State::Waiting || s.issue_cycle > cycle {
                continue;
            }
            if s.issued_spec && !spec_sources_verified(&window, head_seq, i, cycle) {
                continue;
            }
            let fu = s.fu;
            window[i].holds_rs = false;
            rs_used[fu_ix(fu)] -= 1;
            activity += 1;
        }

        // ---- 4. in-order completion ----
        let mut retired = 0usize;
        while retired < config.width && !window.is_empty() {
            let s = &window[0];
            let can_retire = s.state == State::Finished
                && cycle >= s.verify_cycle
                && !s.holds_rs
                && (!s.issued_spec || spec_sources_verified(&window, head_seq, 0, cycle));
            if !can_retire {
                break;
            }
            let s = window.pop_front().expect("window non-empty");
            head_seq += 1;
            retired += 1;
            result.instructions += 1;
            result.operand_wait.record(s.kind, s.operand_wait);
            if s.kind == OpKind::Store {
                // The store drains from the store queue into its bank.
                banks.claim(s.mem_addr, cycle);
            }
            if let Some(d) = s.dst {
                if reg_producer[d] == Some(s.seq) {
                    reg_producer[d] = None;
                }
                if d < 32 {
                    gpr_free += 1;
                } else {
                    fpr_free += 1;
                }
            }
            if s.kind == OpKind::Load {
                result.loads += 1;
                match s.pred {
                    Some(PredOutcome::Correct) | Some(PredOutcome::Constant) => {
                        result.predicted_loads += 1;
                        result
                            .verify_latency
                            .record(s.verify_cycle.saturating_sub(s.dispatch_cycle));
                        if s.pred == Some(PredOutcome::Constant) {
                            result.constant_loads += 1;
                        }
                    }
                    Some(PredOutcome::Incorrect) => result.mispredicted_loads += 1,
                    _ => {}
                }
            }
        }
        activity += retired;

        // ---- 5. issue ----
        // One window-major pass with per-FU budgets, replacing the
        // per-FU rescans of the reference model. Issuing an op never
        // changes whether an op of a *different* class issues this
        // cycle: a value produced this cycle is available no earlier
        // than the next one, and the structural resources (banks,
        // MSHRs, the unpipelined MCFX/FPU timers) are each private to
        // one class — so only the relative order *within* a class is
        // observable, and that order (window order) is preserved.
        let mut left = [0usize; 5];
        for fu in FU_KINDS {
            left[fu_ix(fu)] = config.units(fu);
        }
        // A busy unpipelined unit blocks every later candidate of its
        // class this cycle, exactly like the reference model's `break`.
        let mut closed = [false; 5];
        for i in 0..window.len() {
            let fu = window[i].fu;
            let fx = fu_ix(fu);
            if left[fx] == 0 || closed[fx] {
                continue;
            }
            let ready = {
                let s = &window[i];
                s.state == State::Waiting
                    && s.dispatch_cycle < cycle
                    && s.min_issue_cycle <= cycle
                    && operands_ready(&window, head_seq, i, cycle)
            };
            if !ready {
                continue;
            }
            // Structural checks for unpipelined units.
            match fu {
                Fu::Mcfx if mcfx_busy > cycle => {
                    closed[fx] = true;
                    continue;
                }
                // A complex FP op occupies the single FPU end-to-end.
                Fu::Fpu if fpu_complex_busy > cycle => {
                    closed[fx] = true;
                    continue;
                }
                _ => {}
            }
            // Compute timing for this issue.
            let (op_wait, spec_srcs, is_spec) = operand_wait_info(&window, head_seq, i, cycle);
            let (finish, verify) = {
                let s = &window[i];
                match s.kind {
                    OpKind::Load => {
                        let agen_done = cycle + 1;
                        if s.pred == Some(PredOutcome::Constant) {
                            // CVU verifies without touching the cache.
                            let fin = agen_done + 1;
                            (fin, fin + 1)
                        } else {
                            // A miss needs a free MSHR; stall issue of
                            // this load until one drains.
                            mshr_fill.retain(|&t| t > cycle);
                            if mshr_fill.len() >= config.mshrs && !mem.probe_l1(s.mem_addr) {
                                continue;
                            }
                            let granted = banks.claim(s.mem_addr, agen_done);
                            result.l1_accesses += 1;
                            let extra = mem.access(s.mem_addr);
                            if extra > 0 {
                                result.l1_misses += 1;
                                mshr_fill.push(granted + 1 + extra);
                            }
                            let fin = granted + 1 + extra;
                            let ver = if s.pred.is_some_and(|p| p.predicted()) {
                                fin + 1
                            } else {
                                fin
                            };
                            (fin, ver)
                        }
                    }
                    OpKind::Store => {
                        // Stores only generate their address here; the
                        // data-cache bank is accessed at completion,
                        // when the store drains from the store queue
                        // (so loads and stores contend for banks, as
                        // in Section 6.5).
                        let agen_done = cycle + 1;
                        result.l1_accesses += 1;
                        let extra = mem.access(s.mem_addr);
                        if extra > 0 {
                            result.l1_misses += 1;
                        }
                        let fin = agen_done + 1;
                        (fin, fin)
                    }
                    kind => {
                        let fin = cycle + config.latency.result_latency(kind);
                        (fin, fin)
                    }
                }
            };
            {
                let s = &mut window[i];
                s.state = State::Executing;
                s.issue_cycle = cycle;
                s.finish_cycle = finish;
                s.verify_cycle = verify;
                s.operand_wait = op_wait;
                s.issued_spec = is_spec;
                s.spec_srcs = spec_srcs;
                match fu {
                    Fu::Mcfx => mcfx_busy = finish,
                    Fu::Fpu if s.kind == OpKind::FpComplex => fpu_complex_busy = finish,
                    _ => {}
                }
                // A mispredicted branch resolves the fetch gate when it
                // executes: refetch begins after the penalty.
                if pending_gate == Some(s.seq) {
                    dispatch_blocked_until = finish + config.latency.mispredict_penalty;
                    pending_gate = None;
                }
            }
            left[fx] -= 1;
            activity += 1;
        }

        // ---- 6. dispatch ----
        let mut dispatched = 0usize;
        let mut mem_dispatched = 0usize;
        while dispatched < config.width
            && pending_gate.is_none()
            && cycle >= dispatch_blocked_until
            && next_dispatch < entries.len()
            && window.len() < config.completion_buffer
        {
            let e = &entries[next_dispatch];
            let fu = fu_of(e.kind);
            if rs_used[fu_ix(fu)] >= rs_cap {
                break;
            }
            if e.kind.is_mem() && mem_dispatched >= config.mem_dispatch_per_cycle {
                break;
            }
            // Rename buffer for the destination.
            let dst = e.dst.map(|d| d.flat_index());
            match dst {
                Some(d) if d < 32 && gpr_free == 0 => break,
                Some(d) if d >= 32 && fpr_free == 0 => break,
                _ => {}
            }

            let seq = head_seq + window.len() as u64;
            // Branch prediction.
            let mut mispredicted = false;
            match e.kind {
                OpKind::CondBranch => {
                    result.branches += 1;
                    let taken = e.branch.expect("branch entry must carry outcome").taken;
                    let predicted = bp.predict_taken(e.pc);
                    bp.update_taken(e.pc, taken);
                    if predicted != taken {
                        result.mispredicts += 1;
                        mispredicted = true;
                    }
                }
                OpKind::IndirectJump => {
                    let target = e.branch.expect("jump entry must carry target").target;
                    let hit = bp.predict_target(e.pc) == Some(target);
                    bp.update_target(e.pc, target);
                    if !hit {
                        result.mispredicts += 1;
                        mispredicted = true;
                    }
                }
                _ => {}
            }

            // LVP annotation for loads.
            let pred = if e.kind == OpKind::Load {
                let p = outcomes.map(|o| o[load_index]);
                load_index += 1;
                p
            } else {
                None
            };

            let mut src_producers = [None, None];
            for (k, src) in e.srcs.iter().enumerate() {
                if let Some(r) = src {
                    src_producers[k] = reg_producer[r.flat_index()];
                }
            }
            if let Some(d) = dst {
                reg_producer[d] = Some(seq);
                if d < 32 {
                    gpr_free -= 1;
                } else {
                    fpr_free -= 1;
                }
            }
            rs_used[fu_ix(fu)] += 1;

            window.push_back(Slot {
                seq,
                kind: e.kind,
                fu,
                pred,
                mem_addr: e.mem.map_or(0, |m| m.addr),
                dst,
                src_producers,
                state: State::Waiting,
                dispatch_cycle: cycle,
                min_issue_cycle: 0,
                issue_cycle: 0,
                finish_cycle: u64::MAX,
                verify_cycle: u64::MAX,
                spec_srcs: [None, None],
                issued_spec: false,
                holds_rs: true,
                operand_wait: 0,
                squashed_once: false,
            });
            next_dispatch += 1;
            dispatched += 1;
            if e.kind.is_mem() {
                mem_dispatched += 1;
            }
            if mispredicted {
                pending_gate = Some(seq);
                break;
            }
        }
        activity += dispatched;

        // Idle-cycle skipping: a cycle with zero state changes implies
        // every future change is gated on one of the event cycles
        // below, so the idle stretch is skipped in one step. The jump
        // lands *exactly* on the earliest event — squash timing
        // requires `verify_cycle == cycle` — and waking early is
        // harmless (the cycle is idle again), so taking the minimum
        // over a superset of the live events is safe.
        let mut next_cycle = cycle + 1;
        if activity == 0 {
            let mut event = u64::MAX;
            for s in &window {
                let e = match s.state {
                    State::Executing => s.finish_cycle,
                    State::Finished => s.verify_cycle,
                    // Squashed slots sleep until their producer verifies.
                    State::Waiting => s.min_issue_cycle,
                };
                if e > cycle && e < event {
                    event = e;
                }
            }
            for t in [mcfx_busy, fpu_complex_busy] {
                if t > cycle && t < event {
                    event = t;
                }
            }
            for &t in &mshr_fill {
                if t > cycle && t < event {
                    event = t;
                }
            }
            if next_dispatch < entries.len() && dispatch_blocked_until > cycle {
                event = event.min(dispatch_blocked_until);
            }
            if event != u64::MAX {
                // Never skip past the progress guard's horizon, so a
                // genuine deadlock still panics at the same cycle the
                // cycle-by-cycle model would.
                next_cycle = event.min(last_progress.0 + 100_001);
            }
        }
        cycle = next_cycle;
        // Progress guard against model deadlocks.
        if (head_seq, next_dispatch) != last_progress.1 {
            last_progress = (cycle, (head_seq, next_dispatch));
        } else if cycle - last_progress.0 > 100_000 {
            panic!(
                "620 model deadlock at cycle {cycle}: window head {:?}",
                window.front()
            );
        }
    }

    result.cycles = cycle;
    result.l2_accesses = mem.l2_accesses();
    result.bank_conflict_cycles = banks.conflict_cycles();
    result
}

/// Whether every source operand of `window[i]` is available at `cycle`.
fn operands_ready(window: &VecDeque<Slot>, head_seq: u64, i: usize, cycle: u64) -> bool {
    let s = &window[i];
    for p in s.src_producers.iter().flatten() {
        if *p < head_seq {
            continue; // producer retired: architectural value
        }
        let prod = &window[(*p - head_seq) as usize];
        if producer_available(prod, cycle).is_none() {
            return false;
        }
    }
    true
}

/// The cycle a producer's value became available, or `None` if it is not
/// yet available. Predicted loads forward speculatively from dispatch.
fn producer_available(prod: &Slot, cycle: u64) -> Option<u64> {
    if prod.kind == OpKind::Load && prod.pred.is_some_and(|p| p.predicted()) {
        return Some(prod.dispatch_cycle);
    }
    if prod.state != State::Waiting && prod.finish_cycle <= cycle {
        Some(prod.finish_cycle)
    } else {
        None
    }
}

/// Whether every speculative source of `window[i]` has verified by
/// `cycle` (retired sources count as verified).
fn spec_sources_verified(window: &VecDeque<Slot>, head_seq: u64, i: usize, cycle: u64) -> bool {
    for p in window[i].spec_srcs.iter().flatten() {
        if *p < head_seq {
            continue; // retired, hence verified
        }
        let prod = &window[(*p - head_seq) as usize];
        if prod.state != State::Finished || prod.verify_cycle > cycle {
            return false;
        }
    }
    true
}

/// Computes (operand wait cycles, speculative source seqs,
/// consumed-any-speculative-value) for the slot issuing now.
fn operand_wait_info(
    window: &VecDeque<Slot>,
    head_seq: u64,
    i: usize,
    cycle: u64,
) -> (u64, [Option<u64>; 2], bool) {
    let s = &window[i];
    let mut avail = s.dispatch_cycle;
    let mut spec_srcs = [None, None];
    let mut is_spec = false;
    for (k, p) in s.src_producers.iter().enumerate() {
        let Some(p) = p else { continue };
        if *p < head_seq {
            continue;
        }
        let prod = &window[(*p - head_seq) as usize];
        if prod.kind == OpKind::Load && prod.pred.is_some_and(|q| q.predicted()) {
            // Speculative if consumed before the load verified.
            if prod.state == State::Waiting || cycle < prod.verify_cycle {
                is_spec = true;
                spec_srcs[k] = Some(*p);
            }
            avail = avail.max(prod.dispatch_cycle);
        } else {
            avail = avail.max(prod.finish_cycle);
        }
    }
    (avail.saturating_sub(s.dispatch_cycle), spec_srcs, is_spec)
}

/// On an incorrect load verification, reset every issued transitive
/// dependent that consumed the wrong value (issued before the correct
/// value returned) back to Waiting; it may reissue from `verify_cycle`.
fn squash_dependents(
    window: &mut VecDeque<Slot>,
    producer_seq: u64,
    producer_finish: u64,
    verify_cycle: u64,
    rs_used: &mut [usize; 5],
    to_squash: &mut Vec<u64>,
) {
    to_squash.clear();
    to_squash.push(producer_seq);
    let mut k = 0;
    while k < to_squash.len() {
        let pseq = to_squash[k];
        k += 1;
        // Dependents always sit *after* their producer in the window
        // (larger seq), so new worklist entries never precede `pseq`.
        for s in window.iter_mut() {
            let depends = s.src_producers.iter().flatten().any(|&p| p == pseq);
            if !depends || s.state == State::Waiting {
                continue;
            }
            // Direct dependents of the load squash only if they issued
            // before the correct value returned; transitive dependents of
            // squashed instructions always squash (their input was wrong).
            if pseq == producer_seq && s.issue_cycle >= producer_finish {
                continue;
            }
            let seq = s.seq;
            s.state = State::Waiting;
            s.min_issue_cycle = verify_cycle;
            s.issued_spec = false;
            s.spec_srcs = [None, None];
            s.finish_cycle = u64::MAX;
            s.verify_cycle = u64::MAX;
            if !s.holds_rs {
                // It had released its RS at issue; it must hold one again
                // while it waits to reissue.
                s.holds_rs = true;
                rs_used[fu_ix(s.fu)] += 1;
            }
            to_squash.push(seq);
        }
    }
}

#[cfg(test)]
mod reference {
    //! The original cycle-by-cycle, split-pass implementation of
    //! [`simulate_620`], kept verbatim as a differential oracle: the
    //! optimized model (merged scan, single-pass issue, idle-cycle
    //! skipping) must produce bit-identical [`SimResult`]s.
    use super::*;

    pub(super) fn simulate_620_reference(
        trace: &Trace,
        outcomes: Option<&[PredOutcome]>,
        config: &Ppc620Config,
    ) -> SimResult {
        let mut result = SimResult::default();
        let mut bp = BranchPredictor::new(2048, 256);
        let mut mem = MemHierarchy::new(config.l1, config.l2, config.mem_latency);
        let mut banks = BankArbiter::new();

        let entries = trace.entries();
        let mut next_dispatch = 0usize;
        let mut load_index = 0usize;

        let mut window: Vec<Slot> = Vec::with_capacity(config.completion_buffer);
        let mut head_seq: u64 = 0;
        let mut reg_producer: [Option<u64>; 64] = [None; 64];

        let mut rs_used = [0usize; 5];
        let rs_cap = config.rs_per_class;
        let fu_index = |fu: Fu| FU_KINDS.iter().position(|&f| f == fu).unwrap();

        let mut gpr_free = config.gpr_renames;
        let mut fpr_free = config.fpr_renames;

        let mut mcfx_busy: u64 = 0;
        let mut fpu_complex_busy: u64 = 0;
        let mut mshr_fill: Vec<u64> = Vec::new();

        let mut pending_gate: Option<u64> = None;
        let mut dispatch_blocked_until: u64 = 0;

        let mut cycle: u64 = 0;
        let mut last_progress: (u64, (u64, usize)) = (0, (0, 0));

        while next_dispatch < entries.len() || !window.is_empty() {
            // ---- 1. process verifications & squashes scheduled this cycle ----
            for i in 0..window.len() {
                let (incorrect, vc, lseq, lfinish) = {
                    let s = &window[i];
                    (
                        s.pred == Some(PredOutcome::Incorrect) && !s.squashed_once,
                        s.verify_cycle,
                        s.seq,
                        s.finish_cycle,
                    )
                };
                if incorrect && window[i].state == State::Finished && vc == cycle {
                    window[i].squashed_once = true;
                    squash_dependents(&mut window, lseq, lfinish, cycle, &mut rs_used);
                }
            }

            // ---- 2. executing -> finished ----
            for s in window.iter_mut() {
                if s.state == State::Executing && s.finish_cycle <= cycle {
                    s.state = State::Finished;
                }
            }

            // ---- 3. release reservation stations ----
            for i in 0..window.len() {
                let s = &window[i];
                if !s.holds_rs || s.state == State::Waiting || s.issue_cycle > cycle {
                    continue;
                }
                if s.issued_spec && !spec_sources_verified(&window, head_seq, i, cycle) {
                    continue;
                }
                let fu = window[i].fu;
                window[i].holds_rs = false;
                rs_used[fu_index(fu)] -= 1;
            }

            // ---- 4. in-order completion ----
            let mut retired = 0usize;
            while retired < config.width && !window.is_empty() {
                let s = &window[0];
                let can_retire = s.state == State::Finished
                    && cycle >= s.verify_cycle
                    && !s.holds_rs
                    && (!s.issued_spec || spec_sources_verified(&window, head_seq, 0, cycle));
                if !can_retire {
                    break;
                }
                let s = window.remove(0);
                head_seq += 1;
                retired += 1;
                result.instructions += 1;
                result.operand_wait.record(s.kind, s.operand_wait);
                if s.kind == OpKind::Store {
                    banks.claim(s.mem_addr, cycle);
                }
                if let Some(d) = s.dst {
                    if reg_producer[d] == Some(s.seq) {
                        reg_producer[d] = None;
                    }
                    if d < 32 {
                        gpr_free += 1;
                    } else {
                        fpr_free += 1;
                    }
                }
                if s.kind == OpKind::Load {
                    result.loads += 1;
                    match s.pred {
                        Some(PredOutcome::Correct) | Some(PredOutcome::Constant) => {
                            result.predicted_loads += 1;
                            result
                                .verify_latency
                                .record(s.verify_cycle.saturating_sub(s.dispatch_cycle));
                            if s.pred == Some(PredOutcome::Constant) {
                                result.constant_loads += 1;
                            }
                        }
                        Some(PredOutcome::Incorrect) => result.mispredicted_loads += 1,
                        _ => {}
                    }
                }
            }

            // ---- 5. issue ----
            for fu in FU_KINDS {
                let mut issued = 0usize;
                let units = config.units(fu);
                let mut i = 0;
                while issued < units && i < window.len() {
                    let ready = {
                        let s = &window[i];
                        s.fu == fu
                            && s.state == State::Waiting
                            && s.dispatch_cycle < cycle
                            && s.min_issue_cycle <= cycle
                            && operands_ready(&window, head_seq, i, cycle)
                    };
                    if !ready {
                        i += 1;
                        continue;
                    }
                    match fu {
                        Fu::Mcfx if mcfx_busy > cycle => break,
                        Fu::Fpu if fpu_complex_busy > cycle => break,
                        _ => {}
                    }
                    let (op_wait, spec_srcs, is_spec) =
                        operand_wait_info(&window, head_seq, i, cycle);
                    let (finish, verify) = {
                        let s = &window[i];
                        match s.kind {
                            OpKind::Load => {
                                let agen_done = cycle + 1;
                                if s.pred == Some(PredOutcome::Constant) {
                                    let fin = agen_done + 1;
                                    (fin, fin + 1)
                                } else {
                                    mshr_fill.retain(|&t| t > cycle);
                                    if mshr_fill.len() >= config.mshrs && !mem.probe_l1(s.mem_addr)
                                    {
                                        i += 1;
                                        continue;
                                    }
                                    let granted = banks.claim(s.mem_addr, agen_done);
                                    result.l1_accesses += 1;
                                    let extra = mem.access(s.mem_addr);
                                    if extra > 0 {
                                        result.l1_misses += 1;
                                        mshr_fill.push(granted + 1 + extra);
                                    }
                                    let fin = granted + 1 + extra;
                                    let ver = if s.pred.is_some_and(|p| p.predicted()) {
                                        fin + 1
                                    } else {
                                        fin
                                    };
                                    (fin, ver)
                                }
                            }
                            OpKind::Store => {
                                let agen_done = cycle + 1;
                                result.l1_accesses += 1;
                                let extra = mem.access(s.mem_addr);
                                if extra > 0 {
                                    result.l1_misses += 1;
                                }
                                let fin = agen_done + 1;
                                (fin, fin)
                            }
                            kind => {
                                let fin = cycle + config.latency.result_latency(kind);
                                (fin, fin)
                            }
                        }
                    };
                    {
                        let s = &mut window[i];
                        s.state = State::Executing;
                        s.issue_cycle = cycle;
                        s.finish_cycle = finish;
                        s.verify_cycle = verify;
                        s.operand_wait = op_wait;
                        s.issued_spec = is_spec;
                        s.spec_srcs = spec_srcs;
                        match fu {
                            Fu::Mcfx => mcfx_busy = finish,
                            Fu::Fpu if s.kind == OpKind::FpComplex => fpu_complex_busy = finish,
                            _ => {}
                        }
                        if pending_gate == Some(s.seq) {
                            dispatch_blocked_until = finish + config.latency.mispredict_penalty;
                            pending_gate = None;
                        }
                    }
                    issued += 1;
                    i += 1;
                }
            }

            // ---- 6. dispatch ----
            let mut dispatched = 0usize;
            let mut mem_dispatched = 0usize;
            while dispatched < config.width
                && pending_gate.is_none()
                && cycle >= dispatch_blocked_until
                && next_dispatch < entries.len()
                && window.len() < config.completion_buffer
            {
                let e = &entries[next_dispatch];
                let fu = fu_of(e.kind);
                if rs_used[fu_index(fu)] >= rs_cap {
                    break;
                }
                if e.kind.is_mem() && mem_dispatched >= config.mem_dispatch_per_cycle {
                    break;
                }
                let dst = e.dst.map(|d| d.flat_index());
                match dst {
                    Some(d) if d < 32 && gpr_free == 0 => break,
                    Some(d) if d >= 32 && fpr_free == 0 => break,
                    _ => {}
                }

                let seq = head_seq + window.len() as u64;
                let mut mispredicted = false;
                match e.kind {
                    OpKind::CondBranch => {
                        result.branches += 1;
                        let taken = e.branch.expect("branch entry must carry outcome").taken;
                        let predicted = bp.predict_taken(e.pc);
                        bp.update_taken(e.pc, taken);
                        if predicted != taken {
                            result.mispredicts += 1;
                            mispredicted = true;
                        }
                    }
                    OpKind::IndirectJump => {
                        let target = e.branch.expect("jump entry must carry target").target;
                        let hit = bp.predict_target(e.pc) == Some(target);
                        bp.update_target(e.pc, target);
                        if !hit {
                            result.mispredicts += 1;
                            mispredicted = true;
                        }
                    }
                    _ => {}
                }

                let pred = if e.kind == OpKind::Load {
                    let p = outcomes.map(|o| o[load_index]);
                    load_index += 1;
                    p
                } else {
                    None
                };

                let mut src_producers = [None, None];
                for (k, src) in e.srcs.iter().enumerate() {
                    if let Some(r) = src {
                        src_producers[k] = reg_producer[r.flat_index()];
                    }
                }
                if let Some(d) = dst {
                    reg_producer[d] = Some(seq);
                    if d < 32 {
                        gpr_free -= 1;
                    } else {
                        fpr_free -= 1;
                    }
                }
                rs_used[fu_index(fu)] += 1;

                window.push(Slot {
                    seq,
                    kind: e.kind,
                    fu,
                    pred,
                    mem_addr: e.mem.map_or(0, |m| m.addr),
                    dst,
                    src_producers,
                    state: State::Waiting,
                    dispatch_cycle: cycle,
                    min_issue_cycle: 0,
                    issue_cycle: 0,
                    finish_cycle: u64::MAX,
                    verify_cycle: u64::MAX,
                    spec_srcs: [None, None],
                    issued_spec: false,
                    holds_rs: true,
                    operand_wait: 0,
                    squashed_once: false,
                });
                next_dispatch += 1;
                dispatched += 1;
                if e.kind.is_mem() {
                    mem_dispatched += 1;
                }
                if mispredicted {
                    pending_gate = Some(seq);
                    break;
                }
            }

            cycle += 1;
            if (head_seq, next_dispatch) != last_progress.1 {
                last_progress = (cycle, (head_seq, next_dispatch));
            } else if cycle - last_progress.0 > 100_000 {
                panic!(
                    "620 reference model deadlock at cycle {cycle}: window head {:?}",
                    window.first()
                );
            }
        }

        result.cycles = cycle;
        result.l2_accesses = mem.l2_accesses();
        result.bank_conflict_cycles = banks.conflict_cycles();
        result
    }

    fn operands_ready(window: &[Slot], head_seq: u64, i: usize, cycle: u64) -> bool {
        let s = &window[i];
        for p in s.src_producers.iter().flatten() {
            if *p < head_seq {
                continue;
            }
            let prod = &window[(*p - head_seq) as usize];
            if producer_available(prod, cycle).is_none() {
                return false;
            }
        }
        true
    }

    fn spec_sources_verified(window: &[Slot], head_seq: u64, i: usize, cycle: u64) -> bool {
        for p in window[i].spec_srcs.iter().flatten() {
            if *p < head_seq {
                continue;
            }
            let prod = &window[(*p - head_seq) as usize];
            if prod.state != State::Finished || prod.verify_cycle > cycle {
                return false;
            }
        }
        true
    }

    fn operand_wait_info(
        window: &[Slot],
        head_seq: u64,
        i: usize,
        cycle: u64,
    ) -> (u64, [Option<u64>; 2], bool) {
        let s = &window[i];
        let mut avail = s.dispatch_cycle;
        let mut spec_srcs = [None, None];
        let mut is_spec = false;
        for (k, p) in s.src_producers.iter().enumerate() {
            let Some(p) = p else { continue };
            if *p < head_seq {
                continue;
            }
            let prod = &window[(*p - head_seq) as usize];
            if prod.kind == OpKind::Load && prod.pred.is_some_and(|q| q.predicted()) {
                if prod.state == State::Waiting || cycle < prod.verify_cycle {
                    is_spec = true;
                    spec_srcs[k] = Some(*p);
                }
                avail = avail.max(prod.dispatch_cycle);
            } else {
                avail = avail.max(prod.finish_cycle);
            }
        }
        (avail.saturating_sub(s.dispatch_cycle), spec_srcs, is_spec)
    }

    fn squash_dependents(
        window: &mut [Slot],
        producer_seq: u64,
        producer_finish: u64,
        verify_cycle: u64,
        rs_used: &mut [usize; 5],
    ) {
        let mut to_squash: Vec<u64> = vec![producer_seq];
        let mut k = 0;
        while k < to_squash.len() {
            let pseq = to_squash[k];
            k += 1;
            for s in window.iter_mut() {
                let depends = s.src_producers.iter().flatten().any(|&p| p == pseq);
                if !depends || s.state == State::Waiting {
                    continue;
                }
                if pseq == producer_seq && s.issue_cycle >= producer_finish {
                    continue;
                }
                let seq = s.seq;
                s.state = State::Waiting;
                s.min_issue_cycle = verify_cycle;
                s.issued_spec = false;
                s.spec_srcs = [None, None];
                s.finish_cycle = u64::MAX;
                s.verify_cycle = u64::MAX;
                if !s.holds_rs {
                    s.holds_rs = true;
                    let fu = s.fu;
                    rs_used[FU_KINDS.iter().position(|&f| f == fu).unwrap()] += 1;
                }
                to_squash.push(seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_trace::{BranchEvent, MemAccess, RegRef, TraceEntry};

    fn alu(pc: u64, dst: u8, srcs: [Option<u8>; 2]) -> TraceEntry {
        TraceEntry {
            pc,
            kind: OpKind::IntSimple,
            dst: Some(RegRef::int(dst)),
            srcs: [srcs[0].map(RegRef::int), srcs[1].map(RegRef::int)],
            mem: None,
            branch: None,
        }
    }

    fn load(pc: u64, dst: u8, addr: u64) -> TraceEntry {
        TraceEntry {
            pc,
            kind: OpKind::Load,
            dst: Some(RegRef::int(dst)),
            srcs: [Some(RegRef::int(2)), None],
            mem: Some(MemAccess {
                addr,
                width: 8,
                value: 1,
                fp: false,
            }),
            branch: None,
        }
    }

    fn run(entries: &[TraceEntry], outcomes: Option<&[PredOutcome]>) -> SimResult {
        let trace: Trace = entries.iter().copied().collect();
        simulate_620(&trace, outcomes, &Ppc620Config::base())
    }

    /// Deterministic 64-bit LCG (Knuth MMIX constants).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    /// A random but structurally valid instruction mix: ALU chains,
    /// complex int/FP ops, loads/stores over hit- and miss-prone
    /// addresses, and poorly predictable branches.
    fn random_trace(seed: u64, n: usize) -> Trace {
        let mut rng = Lcg(seed);
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let r = rng.next();
            let pc = 0x1_0000 + 4 * (r % 97);
            let dst = (10 + (r >> 8) % 8) as u8;
            let src = (10 + (r >> 16) % 8) as u8;
            let e = match r % 100 {
                0..=39 => TraceEntry {
                    pc,
                    kind: OpKind::IntSimple,
                    dst: Some(RegRef::int(dst)),
                    srcs: [Some(RegRef::int(src)), None],
                    mem: None,
                    branch: None,
                },
                40..=49 => TraceEntry {
                    pc,
                    kind: OpKind::IntComplex,
                    dst: Some(RegRef::int(dst)),
                    srcs: [Some(RegRef::int(src)), Some(RegRef::int(2))],
                    mem: None,
                    branch: None,
                },
                50..=54 => TraceEntry {
                    pc,
                    kind: OpKind::FpSimple,
                    dst: Some(RegRef::fp(dst)),
                    srcs: [Some(RegRef::fp(src)), None],
                    mem: None,
                    branch: None,
                },
                55..=59 => TraceEntry {
                    pc,
                    kind: OpKind::FpComplex,
                    dst: Some(RegRef::fp(dst)),
                    srcs: [Some(RegRef::fp(src)), Some(RegRef::fp(2))],
                    mem: None,
                    branch: None,
                },
                60..=79 => {
                    // Mix cache-resident and striding (miss-prone) loads.
                    let addr = if r.is_multiple_of(3) {
                        0x10_0000 + ((r >> 24) % 8) * 8
                    } else {
                        0x20_0000 + ((r >> 24) % 512) * 4096
                    };
                    load(pc, dst, addr)
                }
                80..=89 => TraceEntry {
                    pc,
                    kind: OpKind::Store,
                    dst: None,
                    srcs: [Some(RegRef::int(src)), Some(RegRef::int(2))],
                    mem: Some(MemAccess {
                        addr: 0x30_0000 + ((r >> 24) % 64) * 8,
                        width: 8,
                        value: 0,
                        fp: false,
                    }),
                    branch: None,
                },
                _ => TraceEntry {
                    pc,
                    kind: OpKind::CondBranch,
                    dst: None,
                    srcs: [Some(RegRef::int(src)), None],
                    mem: None,
                    branch: Some(BranchEvent {
                        taken: (r >> 32).is_multiple_of(3),
                        target: pc + 8,
                    }),
                },
            };
            entries.push(e);
            let _ = i;
        }
        entries.into_iter().collect()
    }

    /// Random per-load outcome mix covering every [`PredOutcome`].
    fn random_outcomes(seed: u64, loads: usize) -> Vec<PredOutcome> {
        let mut rng = Lcg(seed);
        (0..loads)
            .map(|_| match rng.next() % 10 {
                0..=3 => PredOutcome::Correct,
                4..=5 => PredOutcome::Incorrect,
                6 => PredOutcome::Constant,
                _ => PredOutcome::NotPredicted,
            })
            .collect()
    }

    /// The optimized model must be bit-identical to the preserved
    /// cycle-by-cycle reference on randomized traces, across both
    /// machine configs and every outcome regime.
    #[test]
    fn optimized_matches_reference_on_random_traces() {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let trace = random_trace(seed, 3000);
            let loads = trace.stats().loads as usize;
            let outcome_sets: [Option<Vec<PredOutcome>>; 5] = [
                None,
                Some(vec![PredOutcome::Correct; loads]),
                Some(vec![PredOutcome::Incorrect; loads]),
                Some(vec![PredOutcome::Constant; loads]),
                Some(random_outcomes(seed ^ 0x5555, loads)),
            ];
            for config in [Ppc620Config::base(), Ppc620Config::plus()] {
                for outcomes in &outcome_sets {
                    let fast = simulate_620(&trace, outcomes.as_deref(), &config);
                    let slow =
                        reference::simulate_620_reference(&trace, outcomes.as_deref(), &config);
                    assert_eq!(
                        fast,
                        slow,
                        "divergence: seed {seed}, config {}, outcomes {:?}",
                        config.name,
                        outcomes.as_deref().map(|o| o.first())
                    );
                }
            }
        }
    }

    /// Same parity check on the structured corner-case traces the
    /// existing unit tests exercise (serial chains, pointer chases).
    #[test]
    fn optimized_matches_reference_on_structured_traces() {
        let mut entries = Vec::new();
        for i in 0..800u64 {
            let mut l = load(0x10000, 10, 0x10_0000 + (i % 4) * 64);
            l.srcs = [Some(RegRef::int(2)), None];
            entries.push(l);
            entries.push(alu(0x10004, 2, [Some(10), None]));
        }
        let trace: Trace = entries.into_iter().collect();
        let loads = trace.stats().loads as usize;
        for outcomes in [
            None,
            Some(vec![PredOutcome::Correct; loads]),
            Some(vec![PredOutcome::Incorrect; loads]),
        ] {
            let fast = simulate_620(&trace, outcomes.as_deref(), &Ppc620Config::base());
            let slow = reference::simulate_620_reference(
                &trace,
                outcomes.as_deref(),
                &Ppc620Config::base(),
            );
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn empty_trace() {
        let r = run(&[], None);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let entries: Vec<_> = (0..4000)
            .map(|i| alu(0x10000 + 4 * (i % 64), (i % 8) as u8 + 10, [None, None]))
            .collect();
        let r = run(&entries, None);
        assert_eq!(r.instructions, 4000);
        // 2 SCFX units bound throughput at 2 IPC.
        assert!(r.ipc() > 1.7, "IPC {:.2}", r.ipc());
        assert!(r.ipc() <= 2.05, "IPC {:.2}", r.ipc());
    }

    #[test]
    fn dependent_chain_is_serialized() {
        let entries: Vec<_> = (0..1000)
            .map(|i| alu(0x10000 + 4 * (i % 64), 10, [Some(10), None]))
            .collect();
        let r = run(&entries, None);
        assert!(
            r.ipc() < 1.1,
            "serial chain cannot exceed 1 IPC: {:.2}",
            r.ipc()
        );
    }

    #[test]
    fn load_use_chain_speeds_up_with_lvp() {
        // A serial pointer-chase: each load's address depends on the ALU
        // result of the previous load's value. With LVP the consumer gets
        // the value at dispatch, collapsing the whole chain.
        let mut entries = Vec::new();
        for i in 0..2000u64 {
            // load r10 <- [r2 + ...], then r2 <- f(r10)
            let mut l = load(0x10000, 10, 0x10_0000 + (i % 4) * 64);
            l.srcs = [Some(RegRef::int(2)), None];
            entries.push(l);
            entries.push(TraceEntry {
                pc: 0x10004,
                kind: OpKind::IntSimple,
                dst: Some(RegRef::int(2)),
                srcs: [Some(RegRef::int(10)), None],
                mem: None,
                branch: None,
            });
        }
        let trace: Trace = entries.into_iter().collect();
        let base = simulate_620(&trace, None, &Ppc620Config::base());
        let n_loads = trace.stats().loads as usize;
        let perfect = vec![PredOutcome::Correct; n_loads];
        let lvp = simulate_620(&trace, Some(&perfect), &Ppc620Config::base());
        assert_eq!(base.instructions, lvp.instructions);
        assert!(
            lvp.cycles < base.cycles,
            "LVP must speed up a load-use bound chain: {} vs {}",
            lvp.cycles,
            base.cycles
        );
        assert!(
            lvp.speedup_over(&base) > 1.15,
            "speedup {:.3}",
            lvp.speedup_over(&base)
        );
    }

    #[test]
    fn incorrect_predictions_cost_little() {
        let mut entries = Vec::new();
        for i in 0..1000u64 {
            entries.push(load(0x10000, 10, 0x10_0000 + (i % 4) * 64));
            entries.push(alu(0x10004, 11, [Some(10), None]));
        }
        let trace: Trace = entries.into_iter().collect();
        let base = simulate_620(&trace, None, &Ppc620Config::base());
        let wrong = vec![PredOutcome::Incorrect; trace.stats().loads as usize];
        let lvp = simulate_620(&trace, Some(&wrong), &Ppc620Config::base());
        // Worst case per the paper: one extra cycle per dependent, plus
        // structural effects. Overall cost must stay small.
        let slowdown = lvp.cycles as f64 / base.cycles as f64;
        assert!(
            slowdown < 1.40,
            "mispredictions too expensive: {slowdown:.3}"
        );
        assert_eq!(lvp.mispredicted_loads, 1000);
    }

    #[test]
    fn constants_avoid_the_cache() {
        let mut entries = Vec::new();
        for _ in 0..500 {
            entries.push(load(0x10000, 10, 0x10_0000));
            entries.push(alu(0x10004, 11, [Some(10), None]));
        }
        let trace: Trace = entries.into_iter().collect();
        let consts = vec![PredOutcome::Constant; 500];
        let r = simulate_620(&trace, Some(&consts), &Ppc620Config::base());
        assert_eq!(r.constant_loads, 500);
        assert_eq!(r.l1_accesses, 0, "constant loads must bypass the cache");
    }

    #[test]
    fn branch_mispredictions_add_bubbles() {
        // Alternating taken/not-taken branch defeats the bimodal predictor.
        let mut entries = Vec::new();
        for i in 0..500u64 {
            entries.push(alu(0x10000, 10, [None, None]));
            entries.push(TraceEntry {
                pc: 0x10004,
                kind: OpKind::CondBranch,
                dst: None,
                srcs: [Some(RegRef::int(10)), None],
                mem: None,
                branch: Some(BranchEvent {
                    taken: i % 2 == 0,
                    target: 0x10008,
                }),
            });
        }
        let alternating: Trace = entries.into_iter().collect();
        let mut entries2 = Vec::new();
        for _ in 0..500u64 {
            entries2.push(alu(0x10000, 10, [None, None]));
            entries2.push(TraceEntry {
                pc: 0x10004,
                kind: OpKind::CondBranch,
                dst: None,
                srcs: [Some(RegRef::int(10)), None],
                mem: None,
                branch: Some(BranchEvent {
                    taken: true,
                    target: 0x10008,
                }),
            });
        }
        let steady: Trace = entries2.into_iter().collect();
        let r1 = simulate_620(&alternating, None, &Ppc620Config::base());
        let r2 = simulate_620(&steady, None, &Ppc620Config::base());
        assert!(r1.mispredicts > r2.mispredicts);
        assert!(r1.cycles > r2.cycles, "{} vs {}", r1.cycles, r2.cycles);
    }

    #[test]
    fn plus_config_is_faster_on_wide_code() {
        // Independent mixed ops with abundant ILP.
        let mut entries = Vec::new();
        for i in 0..3000u64 {
            entries.push(alu(
                0x10000 + 4 * (i % 32),
                (10 + i % 4) as u8,
                [None, None],
            ));
            entries.push(load(
                0x10100 + 4 * (i % 32),
                (14 + i % 4) as u8,
                0x10_0000 + (i % 64) * 8,
            ));
        }
        let trace: Trace = entries.into_iter().collect();
        let base = simulate_620(&trace, None, &Ppc620Config::base());
        let plus = simulate_620(&trace, None, &Ppc620Config::plus());
        assert!(
            plus.cycles < base.cycles,
            "620+ should outperform 620 on ILP-rich code: {} vs {}",
            plus.cycles,
            base.cycles
        );
    }

    #[test]
    fn verify_latency_histogram_populated() {
        let mut entries = Vec::new();
        for _ in 0..100 {
            entries.push(load(0x10000, 10, 0x10_0000));
        }
        let trace: Trace = entries.into_iter().collect();
        let correct = vec![PredOutcome::Correct; 100];
        let r = simulate_620(&trace, Some(&correct), &Ppc620Config::base());
        assert_eq!(r.verify_latency.total(), 100);
    }

    #[test]
    fn cache_misses_slow_execution() {
        // Loads striding far apart miss; same-line loads hit.
        let strided: Trace = (0..2000u64)
            .map(|i| load(0x10000, 10, 0x10_0000 + i * 4096))
            .collect();
        let local: Trace = (0..2000u64)
            .map(|i| load(0x10000, 10, 0x10_0000 + (i % 8) * 8))
            .collect();
        let rs = simulate_620(&strided, None, &Ppc620Config::base());
        let rl = simulate_620(&local, None, &Ppc620Config::base());
        assert!(rs.l1_misses > 1900);
        assert!(rl.l1_misses < 10);
        assert!(rs.cycles > rl.cycles * 2);
    }
}
