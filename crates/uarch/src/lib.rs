//! # lvp-uarch — trace-driven cycle-accurate timing models
//!
//! Phase 3 of the paper's framework: microarchitectural simulators that
//! consume an annotated trace (each load labelled no-prediction /
//! incorrect / correct / constant) and account for the cost or benefit of
//! each state:
//!
//! * [`simulate_620`] — an out-of-order PowerPC 620-class core
//!   ([`Ppc620Config::base`]) and its widened 620+ ([`Ppc620Config::plus`]);
//! * [`simulate_21164`] — an in-order Alpha 21164-class core
//!   ([`Alpha21164Config`]) with blocking L1 misses (no MAF) and the
//!   reissue buffer of Section 4.2.
//!
//! Shared infrastructure: [`BranchPredictor`], [`Cache`]/[`MemHierarchy`],
//! the dual-bank [`BankArbiter`] (Figure 9), [`LatencyTable`] (Table 5),
//! and [`SimResult`] with the Figure 7/8 statistics.
//!
//! The models consume the LVP unit's per-load *verdicts*
//! ([`PredOutcome`]) and never the predictor's tables: any backend of
//! the predictor zoo (`lvp_predictor::PredictorKind`) — last-value,
//! stride, context, store-to-load, or the hybrid — times identically
//! here for the same outcome sequence, so a backend swap changes *which*
//! loads are correct/constant, never how a correct load is costed.
//!
//! # Examples
//!
//! ```
//! use lvp_trace::{OpKind, Trace, TraceEntry};
//! use lvp_uarch::{simulate_620, Ppc620Config};
//!
//! let trace: Trace = (0..100)
//!     .map(|i| TraceEntry::simple(0x10000 + 4 * (i % 16), OpKind::IntSimple))
//!     .collect();
//! let result = simulate_620(&trace, None, &Ppc620Config::base());
//! assert_eq!(result.instructions, 100);
//! assert!(result.ipc() > 0.5);
//! ```

mod alpha;
mod branch;
mod cache;
mod dataflow;
mod latency;
mod metrics;
mod ppc620;

pub use alpha::{simulate_21164, Alpha21164Config};
pub use branch::BranchPredictor;
pub use cache::{BankArbiter, Cache, CacheConfig, MemHierarchy, MemLatency};
pub use dataflow::{dataflow_limit, DataflowResult};
pub use latency::LatencyTable;
pub use metrics::{OperandWaitStats, SimResult, VerifyLatencyHistogram};
pub use ppc620::{simulate_620, Ppc620Config};
