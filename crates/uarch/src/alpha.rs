//! Trace-driven cycle model of an Alpha 21164-class in-order core (paper
//! Section 4.2, Figure 5).
//!
//! The 21164 is the paper's "speed demon": 4-wide strictly in-order issue
//! (two integer pipes that also slot loads/stores and branches, two FP
//! pipes), a small direct-mapped write-through L1, and — following the
//! paper's model — **no miss address file**: an L1 data-cache miss blocks
//! all further issue until the fill returns, in both the baseline and the
//! LVP configurations.
//!
//! LVP interaction (Section 4.2):
//!
//! * a predicted load is a *zero-cycle load*: consumers may issue in the
//!   same group instead of waiting the 2-cycle load-use latency;
//! * prediction is dropped for loads that miss L1 (the pipeline cannot
//!   stall past dispatch), with no penalty — **except** CVU-verified
//!   constants, which proceed despite the miss and skip the cache
//!   entirely (the CVU's main benefit on this machine);
//! * a value misprediction squashes all in-flight instructions, which
//!   redispatch from the reissue buffer one cycle after the comparison
//!   stage.

use crate::branch::BranchPredictor;
use crate::cache::{CacheConfig, MemHierarchy, MemLatency};
use crate::latency::LatencyTable;
use crate::metrics::SimResult;
use lvp_trace::{OpKind, PredOutcome, Trace};

/// Configuration of the 21164-class model.
#[derive(Debug, Clone)]
pub struct Alpha21164Config {
    /// Display name.
    pub name: &'static str,
    /// Issue width (4 on the 21164).
    pub width: usize,
    /// Integer-pipe slots per cycle (E0/E1; loads, stores and branches
    /// also use these).
    pub int_slots: usize,
    /// FP-pipe slots per cycle.
    pub fp_slots: usize,
    /// Data-cache ports (the 21164 L1 is dual-ported).
    pub mem_slots: usize,
    /// Instruction latencies.
    pub latency: LatencyTable,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// On-chip L2 geometry.
    pub l2: CacheConfig,
    /// Miss latencies.
    pub mem_latency: MemLatency,
}

impl Alpha21164Config {
    /// The paper's 21164 model: 4-wide, dual integer and FP pipes,
    /// dual-ported 8 KB direct-mapped L1, 96 KB on-chip L2, no MAF.
    pub fn base() -> Alpha21164Config {
        Alpha21164Config {
            name: "21164",
            width: 4,
            int_slots: 2,
            fp_slots: 2,
            mem_slots: 2,
            latency: LatencyTable::alpha21164(),
            l1: CacheConfig::alpha_l1d(),
            l2: CacheConfig::alpha_l2(),
            mem_latency: MemLatency::alpha21164(),
        }
    }
}

impl Default for Alpha21164Config {
    fn default() -> Alpha21164Config {
        Alpha21164Config::base()
    }
}

/// Runs the 21164-class model over a trace.
///
/// `outcomes` carries one [`PredOutcome`] per dynamic load (under any
/// `lvp_predictor::PredictorKind` — the model reads only the verdicts,
/// never the predictor's tables); pass `None`
/// for the no-LVP baseline.
///
/// # Panics
///
/// Panics if `outcomes` is `Some` but shorter than the trace's load count.
pub fn simulate_21164(
    trace: &Trace,
    outcomes: Option<&[PredOutcome]>,
    config: &Alpha21164Config,
) -> SimResult {
    let mut result = SimResult::default();
    let mut bp = BranchPredictor::new(2048, 256);
    let mut mem = MemHierarchy::new(config.l1, config.l2, config.mem_latency);

    // Cycle each architectural register's value becomes available.
    let mut reg_ready = [0u64; 64];
    // Current issue-group cycle and its slot usage.
    let mut t: u64 = 0;
    let (mut used_total, mut used_int, mut used_fp, mut used_mem) =
        (0usize, 0usize, 0usize, 0usize);
    // No instruction may issue before this cycle (miss stalls, squashes,
    // branch redirects).
    let mut stall_until: u64 = 0;
    // Unpipelined units.
    let mut imul_busy: u64 = 0;
    let mut fdiv_busy: u64 = 0;
    // Latest finish, for the drain at the end.
    let mut last_finish: u64 = 0;

    let mut load_index = 0usize;

    for e in trace.iter() {
        // Operand readiness.
        let mut ready: u64 = 0;
        for src in e.sources() {
            ready = ready.max(reg_ready[src.flat_index()]);
        }
        let mut earliest = ready.max(stall_until);
        match e.kind {
            OpKind::IntComplex => earliest = earliest.max(imul_busy),
            OpKind::FpComplex => earliest = earliest.max(fdiv_busy),
            _ => {}
        }

        // Advance to a cycle with a free slot of the right kind.
        loop {
            if earliest > t {
                t = earliest;
                used_total = 0;
                used_int = 0;
                used_fp = 0;
                used_mem = 0;
            }
            let (need_int, need_fp, need_mem) = match e.kind {
                OpKind::FpSimple | OpKind::FpComplex => (0usize, 1usize, 0usize),
                OpKind::Load | OpKind::Store => (1, 0, 1),
                _ => (1, 0, 0),
            };
            if used_total < config.width
                && used_int + need_int <= config.int_slots
                && used_fp + need_fp <= config.fp_slots
                && used_mem + need_mem <= config.mem_slots
            {
                used_total += 1;
                used_int += need_int;
                used_fp += need_fp;
                used_mem += need_mem;
                break;
            }
            earliest = t + 1;
        }

        // Execute.
        result.instructions += 1;
        let mut finish = t + config.latency.result_latency(e.kind);
        match e.kind {
            OpKind::Load => {
                result.loads += 1;
                let m = e.mem.expect("load entry must carry a memory access");
                let pred = outcomes.map(|o| {
                    let p = o[load_index];
                    load_index += 1;
                    p
                });
                let would_hit = mem.probe_l1(m.addr);
                match pred {
                    Some(PredOutcome::Constant) => {
                        // CVU-verified: no cache access at all; proceeds
                        // even where it would have missed.
                        result.constant_loads += 1;
                        result.predicted_loads += 1;
                        finish = t; // zero-cycle load
                        result.verify_latency.record(2);
                    }
                    Some(PredOutcome::Correct) if would_hit => {
                        result.predicted_loads += 1;
                        result.l1_accesses += 1;
                        mem.access(m.addr);
                        finish = t; // zero-cycle load, verified at t+3
                        result.verify_latency.record(3);
                    }
                    Some(PredOutcome::Incorrect) if would_hit => {
                        // Verified wrong at t + load + 1 (the compare stage
                        // added before writeback); everything in flight
                        // squashes and redispatches from the reissue
                        // buffer, overlapping the redispatch with the
                        // compare — a single-cycle penalty relative to not
                        // predicting (Section 4.2).
                        result.mispredicted_loads += 1;
                        result.l1_accesses += 1;
                        mem.access(m.addr);
                        let verify = t + config.latency.load + 1;
                        finish = verify;
                        stall_until = stall_until.max(verify);
                    }
                    _ => {
                        // Not predicted, or prediction dropped because the
                        // load misses L1 (no penalty).
                        result.l1_accesses += 1;
                        let extra = mem.access(m.addr);
                        if extra > 0 {
                            result.l1_misses += 1;
                            // No MAF: the miss blocks all further issue.
                            finish = t + config.latency.load + extra;
                            stall_until = stall_until.max(finish);
                        }
                    }
                }
            }
            OpKind::Store => {
                let m = e.mem.expect("store entry must carry a memory access");
                result.l1_accesses += 1;
                let extra = mem.access(m.addr);
                if extra > 0 {
                    result.l1_misses += 1;
                }
                // Write buffer absorbs store misses.
                finish = t + 1;
            }
            OpKind::CondBranch => {
                result.branches += 1;
                let ev = e.branch.expect("branch entry must carry outcome");
                let predicted = bp.predict_taken(e.pc);
                bp.update_taken(e.pc, ev.taken);
                if predicted != ev.taken {
                    result.mispredicts += 1;
                    stall_until = stall_until.max(t + 1 + config.latency.mispredict_penalty);
                }
            }
            OpKind::IndirectJump => {
                let ev = e.branch.expect("jump entry must carry target");
                let hit = bp.predict_target(e.pc) == Some(ev.target);
                bp.update_target(e.pc, ev.target);
                if !hit {
                    result.mispredicts += 1;
                    stall_until = stall_until.max(t + 1 + config.latency.mispredict_penalty);
                }
            }
            OpKind::IntComplex => {
                imul_busy = finish;
            }
            OpKind::FpComplex => {
                fdiv_busy = finish;
            }
            _ => {}
        }

        if let Some(d) = e.dst {
            reg_ready[d.flat_index()] = finish;
        }
        last_finish = last_finish.max(finish);
    }

    result.cycles = last_finish.max(t) + 1;
    result.l2_accesses = mem.l2_accesses();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_trace::{MemAccess, RegRef, TraceEntry};

    fn alu(dst: u8, src: Option<u8>) -> TraceEntry {
        TraceEntry {
            pc: 0x10000,
            kind: OpKind::IntSimple,
            dst: Some(RegRef::int(dst)),
            srcs: [src.map(RegRef::int), None],
            mem: None,
            branch: None,
        }
    }

    fn load(dst: u8, addr: u64) -> TraceEntry {
        TraceEntry {
            pc: 0x10010,
            kind: OpKind::Load,
            dst: Some(RegRef::int(dst)),
            srcs: [Some(RegRef::int(2)), None],
            mem: Some(MemAccess {
                addr,
                width: 8,
                value: 1,
                fp: false,
            }),
            branch: None,
        }
    }

    #[test]
    fn dual_issue_of_independent_ints() {
        let trace: Trace = (0..1000).map(|i| alu((i % 8) as u8 + 10, None)).collect();
        let r = simulate_21164(&trace, None, &Alpha21164Config::base());
        // Two integer pipes: 2 IPC ceiling.
        assert!(r.ipc() > 1.8, "IPC {:.2}", r.ipc());
        assert!(r.ipc() <= 2.05);
    }

    #[test]
    fn serial_chain_is_one_ipc() {
        let trace: Trace = (0..1000).map(|_| alu(10, Some(10))).collect();
        let r = simulate_21164(&trace, None, &Alpha21164Config::base());
        assert!(r.ipc() < 1.05, "IPC {:.2}", r.ipc());
    }

    #[test]
    fn blocking_miss_stalls_everything() {
        // Strided misses with independent ALU work behind them: the
        // missing MAF forbids overlap, so the ALU work cannot hide misses.
        let mut entries = Vec::new();
        for i in 0..500u64 {
            entries.push(load(10, 0x10_0000 + i * 4096));
            entries.push(alu(11, None)); // independent!
        }
        let trace: Trace = entries.into_iter().collect();
        let r = simulate_21164(&trace, None, &Alpha21164Config::base());
        // Every load misses to memory (~46+ cycles each).
        assert!(r.l1_misses >= 499, "misses {}", r.l1_misses);
        assert!(
            r.cycles > 500 * 40,
            "blocking misses must dominate: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn lvp_gives_zero_cycle_loads() {
        let mut entries = Vec::new();
        for i in 0..1000u64 {
            entries.push(load(10, 0x10_0000 + (i % 4) * 8));
            entries.push(alu(11, Some(10)));
        }
        let trace: Trace = entries.into_iter().collect();
        let base = simulate_21164(&trace, None, &Alpha21164Config::base());
        let correct = vec![PredOutcome::Correct; trace.stats().loads as usize];
        let lvp = simulate_21164(&trace, Some(&correct), &Alpha21164Config::base());
        assert!(
            lvp.cycles < base.cycles,
            "zero-cycle loads must help: {} vs {}",
            lvp.cycles,
            base.cycles
        );
    }

    #[test]
    fn constants_bypass_blocking_misses() {
        // All loads would miss; constants never touch the cache, so the
        // LVP run avoids every blocking stall.
        let trace: Trace = (0..500u64)
            .map(|i| load(10, 0x10_0000 + i * 4096))
            .collect();
        let base = simulate_21164(&trace, None, &Alpha21164Config::base());
        let consts = vec![PredOutcome::Constant; 500];
        let lvp = simulate_21164(&trace, Some(&consts), &Alpha21164Config::base());
        assert_eq!(lvp.l1_accesses, 0);
        assert!(
            lvp.speedup_over(&base) > 5.0,
            "speedup {:.2}",
            lvp.speedup_over(&base)
        );
    }

    #[test]
    fn prediction_dropped_on_miss_without_penalty() {
        // Loads that always miss, annotated Correct: behaves exactly like
        // the unannotated baseline (prediction dropped, no penalty).
        let trace: Trace = (0..300u64)
            .map(|i| load(10, 0x10_0000 + i * 4096))
            .collect();
        let base = simulate_21164(&trace, None, &Alpha21164Config::base());
        let correct = vec![PredOutcome::Correct; 300];
        let lvp = simulate_21164(&trace, Some(&correct), &Alpha21164Config::base());
        assert_eq!(lvp.cycles, base.cycles);
    }

    #[test]
    fn value_mispredictions_squash_in_flight() {
        let mut entries = Vec::new();
        for i in 0..500u64 {
            entries.push(load(10, 0x10_0000 + (i % 4) * 8));
            entries.push(alu(11, None));
        }
        let trace: Trace = entries.into_iter().collect();
        let base = simulate_21164(&trace, None, &Alpha21164Config::base());
        let wrong = vec![PredOutcome::Incorrect; trace.stats().loads as usize];
        let lvp = simulate_21164(&trace, Some(&wrong), &Alpha21164Config::base());
        assert!(lvp.cycles > base.cycles, "squashes must cost cycles");
        // The first load misses the cold L1, so its prediction is dropped.
        assert_eq!(lvp.mispredicted_loads, 499);
    }

    #[test]
    fn fp_pipes_are_separate() {
        // 2 int + 2 fp per cycle -> 4-wide mixed code can reach close to 4.
        let mut entries = Vec::new();
        for i in 0..1000u64 {
            entries.push(alu((i % 4) as u8 + 10, None));
            entries.push(TraceEntry {
                pc: 0x10020,
                kind: OpKind::FpSimple,
                dst: Some(RegRef::fp((i % 4) as u8)),
                srcs: [None, None],
                mem: None,
                branch: None,
            });
        }
        let trace: Trace = entries.into_iter().collect();
        let r = simulate_21164(&trace, None, &Alpha21164Config::base());
        assert!(r.ipc() > 3.0, "IPC {:.2}", r.ipc());
    }
}
