//! Set-associative cache models and the two-level data-memory hierarchy
//! used by both timing models.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
}

impl CacheConfig {
    /// The PowerPC 620's L1 data cache: 32 KB, 8-way, 64 B lines.
    pub fn ppc620_l1d() -> CacheConfig {
        CacheConfig {
            size: 32 * 1024,
            ways: 8,
            line: 64,
        }
    }

    /// The Alpha 21164's L1 data cache: 8 KB, direct-mapped, 32 B lines.
    pub fn alpha_l1d() -> CacheConfig {
        CacheConfig {
            size: 8 * 1024,
            ways: 1,
            line: 32,
        }
    }

    /// A unified 512 KB 8-way L2 (620-class board cache).
    pub fn ppc620_l2() -> CacheConfig {
        CacheConfig {
            size: 512 * 1024,
            ways: 8,
            line: 64,
        }
    }

    /// The 21164's on-chip 96 KB 3-way L2.
    pub fn alpha_l2() -> CacheConfig {
        CacheConfig {
            size: 96 * 1024,
            ways: 3,
            line: 32,
        }
    }
}

/// One level of set-associative cache with true-LRU replacement.
///
/// The model tracks tags only (the functional simulator holds the data);
/// stores allocate on miss (write-allocate, write-back).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set]` is a most-recently-used-first list of tags.
    sets: Vec<Vec<u64>>,
    set_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// line × ways, or non-power-of-two line/set count).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line.is_power_of_two(),
            "line size must be a power of two"
        );
        let n_sets = config.size / (config.line * config.ways);
        assert!(
            n_sets > 0 && n_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways); n_sets],
            set_shift: config.line.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `0..=1` (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.set_shift;
        (
            (line_addr & self.set_mask) as usize,
            line_addr >> self.set_mask.count_ones(),
        )
    }

    /// Performs one access; returns `true` on hit. Misses allocate the
    /// line, evicting LRU.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.config.ways;
        let set = &mut self.sets[set];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            if set.len() == ways {
                set.pop();
            }
            set.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Whether `addr` currently hits, without updating state (for
    /// lookahead decisions such as the 21164's no-predict-on-miss rule).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].contains(&tag)
    }
}

/// Cycle costs of the memory hierarchy levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatency {
    /// Extra cycles for an L1 miss that hits L2.
    pub l2: u64,
    /// Extra cycles for an L2 miss (main memory).
    pub memory: u64,
}

impl MemLatency {
    /// Latencies used by the 620 model (board L2 ≈ 8 cycles, memory ≈ 40).
    pub fn ppc620() -> MemLatency {
        MemLatency { l2: 8, memory: 40 }
    }

    /// Latencies used by the 21164 model (on-chip L2 ≈ 6, memory ≈ 40).
    pub fn alpha21164() -> MemLatency {
        MemLatency { l2: 6, memory: 40 }
    }
}

/// A two-level data-memory hierarchy: L1 + unified L2 + memory.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1: Cache,
    l2: Cache,
    latency: MemLatency,
    l2_accesses: u64,
}

impl MemHierarchy {
    /// Builds a hierarchy from level configurations.
    pub fn new(l1: CacheConfig, l2: CacheConfig, latency: MemLatency) -> MemHierarchy {
        MemHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            latency,
            l2_accesses: 0,
        }
    }

    /// The L1 cache.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Number of accesses that reached L2.
    pub fn l2_accesses(&self) -> u64 {
        self.l2_accesses
    }

    /// Performs an access and returns the *extra* cycles beyond the L1
    /// pipeline latency (0 on an L1 hit).
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            0
        } else {
            self.l2_accesses += 1;
            if self.l2.access(addr) {
                self.latency.l2
            } else {
                self.latency.l2 + self.latency.memory
            }
        }
    }

    /// Whether `addr` would hit L1, without side effects.
    pub fn probe_l1(&self, addr: u64) -> bool {
        self.l1.probe(addr)
    }
}

/// Dual-banked L1 port arbitration for the 620 (line-interleaved banks).
///
/// Each cycle, each bank can serve one access. A claim for a busy bank is
/// granted at the bank's next free cycle; the waiting cycles are counted
/// as *bank-conflict cycles* for the paper's Figure 9.
#[derive(Debug, Clone, Default)]
pub struct BankArbiter {
    busy: [u64; 2],
    conflict_cycles: u64,
    counted_until: u64,
    conflicts: u64,
}

impl BankArbiter {
    /// Creates an idle arbiter.
    pub fn new() -> BankArbiter {
        BankArbiter::default()
    }

    /// The bank an address maps to (line-interleaved, 64 B lines).
    #[inline]
    pub fn bank_of(addr: u64) -> usize {
        ((addr >> 6) & 1) as usize
    }

    /// Claims `addr`'s bank at the earliest cycle at or after `want`;
    /// returns the granted cycle. Delayed grants record a conflict.
    pub fn claim(&mut self, addr: u64, want: u64) -> u64 {
        let bank = Self::bank_of(addr);
        let granted = want.max(self.busy[bank]);
        self.busy[bank] = granted + 1;
        if granted > want {
            self.conflicts += 1;
            // Count the waited-through cycles, deduplicated across claims.
            let start = want.max(self.counted_until);
            if granted > start {
                self.conflict_cycles += granted - start;
                self.counted_until = granted;
            }
        }
        granted
    }

    /// Approximate number of cycles in which at least one bank conflict
    /// occurred.
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }

    /// Total delayed claims.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size: 1024,
            ways: 1,
            line: 64,
        });
        // Two addresses 1024 apart map to the same set.
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert!(!c.access(0), "must have been evicted");
    }

    #[test]
    fn lru_keeps_recent_lines() {
        let mut c = Cache::new(CacheConfig {
            size: 128,
            ways: 2,
            line: 64,
        });
        // One set of 2 ways (128 = 64*2): all aligned addresses collide.
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0)); // touch 0: 128 becomes LRU
        assert!(!c.access(256)); // evicts 128
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = Cache::new(CacheConfig::ppc620_l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1008));
        assert!(c.access(0x103f));
        assert!(!c.access(0x1040), "next line must miss");
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = Cache::new(CacheConfig::alpha_l1d());
        assert!(!c.probe(0x2000));
        c.access(0x2000);
        assert!(c.probe(0x2000));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 0, "probe must not count as a hit");
    }

    #[test]
    fn hierarchy_latency_tiers() {
        let mut h = MemHierarchy::new(
            CacheConfig::alpha_l1d(),
            CacheConfig::alpha_l2(),
            MemLatency { l2: 6, memory: 40 },
        );
        assert_eq!(h.access(0x3000), 46, "cold miss goes to memory");
        assert_eq!(h.access(0x3000), 0, "L1 hit");
        // Evict from tiny L1 by conflict, still in L2.
        assert_eq!(h.access(0x3000 + 8 * 1024), 46);
        assert_eq!(h.access(0x3000), 6, "L1 miss, L2 hit");
        assert_eq!(h.l2_accesses(), 3);
    }

    #[test]
    fn bank_arbiter_counts_conflicts() {
        let mut b = BankArbiter::new();
        // Two accesses to the same bank in one cycle: second is delayed.
        assert_eq!(b.claim(0x0, 10), 10);
        assert_eq!(b.claim(0x80, 10), 11, "same bank (line-interleaved)");
        assert_eq!(b.claim(0x40, 10), 10, "other bank is free");
        assert_eq!(b.conflict_cycles(), 1);
        assert_eq!(b.conflicts(), 1);
        // Bank free again afterwards.
        assert_eq!(b.claim(0x80, 12), 12);
        assert_eq!(b.conflicts(), 1);
    }

    #[test]
    fn bank_arbiter_dedups_conflict_cycles() {
        let mut b = BankArbiter::new();
        // Three same-bank claims in one cycle: granted 5, 6, 7. Waited
        // cycles {5, 6} are counted once each.
        assert_eq!(b.claim(0x0, 5), 5);
        assert_eq!(b.claim(0x0, 5), 6);
        assert_eq!(b.claim(0x0, 5), 7);
        assert_eq!(b.conflict_cycles(), 2);
        assert_eq!(b.conflicts(), 2);
    }
}
