//! Dataflow-limit model: an idealized machine with infinite fetch,
//! rename, issue and memory bandwidth, perfect branch prediction and a
//! perfect cache — only *true data dependencies* and result latencies
//! constrain execution.
//!
//! Value-prediction studies compare against this bound because value
//! prediction is the only technique that can exceed it: a correct
//! prediction *breaks* a true dependence edge. The paper's introduction
//! frames LVP exactly this way ("exceeding the classical dataflow limit").
//!
//! The model computes, for each instruction, the earliest cycle its
//! operands exist, takes the maximum over a run, and reports the critical
//! path length. With an LVP annotation, usable predictions make a load's
//! result available at cycle 0 of its own readiness (its consumers no
//! longer wait for the load).

use crate::latency::LatencyTable;
use lvp_trace::{OpKind, PredOutcome, Trace};
use std::collections::HashMap;

/// Result of a dataflow-limit analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataflowResult {
    /// Length of the critical dependence path, in cycles.
    pub critical_path: u64,
    /// Retired instructions.
    pub instructions: u64,
}

impl DataflowResult {
    /// The dataflow-limit IPC (instructions / critical path).
    pub fn ipc(&self) -> f64 {
        if self.critical_path == 0 {
            0.0
        } else {
            self.instructions as f64 / self.critical_path as f64
        }
    }
}

/// Computes the dataflow limit of a trace under `latency`, with optional
/// LVP annotations (usable predictions collapse the load's outgoing
/// dependence edges — including its store-to-load memory dependence;
/// incorrect ones add the paper's one-cycle reissue).
///
/// True dependencies counted: register def-use edges and store-to-load
/// memory edges (tracked at byte granularity). Correctly-predicted loads
/// break both — that is the paper's "collapse true dependencies" claim
/// in its purest form.
///
/// # Panics
///
/// Panics if `outcomes` is `Some` but shorter than the trace's load count.
///
/// # Examples
///
/// ```
/// use lvp_trace::{OpKind, Trace, TraceEntry};
/// use lvp_uarch::{dataflow_limit, LatencyTable};
///
/// let trace: Trace = (0..10)
///     .map(|i| TraceEntry::simple(0x1000 + 4 * i, OpKind::IntSimple))
///     .collect();
/// let r = dataflow_limit(&trace, None, &LatencyTable::ppc620());
/// // Independent single-cycle ops: critical path of 1 cycle.
/// assert_eq!(r.critical_path, 1);
/// ```
pub fn dataflow_limit(
    trace: &Trace,
    outcomes: Option<&[PredOutcome]>,
    latency: &LatencyTable,
) -> DataflowResult {
    // Cycle at which each architectural register's value exists.
    let mut ready = [0u64; 64];
    // Cycle at which each memory byte's value exists (store-to-load edges).
    let mut mem_ready: HashMap<u64, u64> = HashMap::new();
    let mut load_index = 0usize;
    let mut critical: u64 = 0;
    let mut n: u64 = 0;

    for e in trace.iter() {
        n += 1;
        let mut start: u64 = 0;
        for src in e.sources() {
            start = start.max(ready[src.flat_index()]);
        }
        let pred = if e.kind == OpKind::Load {
            outcomes.map(|o| {
                let p = o[load_index];
                load_index += 1;
                p
            })
        } else {
            None
        };
        // Store-to-load memory dependence: the load cannot produce before
        // the youngest store it reads from — unless its value is usably
        // predicted, which breaks the memory edge too.
        if e.kind == OpKind::Load && !pred.is_some_and(|p| p.usable()) {
            if let Some(m) = e.mem {
                for b in m.addr..m.addr + m.width as u64 {
                    if let Some(&t) = mem_ready.get(&b) {
                        start = start.max(t);
                    }
                }
            }
        }
        let mut finish = start + latency.result_latency(e.kind);
        match pred {
            // The value was forwarded at dispatch: consumers no longer
            // wait on the load at all.
            Some(PredOutcome::Correct) | Some(PredOutcome::Constant) => finish = start,
            // One extra cycle to reissue consumers (Section 4.1).
            Some(PredOutcome::Incorrect) => finish = start + latency.load + 1,
            _ => {}
        }
        if e.kind == OpKind::Store {
            if let Some(m) = e.mem {
                for b in m.addr..m.addr + m.width as u64 {
                    mem_ready.insert(b, finish);
                }
            }
        }
        if let Some(d) = e.dst {
            ready[d.flat_index()] = finish;
        }
        critical = critical.max(finish);
    }
    DataflowResult {
        critical_path: critical.max(1),
        instructions: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_trace::{MemAccess, RegRef, TraceEntry};

    fn load(dst: u8, src: u8) -> TraceEntry {
        TraceEntry {
            pc: 0x1000,
            kind: OpKind::Load,
            dst: Some(RegRef::int(dst)),
            srcs: [Some(RegRef::int(src)), None],
            mem: Some(MemAccess {
                addr: 0x10_0000,
                width: 8,
                value: 0,
                fp: false,
            }),
            branch: None,
        }
    }

    fn alu(dst: u8, src: u8) -> TraceEntry {
        TraceEntry {
            pc: 0x1004,
            kind: OpKind::IntSimple,
            dst: Some(RegRef::int(dst)),
            srcs: [Some(RegRef::int(src)), None],
            mem: None,
            branch: None,
        }
    }

    #[test]
    fn serial_chain_length() {
        // 10 dependent ALU ops: critical path exactly 10.
        let trace: Trace = (0..10).map(|_| alu(5, 5)).collect();
        let r = dataflow_limit(&trace, None, &LatencyTable::ppc620());
        assert_eq!(r.critical_path, 10);
        assert!((r.ipc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pointer_chase_counts_load_latency() {
        // load r5 <- [r5] chains: 2 cycles per link.
        let trace: Trace = (0..10).map(|_| load(5, 5)).collect();
        let r = dataflow_limit(&trace, None, &LatencyTable::ppc620());
        assert_eq!(r.critical_path, 20);
    }

    #[test]
    fn perfect_prediction_collapses_the_chain() {
        let trace: Trace = (0..10).map(|_| load(5, 5)).collect();
        let outcomes = vec![PredOutcome::Correct; 10];
        let r = dataflow_limit(&trace, Some(&outcomes), &LatencyTable::ppc620());
        // Each load's result exists the moment its address does.
        assert_eq!(r.critical_path, 1);
    }

    #[test]
    fn incorrect_prediction_costs_one_extra_cycle() {
        let trace: Trace = (0..10).map(|_| load(5, 5)).collect();
        let wrong = vec![PredOutcome::Incorrect; 10];
        let base = dataflow_limit(&trace, None, &LatencyTable::ppc620());
        let r = dataflow_limit(&trace, Some(&wrong), &LatencyTable::ppc620());
        assert_eq!(r.critical_path, base.critical_path + 10);
    }

    #[test]
    fn store_to_load_edges_count() {
        // store r5 -> [A]; load r6 <- [A]; alu r5 <- r6 ... chained
        // through memory: each round costs store(2) + load(2) + alu(1).
        let mut entries = Vec::new();
        for _ in 0..10 {
            entries.push(TraceEntry {
                pc: 0x1000,
                kind: OpKind::Store,
                dst: None,
                srcs: [Some(RegRef::int(2)), Some(RegRef::int(5))],
                mem: Some(MemAccess {
                    addr: 0x10_0000,
                    width: 8,
                    value: 0,
                    fp: false,
                }),
                branch: None,
            });
            entries.push(load(6, 2));
            entries.push(alu(5, 6));
        }
        let trace: Trace = entries.into_iter().collect();
        let lat = LatencyTable::ppc620();
        let base = dataflow_limit(&trace, None, &lat);
        assert_eq!(base.critical_path, 10 * 5, "2+2+1 cycles per round");
        // Predicting the loads breaks the memory edges: only the stores'
        // own inputs and the alu chain remain.
        let correct = vec![PredOutcome::Correct; 10];
        let lvp = dataflow_limit(&trace, Some(&correct), &lat);
        assert!(
            lvp.critical_path < base.critical_path / 3,
            "value prediction must break store-to-load chains: {} vs {}",
            lvp.critical_path,
            base.critical_path
        );
    }

    #[test]
    fn independent_work_is_one_cycle() {
        let trace: Trace = (0..100).map(|i| alu((i % 30 + 1) as u8, 0)).collect();
        let r = dataflow_limit(&trace, None, &LatencyTable::ppc620());
        assert_eq!(r.critical_path, 1);
        assert!((r.ipc() - 100.0).abs() < 1e-9);
    }
}
