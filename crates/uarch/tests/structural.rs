//! Structural-hazard and resource-limit tests for the 620 model: each
//! test constructs a trace that saturates exactly one resource and
//! checks the expected throughput ceiling.

use lvp_trace::{BranchEvent, MemAccess, OpKind, Trace, TraceEntry};
use lvp_trace::{PredOutcome, RegRef};
use lvp_uarch::{simulate_620, Ppc620Config};

fn alu(pc: u64, dst: u8) -> TraceEntry {
    TraceEntry {
        pc,
        kind: OpKind::IntSimple,
        dst: Some(RegRef::int(dst)),
        srcs: [None, None],
        mem: None,
        branch: None,
    }
}

fn fp(pc: u64, dst: u8, complex: bool) -> TraceEntry {
    TraceEntry {
        pc,
        kind: if complex {
            OpKind::FpComplex
        } else {
            OpKind::FpSimple
        },
        dst: Some(RegRef::fp(dst)),
        srcs: [None, None],
        mem: None,
        branch: None,
    }
}

fn mul(pc: u64, dst: u8) -> TraceEntry {
    TraceEntry {
        pc,
        kind: OpKind::IntComplex,
        dst: Some(RegRef::int(dst)),
        srcs: [None, None],
        mem: None,
        branch: None,
    }
}

fn load(pc: u64, dst: u8, addr: u64) -> TraceEntry {
    TraceEntry {
        pc,
        kind: OpKind::Load,
        dst: Some(RegRef::int(dst)),
        srcs: [Some(RegRef::int(2)), None],
        mem: Some(MemAccess {
            addr,
            width: 8,
            value: 0,
            fp: false,
        }),
        branch: None,
    }
}

#[test]
fn mcfx_is_unpipelined() {
    // Independent multiplies: the single unpipelined MCFX serializes them
    // at one per `int_complex` latency.
    let trace: Trace = (0..100u64)
        .map(|i| mul(0x10000 + 4 * (i % 8), (10 + i % 4) as u8))
        .collect();
    let cfg = Ppc620Config::base();
    let r = simulate_620(&trace, None, &cfg);
    assert!(
        r.cycles >= 100 * cfg.latency.int_complex,
        "unpipelined MCFX must serialize: {} cycles",
        r.cycles
    );
}

#[test]
fn fpu_pipelines_simple_but_not_complex() {
    let simple: Trace = (0..200u64)
        .map(|i| fp(0x10000 + 4 * (i % 8), (i % 4) as u8, false))
        .collect();
    let complex: Trace = (0..200u64)
        .map(|i| fp(0x10000 + 4 * (i % 8), (i % 4) as u8, true))
        .collect();
    let cfg = Ppc620Config::base();
    let rs = simulate_620(&simple, None, &cfg);
    let rc = simulate_620(&complex, None, &cfg);
    // Pipelined simple FP approaches 1 IPC; unpipelined divides crawl.
    assert!(rs.ipc() > 0.8, "simple FP IPC {:.2}", rs.ipc());
    assert!(
        rc.cycles >= 200 * cfg.latency.fp_complex,
        "complex FP must be unpipelined: {} cycles",
        rc.cycles
    );
}

#[test]
fn single_lsu_binds_load_throughput() {
    // Independent hitting loads: 1 LSU -> at most 1 load per cycle.
    let trace: Trace = (0..500u64)
        .map(|i| {
            load(
                0x10000 + 4 * (i % 8),
                (10 + i % 4) as u8,
                0x10_0000 + (i % 8) * 8,
            )
        })
        .collect();
    let base = simulate_620(&trace, None, &Ppc620Config::base());
    assert!(
        base.cycles >= 500,
        "one load per cycle max: {}",
        base.cycles
    );
    // The 620+ has two LSUs and dispatches two mem ops per cycle.
    let plus = simulate_620(&trace, None, &Ppc620Config::plus());
    assert!(
        plus.cycles < base.cycles,
        "two LSUs must beat one: {} vs {}",
        plus.cycles,
        base.cycles
    );
}

#[test]
fn rename_buffers_throttle_long_latency_shadows() {
    // A divide (16 cycles) followed by many independent ALU writers: the
    // base 620 has 8 GPR renames, so dispatch stalls once they're taken.
    let mut entries = vec![mul(0x10000, 10)];
    for i in 0..24u64 {
        entries.push(alu(0x10010 + 4 * i, (11 + (i % 20)) as u8));
    }
    let trace: Trace = entries.into_iter().collect();
    let narrow = simulate_620(&trace, None, &Ppc620Config::base());
    let wide = simulate_620(&trace, None, &Ppc620Config::plus());
    assert!(
        wide.cycles <= narrow.cycles,
        "doubled rename buffers must not hurt: {} vs {}",
        wide.cycles,
        narrow.cycles
    );
}

#[test]
fn indirect_jumps_pay_btb_misses() {
    // An indirect jump alternating between two targets defeats the BTB.
    let mut alternating = Vec::new();
    let mut stable = Vec::new();
    for i in 0..300u64 {
        let e = |target: u64| TraceEntry {
            pc: 0x10004,
            kind: OpKind::IndirectJump,
            dst: None,
            srcs: [Some(RegRef::int(1)), None],
            mem: None,
            branch: Some(BranchEvent {
                taken: true,
                target,
            }),
        };
        alternating.push(alu(0x10000, 10));
        alternating.push(e(if i % 2 == 0 { 0x20000 } else { 0x30000 }));
        stable.push(alu(0x10000, 10));
        stable.push(e(0x20000));
    }
    let cfg = Ppc620Config::base();
    let ra = simulate_620(&alternating.into_iter().collect(), None, &cfg);
    let rs = simulate_620(&stable.into_iter().collect(), None, &cfg);
    assert!(ra.mispredicts > rs.mispredicts + 200);
    assert!(ra.cycles > rs.cycles);
}

#[test]
fn lvp_collapses_load_to_mul_chains() {
    // load feeds a multiply feeds the next load's address: long serial
    // chain mixing LSU and MCFX, ideal for LVP.
    let mut entries = Vec::new();
    for i in 0..200u64 {
        let mut l = load(0x10000, 10, 0x10_0000 + (i % 4) * 64);
        l.srcs = [Some(RegRef::int(2)), None];
        entries.push(l);
        entries.push(TraceEntry {
            pc: 0x10004,
            kind: OpKind::IntComplex,
            dst: Some(RegRef::int(2)),
            srcs: [Some(RegRef::int(10)), None],
            mem: None,
            branch: None,
        });
    }
    let trace: Trace = entries.into_iter().collect();
    let cfg = Ppc620Config::base();
    let base = simulate_620(&trace, None, &cfg);
    let outcomes = vec![PredOutcome::Correct; trace.stats().loads as usize];
    let lvp = simulate_620(&trace, Some(&outcomes), &cfg);
    // The chain shortens by the load latency per iteration.
    assert!(
        base.cycles.saturating_sub(lvp.cycles) >= 200,
        "expected ≥1 cycle per iteration saved: {} vs {}",
        base.cycles,
        lvp.cycles
    );
}

#[test]
fn store_heavy_code_contends_for_banks() {
    // Loads and stores to the same bank: stores drain from the store
    // queue at completion and collide with issuing loads.
    let mut entries = Vec::new();
    for i in 0..400u64 {
        entries.push(load(0x10000, 10, 0x10_0000 + (i % 4) * 256)); // bank 0
        entries.push(TraceEntry {
            pc: 0x10004,
            kind: OpKind::Store,
            dst: None,
            srcs: [Some(RegRef::int(2)), Some(RegRef::int(10))],
            mem: Some(MemAccess {
                addr: 0x10_0100 + (i % 4) * 256,
                width: 8,
                value: 0,
                fp: false,
            }),
            branch: None,
        });
    }
    let trace: Trace = entries.into_iter().collect();
    let r = simulate_620(&trace, None, &Ppc620Config::base());
    assert!(
        r.bank_conflict_cycles > 0,
        "same-bank load/store traffic must conflict"
    );
}
