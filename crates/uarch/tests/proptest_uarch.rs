//! Property tests for the timing models and cache: model-based cache
//! checking and whole-simulator sanity invariants on random traces.

use lvp_trace::{BranchEvent, MemAccess, OpKind, PredOutcome, RegRef, Trace, TraceEntry};
use lvp_uarch::{simulate_21164, simulate_620, Alpha21164Config, Cache, CacheConfig, Ppc620Config};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// The set-associative cache agrees with a straightforward
    /// LRU-lists reference model.
    #[test]
    fn cache_matches_lru_reference(
        addrs in proptest::collection::vec(0u64..4096, 1..400),
        ways in 1usize..4,
    ) {
        let line = 64usize;
        let size = 256 * ways; // 4 sets
        let mut cache = Cache::new(CacheConfig { size, ways, line });
        let n_sets = size / (line * ways);
        let mut sets: Vec<VecDeque<u64>> = vec![VecDeque::new(); n_sets];
        for &a in &addrs {
            let line_addr = a / line as u64;
            let set = (line_addr as usize) % n_sets;
            let expected_hit = sets[set].contains(&line_addr);
            prop_assert_eq!(cache.access(a), expected_hit, "address {:#x}", a);
            if let Some(pos) = sets[set].iter().position(|&t| t == line_addr) {
                sets[set].remove(pos);
            } else if sets[set].len() == ways {
                sets[set].pop_back();
            }
            sets[set].push_front(line_addr);
        }
    }
}

/// Random but well-formed trace entries: ALU ops, loads, stores, and
/// branches over a small register/address space.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let entry = prop_oneof![
        4 => (0u64..64, 1u8..16, 1u8..16).prop_map(|(pc, rd, rs)| TraceEntry {
            pc: 0x10000 + pc * 4,
            kind: OpKind::IntSimple,
            dst: Some(RegRef::int(rd)),
            srcs: [Some(RegRef::int(rs)), None],
            mem: None,
            branch: None,
        }),
        1 => (0u64..64, 1u8..16).prop_map(|(pc, rd)| TraceEntry {
            pc: 0x10000 + pc * 4,
            kind: OpKind::IntComplex,
            dst: Some(RegRef::int(rd)),
            srcs: [None, None],
            mem: None,
            branch: None,
        }),
        3 => (0u64..64, 1u8..16, 0u64..256).prop_map(|(pc, rd, slot)| TraceEntry {
            pc: 0x10000 + pc * 4,
            kind: OpKind::Load,
            dst: Some(RegRef::int(rd)),
            srcs: [Some(RegRef::int(2)), None],
            mem: Some(MemAccess { addr: 0x10_0000 + slot * 8, width: 8, value: slot, fp: false }),
            branch: None,
        }),
        2 => (0u64..64, 1u8..16, 0u64..256).prop_map(|(pc, rs, slot)| TraceEntry {
            pc: 0x10000 + pc * 4,
            kind: OpKind::Store,
            dst: None,
            srcs: [Some(RegRef::int(2)), Some(RegRef::int(rs))],
            mem: Some(MemAccess { addr: 0x10_0000 + slot * 8, width: 8, value: 1, fp: false }),
            branch: None,
        }),
        1 => (0u64..64, any::<bool>()).prop_map(|(pc, taken)| TraceEntry {
            pc: 0x10000 + pc * 4,
            kind: OpKind::CondBranch,
            dst: None,
            srcs: [Some(RegRef::int(5)), None],
            mem: None,
            branch: Some(BranchEvent { taken, target: 0x10000 }),
        }),
        1 => (0u64..64, 1u8..4).prop_map(|(pc, fd)| TraceEntry {
            pc: 0x10000 + pc * 4,
            kind: OpKind::FpComplex,
            dst: Some(RegRef::fp(fd)),
            srcs: [Some(RegRef::fp(0)), None],
            mem: None,
            branch: None,
        }),
    ];
    proptest::collection::vec(entry, 0..400).prop_map(|v| v.into_iter().collect())
}

fn arb_outcomes(loads: usize) -> impl Strategy<Value = Vec<PredOutcome>> {
    proptest::collection::vec(
        prop_oneof![
            Just(PredOutcome::NotPredicted),
            Just(PredOutcome::Incorrect),
            Just(PredOutcome::Correct),
            Just(PredOutcome::Constant),
        ],
        loads..=loads,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both timing models terminate, retire every instruction exactly
    /// once, and respect the physical IPC ceiling, for any trace and any
    /// annotation.
    #[test]
    fn models_terminate_and_conserve_instructions(
        (trace, outcomes) in arb_trace().prop_flat_map(|t| {
            let loads = t.stats().loads as usize;
            (Just(t), arb_outcomes(loads))
        })
    ) {
        let n = trace.stats().instructions;
        for cfg in [Ppc620Config::base(), Ppc620Config::plus()] {
            let base = simulate_620(&trace, None, &cfg);
            prop_assert_eq!(base.instructions, n);
            prop_assert!(base.cycles >= n / cfg.width as u64);
            let lvp = simulate_620(&trace, Some(&outcomes), &cfg);
            prop_assert_eq!(lvp.instructions, n);
            prop_assert_eq!(lvp.loads, trace.stats().loads);
        }
        let acfg = Alpha21164Config::base();
        let base = simulate_21164(&trace, None, &acfg);
        prop_assert_eq!(base.instructions, n);
        prop_assert!(base.cycles >= n / acfg.width as u64);
        let lvp = simulate_21164(&trace, Some(&outcomes), &acfg);
        prop_assert_eq!(lvp.instructions, n);
    }

    /// An all-Correct annotation never slows either model down by more
    /// than the verification slack, and an all-Constant annotation never
    /// touches the 620 banks.
    #[test]
    fn usable_predictions_never_hurt_much(trace in arb_trace()) {
        let loads = trace.stats().loads as usize;
        let cfg = Ppc620Config::base();
        let base = simulate_620(&trace, None, &cfg);
        let correct = vec![PredOutcome::Correct; loads];
        let lvp = simulate_620(&trace, Some(&correct), &cfg);
        // Section 4.1: a correct prediction can still cost structurally —
        // the dependent "may end up occupying [its] reservation station
        // for one cycle longer", and the load itself retires one cycle
        // later (verification lag). Bound: one cycle per load plus slack.
        prop_assert!(
            lvp.cycles <= base.cycles + loads as u64 + 8,
            "correct predictions slowed the 620 beyond the verification bound: {} vs {}",
            lvp.cycles,
            base.cycles
        );
        let constant = vec![PredOutcome::Constant; loads];
        let c = simulate_620(&trace, Some(&constant), &cfg);
        prop_assert_eq!(
            c.l1_accesses,
            trace.stats().stores,
            "constants must leave only stores in the banks"
        );
    }
}
