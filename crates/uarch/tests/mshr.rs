//! MSHR (non-blocking cache) behavior of the 620 model.

use lvp_trace::{MemAccess, OpKind, RegRef, Trace, TraceEntry};
use lvp_uarch::{simulate_620, Ppc620Config};

fn missing_load(pc: u64, dst: u8, i: u64) -> TraceEntry {
    TraceEntry {
        pc,
        kind: OpKind::Load,
        dst: Some(RegRef::int(dst)),
        srcs: [Some(RegRef::int(2)), None],
        // Every load misses: stride far beyond the L1.
        mem: Some(MemAccess {
            addr: 0x10_0000 + i * 8192,
            width: 8,
            value: 0,
            fp: false,
        }),
        branch: None,
    }
}

#[test]
fn more_mshrs_overlap_more_misses() {
    // Independent missing loads: with 1 MSHR the misses serialize, with 8
    // they overlap up to the completion-buffer depth.
    let trace: Trace = (0..300u64)
        .map(|i| missing_load(0x10000 + 4 * (i % 8), (10 + i % 4) as u8, i))
        .collect();
    let one = Ppc620Config {
        mshrs: 1,
        ..Ppc620Config::base()
    };
    let many = Ppc620Config {
        mshrs: 8,
        ..Ppc620Config::base()
    };
    let r1 = simulate_620(&trace, None, &one);
    let r8 = simulate_620(&trace, None, &many);
    assert_eq!(r1.instructions, r8.instructions);
    assert!(
        r8.cycles * 2 < r1.cycles,
        "8 MSHRs should overlap misses at least 2x better: {} vs {}",
        r8.cycles,
        r1.cycles
    );
    // A single blocking-ish MSHR serializes: >= miss latency per load.
    assert!(
        r1.cycles >= 300 * 40,
        "one MSHR must serialize memory latency"
    );
}

#[test]
fn hits_are_unaffected_by_mshr_count() {
    let trace: Trace = (0..300u64)
        .map(|i| missing_load(0x10000 + 4 * (i % 8), (10 + i % 4) as u8, i % 2))
        .collect();
    let one = Ppc620Config {
        mshrs: 1,
        ..Ppc620Config::base()
    };
    let many = Ppc620Config {
        mshrs: 8,
        ..Ppc620Config::base()
    };
    let r1 = simulate_620(&trace, None, &one);
    let r8 = simulate_620(&trace, None, &many);
    // Two lines: everything hits after the cold misses, so the MSHR count
    // only affects whether the two cold misses overlap (≤ one memory
    // round-trip of difference), not the steady-state hit traffic.
    assert!(r1.l1_misses <= 2);
    assert!(
        r1.cycles - r8.cycles <= 50,
        "hit traffic must not depend on MSHRs beyond the cold misses: {} vs {}",
        r1.cycles,
        r8.cycles
    );
}

#[test]
fn constant_loads_do_not_consume_mshrs() {
    use lvp_trace::PredOutcome;
    let trace: Trace = (0..200u64).map(|i| missing_load(0x10000, 10, i)).collect();
    let cfg = Ppc620Config {
        mshrs: 1,
        ..Ppc620Config::base()
    };
    let base = simulate_620(&trace, None, &cfg);
    let consts = vec![PredOutcome::Constant; 200];
    let lvp = simulate_620(&trace, Some(&consts), &cfg);
    assert_eq!(lvp.l1_misses, 0);
    assert!(
        lvp.cycles * 10 < base.cycles,
        "CVU-verified constants bypass the miss path entirely: {} vs {}",
        lvp.cycles,
        base.cycles
    );
}
