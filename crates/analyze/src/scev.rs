//! Natural loops and scalar evolution over SSA values.
//!
//! Works on the *local* (call-summarized) [`FlowGraph`] view: on the raw
//! conservative CFG the indirect-jump edges destroy dominance, so no
//! back edge `latch → header` with `header` dominating `latch` ever
//! exists there. On the local view the O0 compiler's loops (`.Lf_for_*`
//! blocks, counted via callee-saved induction registers) show up as
//! ordinary natural loops.
//!
//! [`ScalarEvolution`] assigns every SSA value, *relative to one loop*,
//! a point in the small lattice [`Evolution`]:
//!
//! ```text
//!   Const(c)  ⊑  Invariant  ⊑  Unknown      Affine{stride} ⊑ Unknown
//! ```
//!
//! * `Const(c)` — the value is the compile-time constant `c`;
//! * `Invariant` — the value does not change while the loop runs;
//! * `Affine { stride }` — the value follows `base + i·stride` across
//!   iterations (a header φ whose back-edge input adds a constant);
//! * `Unknown` — anything else (loads, call clobbers, non-affine φs).

use crate::ssa::{Dominators, FlowGraph, Ssa, ValueDef, ValueId};
use lvp_isa::{Instr, Program};
use std::collections::{BTreeMap, BTreeSet};

/// One natural loop: a back edge `latch → header` where the header
/// dominates the latch, plus every block that can reach a latch without
/// passing through the header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header block.
    pub header: usize,
    /// Blocks jumping back to the header from inside the loop.
    pub latches: Vec<usize>,
    /// All blocks in the loop body (header included), ascending.
    pub body: Vec<usize>,
}

impl Loop {
    /// Whether block `b` is in the loop body.
    pub fn contains(&self, b: usize) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// All natural loops of a [`FlowGraph`], with an innermost-loop map.
#[derive(Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop index per block (`usize::MAX` when not in a loop).
    innermost: Vec<usize>,
}

impl LoopForest {
    /// Finds every natural loop in `g` (back edges merged per header).
    pub fn compute(g: &FlowGraph, dom: &Dominators) -> LoopForest {
        // Group back edges by header.
        let mut latches_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for b in 0..g.len() {
            if !dom.reachable(b) {
                continue;
            }
            for &s in g.succs(b) {
                if dom.dominates(s, b) {
                    latches_of.entry(s).or_default().push(b);
                }
            }
        }
        let mut loops = Vec::new();
        for (header, latches) in latches_of {
            // Body: blocks that reach a latch backwards without passing
            // the header.
            let mut body: BTreeSet<usize> = BTreeSet::new();
            body.insert(header);
            let mut work: Vec<usize> = latches.clone();
            while let Some(b) = work.pop() {
                if body.insert(b) {
                    work.extend(g.preds(b).iter().copied().filter(|&p| dom.reachable(p)));
                }
            }
            loops.push(Loop {
                header,
                latches,
                body: body.into_iter().collect(),
            });
        }
        // Innermost = smallest containing body.
        let mut innermost = vec![usize::MAX; g.len()];
        for (b, slot) in innermost.iter_mut().enumerate() {
            let mut best: Option<usize> = None;
            for (i, l) in loops.iter().enumerate() {
                if l.contains(b) && best.is_none_or(|cur| l.body.len() < loops[cur].body.len()) {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                *slot = i;
            }
        }
        LoopForest { loops, innermost }
    }

    /// All loops found.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost(&self, b: usize) -> Option<&Loop> {
        self.loops
            .get(self.innermost.get(b).copied().unwrap_or(usize::MAX))
    }

    /// Index of the innermost loop containing block `b`, if any.
    pub fn innermost_index(&self, b: usize) -> Option<usize> {
        let i = self.innermost.get(b).copied().unwrap_or(usize::MAX);
        (i != usize::MAX).then_some(i)
    }
}

/// How one SSA value evolves across iterations of a particular loop.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Evolution {
    /// A compile-time constant.
    Const(i64),
    /// Loop-invariant: defined outside the loop, or derived only from
    /// invariant values.
    Invariant,
    /// Affine recurrence `base + i·stride` with the given per-iteration
    /// stride (non-zero; a zero stride collapses to `Invariant`).
    Affine {
        /// Per-iteration increment.
        stride: i64,
    },
    /// Not provably any of the above.
    Unknown,
}

impl Evolution {
    /// Whether this evolution never changes inside the loop (constant or
    /// invariant).
    pub fn is_invariant(self) -> bool {
        matches!(self, Evolution::Const(_) | Evolution::Invariant)
    }

    fn add_const(self, c: i64) -> Evolution {
        match self {
            Evolution::Const(k) => Evolution::Const(k.wrapping_add(c)),
            Evolution::Invariant => Evolution::Invariant,
            Evolution::Affine { stride } => Evolution::Affine { stride },
            Evolution::Unknown => Evolution::Unknown,
        }
    }
}

/// Per-loop scalar-evolution query engine over an [`Ssa`] form.
pub struct ScalarEvolution<'a> {
    program: &'a Program,
    ssa: &'a Ssa,
    lp: &'a Loop,
    /// Memoized evolutions; `None` marks "in progress" for cycle
    /// breaking (any cycle not through a recognized header φ is
    /// `Unknown`).
    memo: BTreeMap<ValueId, Option<Evolution>>,
}

impl<'a> ScalarEvolution<'a> {
    /// Creates an engine for values relative to loop `lp`.
    pub fn new(program: &'a Program, ssa: &'a Ssa, lp: &'a Loop) -> ScalarEvolution<'a> {
        ScalarEvolution {
            program,
            ssa,
            lp,
            memo: BTreeMap::new(),
        }
    }

    /// The evolution of `v` relative to the loop.
    pub fn evolution(&mut self, v: ValueId) -> Evolution {
        if let Some(state) = self.memo.get(&v) {
            // `None` = currently being computed: a cycle that is not a
            // recognized header φ recurrence.
            return state.unwrap_or(Evolution::Unknown);
        }
        self.memo.insert(v, None);
        let result = self.compute(v);
        self.memo.insert(v, Some(result));
        result
    }

    fn compute(&mut self, v: ValueId) -> Evolution {
        match self.ssa.value(v).clone() {
            ValueDef::Entry { .. } => Evolution::Invariant,
            ValueDef::CallClobber { .. } => Evolution::Unknown,
            ValueDef::Instr { instr } => {
                if !self.lp.contains(self.ssa.block_of_instr(instr)) {
                    return Evolution::Invariant;
                }
                self.instr_evolution(instr)
            }
            ValueDef::Phi { phi } => {
                let p = self.ssa.phi(phi).clone();
                if !self.lp.contains(p.block) {
                    return Evolution::Invariant;
                }
                if p.block == self.lp.header {
                    return self.header_phi_evolution(v, &p.inputs);
                }
                // A join inside the loop body: invariant if every input
                // is, the same constant if all inputs agree.
                let evos: Vec<Evolution> =
                    p.inputs.iter().map(|&(_, i)| self.evolution(i)).collect();
                if let [first, rest @ ..] = evos.as_slice() {
                    if matches!(first, Evolution::Const(_)) && rest.iter().all(|e| e == first) {
                        return *first;
                    }
                    if evos.iter().all(|e| e.is_invariant()) {
                        return Evolution::Invariant;
                    }
                }
                Evolution::Unknown
            }
        }
    }

    fn instr_evolution(&mut self, instr: usize) -> Evolution {
        let text = self.program.text();
        let uses = self.ssa.uses_of(instr).to_vec();
        match text[instr] {
            Instr::Lui { imm, .. } => Evolution::Const((imm as i64) << 12),
            Instr::Addi { imm, .. } => {
                let base = self.use_evolution(&uses, 0);
                base.add_const(imm as i64)
            }
            Instr::Add { .. } => {
                let a = self.use_evolution(&uses, 0);
                let b = self.use_evolution(&uses, 1);
                combine_add(a, b)
            }
            Instr::Sub { .. } => {
                let a = self.use_evolution(&uses, 0);
                let b = self.use_evolution(&uses, 1);
                combine_sub(a, b)
            }
            Instr::Slli { shamt, .. } => match self.use_evolution(&uses, 0) {
                Evolution::Const(c) => Evolution::Const(c.wrapping_shl(shamt as u32)),
                Evolution::Invariant => Evolution::Invariant,
                Evolution::Affine { stride } => Evolution::Affine {
                    stride: stride.wrapping_shl(shamt as u32),
                },
                Evolution::Unknown => Evolution::Unknown,
            },
            // Any other register-writing instruction inside the loop
            // (loads, comparisons, shifts by register, calls' link
            // writes …) is not tracked.
            _ => Evolution::Unknown,
        }
    }

    /// A use of the zero register is the constant 0; otherwise recurse
    /// on the SSA value.
    fn use_evolution(&mut self, uses: &[ValueId], nth: usize) -> Evolution {
        match uses.get(nth) {
            Some(&v) => {
                if let ValueDef::Entry { slot } = self.ssa.value(v) {
                    if *slot == 0 {
                        return Evolution::Const(0);
                    }
                }
                self.evolution(v)
            }
            None => Evolution::Unknown,
        }
    }

    /// A header φ is the loop's recurrence point: if every
    /// outside-the-loop input is invariant and every back-edge input
    /// walks an `addi`/`add`-constant chain back to this φ, the φ is
    /// `Affine { stride }` (collapsing to `Invariant` when the stride is
    /// zero).
    fn header_phi_evolution(
        &mut self,
        phi_value: ValueId,
        inputs: &[(usize, ValueId)],
    ) -> Evolution {
        let mut stride: Option<i64> = None;
        for &(pred, input) in inputs {
            if self.lp.contains(pred) {
                // Back edge: must be `phi + c` for a constant chain.
                match self.stride_to(input, phi_value, 0, 32) {
                    Some(c) => match stride {
                        None => stride = Some(c),
                        Some(prev) if prev == c => {}
                        Some(_) => return Evolution::Unknown,
                    },
                    None => return Evolution::Unknown,
                }
            } else {
                // Entry edge: the initial value must not depend on the
                // loop.
                if !self.evolution(input).is_invariant() {
                    return Evolution::Unknown;
                }
            }
        }
        match stride {
            Some(0) | None => Evolution::Invariant,
            Some(s) => Evolution::Affine { stride: s },
        }
    }

    /// Whether `v` is `target + c` through a chain of constant
    /// additions; returns `c` if so. Used by the classifier to detect
    /// memory induction variables (`cell = cell + c`).
    pub fn const_offset_from(&mut self, v: ValueId, target: ValueId) -> Option<i64> {
        self.stride_to(v, target, 0, 32)
    }

    /// Walks `v` backwards through constant-add chains looking for
    /// `target`; returns the accumulated constant if found.
    fn stride_to(&mut self, v: ValueId, target: ValueId, acc: i64, depth: u32) -> Option<i64> {
        if v == target {
            return Some(acc);
        }
        if depth == 0 {
            return None;
        }
        match self.ssa.value(v).clone() {
            ValueDef::Instr { instr } => {
                let text = self.program.text();
                let uses = self.ssa.uses_of(instr).to_vec();
                match text[instr] {
                    Instr::Addi { imm, .. } => self.stride_to(
                        *uses.first()?,
                        target,
                        acc.wrapping_add(imm as i64),
                        depth - 1,
                    ),
                    Instr::Add { .. } => {
                        // `add phi_chain, const_chain` in either order.
                        let a = *uses.first()?;
                        let b = *uses.get(1)?;
                        if let Evolution::Const(c) = self.evolution(b) {
                            if let Some(r) =
                                self.stride_to(a, target, acc.wrapping_add(c), depth - 1)
                            {
                                return Some(r);
                            }
                        }
                        if let Evolution::Const(c) = self.evolution(a) {
                            return self.stride_to(b, target, acc.wrapping_add(c), depth - 1);
                        }
                        None
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

fn combine_add(a: Evolution, b: Evolution) -> Evolution {
    use Evolution::*;
    match (a, b) {
        (Const(x), Const(y)) => Const(x.wrapping_add(y)),
        (Unknown, _) | (_, Unknown) => Unknown,
        (Affine { stride: s1 }, Affine { stride: s2 }) => {
            let s = s1.wrapping_add(s2);
            if s == 0 {
                // Two counter-rotating recurrences: the sum is constant
                // across iterations only relative to its base, which we
                // do not track — stay conservative.
                Unknown
            } else {
                Affine { stride: s }
            }
        }
        (Affine { stride }, other) | (other, Affine { stride }) if other.is_invariant() => {
            Affine { stride }
        }
        (x, y) if x.is_invariant() && y.is_invariant() => Invariant,
        _ => Unknown,
    }
}

fn combine_sub(a: Evolution, b: Evolution) -> Evolution {
    use Evolution::*;
    match b {
        Const(c) => combine_add(a, Const(c.wrapping_neg())),
        Invariant => combine_add(a, Invariant),
        Affine { stride } => combine_add(
            a,
            Affine {
                stride: stride.wrapping_neg(),
            },
        ),
        Unknown => Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::ssa::FlowGraph;
    use lvp_isa::{AsmProfile, Assembler, Program};

    fn setup(src: &str) -> (Program, Cfg) {
        let p = Assembler::new(AsmProfile::Gp).assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        (p, cfg)
    }

    #[test]
    fn counted_loop_induction_is_affine() {
        let (p, cfg) = setup(
            "main:\n li a0, 0\n li a1, 10\nloop:\n addi a0, a0, 3\n bne a0, a1, loop\n\
             out a0\n halt\n",
        );
        let g = FlowGraph::local(&p, &cfg);
        let dom = Dominators::compute(&g);
        let ssa = Ssa::build(&p, &cfg, &g);
        let forest = LoopForest::compute(&g, &dom);
        assert_eq!(forest.loops().len(), 1);
        let lp = &forest.loops()[0];
        let mut scev = ScalarEvolution::new(&p, &ssa, lp);
        // The addi at index 2 defines the next iteration's a0.
        let next = ssa.def_of(2).unwrap();
        assert_eq!(scev.evolution(next), Evolution::Affine { stride: 3 });
        // Its input (the header φ) is also affine with stride 3.
        let phi = ssa.value_for_use(2, 0).unwrap();
        assert_eq!(scev.evolution(phi), Evolution::Affine { stride: 3 });
        // The bound a1 is invariant.
        let bound = ssa.value_for_use(3, 1).unwrap();
        assert!(scev.evolution(bound).is_invariant());
    }

    #[test]
    fn decrementing_loop_has_negative_stride() {
        let (p, cfg) = setup(
            "main:\n li a0, 10\nloop:\n addi a0, a0, -1\n bne a0, zero, loop\n out a0\n halt\n",
        );
        let g = FlowGraph::local(&p, &cfg);
        let dom = Dominators::compute(&g);
        let ssa = Ssa::build(&p, &cfg, &g);
        let forest = LoopForest::compute(&g, &dom);
        let lp = &forest.loops()[0];
        let mut scev = ScalarEvolution::new(&p, &ssa, lp);
        let phi = ssa.value_for_use(1, 0).unwrap();
        assert_eq!(scev.evolution(phi), Evolution::Affine { stride: -1 });
    }

    #[test]
    fn scaled_induction_scales_the_stride() {
        // idx = i * 8 via slli: stride 1 << 3 = 8.
        let (p, cfg) = setup(
            "main:\n li a0, 0\n li a1, 10\nloop:\n slli a2, a0, 3\n addi a0, a0, 1\n\
             bne a0, a1, loop\n out a2\n halt\n",
        );
        let g = FlowGraph::local(&p, &cfg);
        let dom = Dominators::compute(&g);
        let ssa = Ssa::build(&p, &cfg, &g);
        let forest = LoopForest::compute(&g, &dom);
        let lp = &forest.loops()[0];
        let mut scev = ScalarEvolution::new(&p, &ssa, lp);
        let scaled = ssa.def_of(2).unwrap(); // slli
        assert_eq!(scev.evolution(scaled), Evolution::Affine { stride: 8 });
    }

    #[test]
    fn value_updated_by_nonconstant_is_unknown() {
        // a0 += a2 where a2 is itself loaded each iteration: not affine.
        let (p, cfg) = setup(
            "main:\n li a0, 0\n li a1, 10\n li a3, 0\nloop:\n add a0, a0, a2\n\
             addi a3, a3, 1\n bne a3, a1, loop\n out a0\n halt\n",
        );
        let g = FlowGraph::local(&p, &cfg);
        let dom = Dominators::compute(&g);
        let ssa = Ssa::build(&p, &cfg, &g);
        let forest = LoopForest::compute(&g, &dom);
        let lp = &forest.loops()[0];
        let mut scev = ScalarEvolution::new(&p, &ssa, lp);
        // a2 is the uninitialized entry value — invariant — so
        // a0 = a0 + invariant is NOT a constant-stride recurrence our
        // chain walk recognizes (the stride is symbolic).
        let phi = ssa.value_for_use(3, 0).unwrap();
        assert_eq!(scev.evolution(phi), Evolution::Unknown);
    }

    #[test]
    fn loop_with_call_clobbers_tracking() {
        let (p, cfg) = setup(
            "main:\n li t0, 0\n li s1, 10\nloop:\n addi t0, t0, 1\n jal ra, f\n\
             bne t0, s1, loop\n out t0\n halt\nf:\n jalr zero, ra, 0\n",
        );
        let g = FlowGraph::local(&p, &cfg);
        let dom = Dominators::compute(&g);
        let ssa = Ssa::build(&p, &cfg, &g);
        let forest = LoopForest::compute(&g, &dom);
        assert_eq!(forest.loops().len(), 1);
        let lp = &forest.loops()[0];
        let mut scev = ScalarEvolution::new(&p, &ssa, lp);
        // t0 is caller-saved: the call clobbers it, so the branch reads
        // a clobber value — Unknown, not Affine.
        let t0_at_branch = ssa.value_for_use(4, 0).unwrap();
        assert_eq!(scev.evolution(t0_at_branch), Evolution::Unknown);
        // s1 is callee-saved: still invariant across the call.
        let s1_at_branch = ssa.value_for_use(4, 1).unwrap();
        assert!(scev.evolution(s1_at_branch).is_invariant());
    }
}
