//! The program verifier: runs every lint over a [`Program`] and collects
//! [`Diagnostic`]s.
//!
//! The lints are deliberately *must*-style (a finding is a definite bug on
//! every path) or idiom-aware, so that correct compiler output and the
//! hand-written workload kernels verify clean; see the crate docs for the
//! precise conservatism of each lint.

use crate::cfg::Cfg;
use crate::dataflow::{Liveness, ReachingDefs};
use crate::diag::{sort_and_dedupe, Diagnostic, LintCode};
use lvp_isa::{Instr, Program, Reg, RegId};

/// Register slots that the machine initializes at program entry
/// (`zero`, `ra` = exit address, `sp` = stack top, `gp` = pool base);
/// reads of these are never uninitialized.
const ENTRY_INIT: u64 = (1 << 0) | (1 << 1) | (1 << 2) | (1 << 3);

/// Runs all lints over `program`, returning diagnostics canonically
/// sorted by `(pc, code, message)` with exact repeats removed.
pub fn verify(program: &Program) -> Vec<Diagnostic> {
    let cfg = Cfg::build(program);
    let mut diags = Vec::new();
    if program.text().is_empty() {
        return diags;
    }
    let reachable = cfg.reachable();
    let rdefs = ReachingDefs::compute(program, &cfg);
    let live = Liveness::compute(program, &cfg);

    lint_branch_targets(&cfg, &mut diags);
    lint_unreachable(program, &cfg, &reachable, &mut diags);
    lint_uninit_reads(program, &cfg, &reachable, &rdefs, &mut diags);
    lint_dead_stores(program, &cfg, &reachable, &live, &mut diags);
    lint_mem_operands(program, &mut diags);
    lint_zero_writes(program, &cfg, &mut diags);

    sort_and_dedupe(&mut diags);
    diags
}

/// `LVP004`: direct branch/jump targets outside the text segment.
fn lint_branch_targets(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for bad in cfg.bad_branches() {
        diags.push(Diagnostic::new(
            LintCode::BranchOutOfText,
            cfg.pc_of(bad.instr),
            format!(
                "branch target {:#x} is outside the text segment",
                bad.target
            ),
        ));
    }
}

/// `LVP002`: blocks unreachable from the entry point.
fn lint_unreachable(program: &Program, cfg: &Cfg, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            let len = block.end - block.start;
            diags.push(Diagnostic::new(
                LintCode::UnreachableBlock,
                cfg.pc_of(block.start),
                format!(
                    "unreachable block of {len} instruction{} starting with `{}`",
                    if len == 1 { "" } else { "s" },
                    program.text()[block.start],
                ),
            ));
        }
    }
}

/// Whether this use of `reg` by `instr` is exempt from the uninit-read
/// lint: spilling a (possibly still uninitialized) register to the stack
/// in a prologue is standard ABI practice — callee-saved registers are
/// saved before the function knows whether the caller ever set them.
fn is_spill_of(instr: &Instr, reg: RegId) -> bool {
    let stored = match *instr {
        Instr::Sb { rs2, .. }
        | Instr::Sh { rs2, .. }
        | Instr::Sw { rs2, .. }
        | Instr::Sd { rs2, .. } => RegId::Int(rs2),
        Instr::Fsd { fs2, .. } => RegId::Fp(fs2),
        _ => return false,
    };
    let sp_based = matches!(instr.mem_operand(), Some((base, _)) if base == Reg::SP);
    sp_based && stored == reg
}

/// `LVP001`: a register read where no real definition reaches on any path.
fn lint_uninit_reads(
    program: &Program,
    cfg: &Cfg,
    reachable: &[bool],
    rdefs: &ReachingDefs,
    diags: &mut Vec<Diagnostic>,
) {
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for i in block.start..block.end {
            let instr = &program.text()[i];
            for (nth, u) in instr.uses().enumerate() {
                // `add a1, a0, a0` names the same register twice; report once.
                if instr.uses().take(nth).any(|prev| prev == u) {
                    continue;
                }
                let slot = u.flat_index();
                if slot < 64 && ENTRY_INIT & (1u64 << slot) != 0 {
                    continue;
                }
                if is_spill_of(instr, u) {
                    continue;
                }
                if rdefs.only_entry_def_reaches(cfg, i, u) {
                    diags.push(Diagnostic::new(
                        LintCode::UninitRead,
                        cfg.pc_of(i),
                        format!("`{instr}` reads register {u}, which is uninitialized on every path from entry"),
                    ));
                }
            }
        }
    }
}

/// Whether writes to this register are ABI bookkeeping that may
/// legitimately go unread: epilogue restores of callee-saved registers
/// (including `sp`/`gp` adjustment) and `ra` are dead in the outermost
/// frame — nothing reads them after the final return — but they are
/// required ABI behavior, not bugs.
fn is_abi_preserved(d: RegId) -> bool {
    match d {
        RegId::Int(r) => r == Reg::RA || r.is_callee_saved(),
        RegId::Fp(r) => r.is_callee_saved(),
    }
}

/// `LVP003`: register writes that can never be observed — either
/// overwritten in the same block before any read, or unused to the end of
/// a block whose live-out set does not contain the register.
fn lint_dead_stores(
    program: &Program,
    cfg: &Cfg,
    reachable: &[bool],
    live: &Liveness,
    diags: &mut Vec<Diagnostic>,
) {
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        'defs: for i in block.start..block.end {
            let instr = &program.text()[i];
            let Some(d) = instr.defs() else { continue };
            // Zero-register writes are LVP006's concern.
            if d.is_zero() {
                continue;
            }
            for j in i + 1..block.end {
                let next = &program.text()[j];
                if next.uses().any(|u| u == d) {
                    continue 'defs; // value observed
                }
                if next.defs() == Some(d) {
                    diags.push(Diagnostic::new(
                        LintCode::DeadStore,
                        cfg.pc_of(i),
                        format!(
                            "value written to {d} by `{instr}` is overwritten at {:#x} before any read",
                            cfg.pc_of(j)
                        ),
                    ));
                    continue 'defs;
                }
            }
            // Unused to the end of the block: dead iff not live-out.
            if live.live_out[b] & (1u64 << d.flat_index()) == 0 && !is_abi_preserved(d) {
                diags.push(Diagnostic::new(
                    LintCode::DeadStore,
                    cfg.pc_of(i),
                    format!("value written to {d} by `{instr}` is never read"),
                ));
            }
        }
    }
}

/// `LVP005`: statically resolvable memory operands that are misaligned or
/// fall outside the data segment. Only operands whose base register has a
/// statically known value are checked: `zero` (absolute addressing) and
/// `gp` (pool base) when the program never writes `gp`.
fn lint_mem_operands(program: &Program, diags: &mut Vec<Diagnostic>) {
    let layout = program.layout();
    let gp_stable = !program
        .text()
        .iter()
        .any(|i| i.defs() == Some(RegId::Int(Reg::GP)));
    for (i, instr) in program.text().iter().enumerate() {
        let Some((base, offset)) = instr.mem_operand() else {
            continue;
        };
        let addr = if base == Reg::ZERO {
            offset as i64 as u64
        } else if base == Reg::GP && gp_stable {
            program.pool_base().wrapping_add_signed(offset as i64)
        } else {
            continue;
        };
        let pc = layout.text_base() + i as u64 * 4;
        let width = instr.mem_width().map(|w| w.bytes()).unwrap_or(8);
        if !addr.is_multiple_of(width) {
            diags.push(Diagnostic::new(
                LintCode::BadMemOperand,
                pc,
                format!("`{instr}` accesses {addr:#x}, which is not {width}-byte aligned"),
            ));
        }
        let in_data = addr >= layout.data_base() && addr + width <= layout.data_end();
        if !in_data {
            diags.push(Diagnostic::new(
                LintCode::BadMemOperand,
                pc,
                format!(
                    "`{instr}` accesses {addr:#x}, outside the data segment [{:#x}, {:#x}) ({:?})",
                    layout.data_base(),
                    layout.data_end(),
                    layout.classify_value(addr)
                ),
            ));
        }
    }
}

/// `LVP006`: writes to the hardwired zero register. `jal`/`jalr` with a
/// `zero` link register are the standard "discard the return address"
/// idiom and are exempt.
fn lint_zero_writes(program: &Program, cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    for (i, instr) in program.text().iter().enumerate() {
        if matches!(instr, Instr::Jal { .. } | Instr::Jalr { .. }) {
            continue;
        }
        if matches!(instr.defs(), Some(d) if d.is_zero()) {
            diags.push(Diagnostic::new(
                LintCode::WriteToZero,
                cfg.pc_of(i),
                format!("`{instr}` writes to the hardwired zero register; the value is discarded"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};

    fn diags(src: &str) -> Vec<Diagnostic> {
        let p = Assembler::new(AsmProfile::Gp).assemble(src).unwrap();
        verify(&p)
    }

    fn codes(src: &str) -> Vec<LintCode> {
        diags(src).iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = diags(
            "main:\n li a0, 3\nloop:\n addi a0, a0, -1\n bne a0, zero, loop\n out a0\n halt\n",
        );
        assert!(d.is_empty(), "unexpected diagnostics: {d:?}");
    }

    #[test]
    fn uninit_read_detected() {
        let c = codes("main:\n add a1, a0, a0\n out a1\n halt\n");
        assert_eq!(c, vec![LintCode::UninitRead]);
    }

    #[test]
    fn uninit_read_not_reported_at_join_with_one_def() {
        let c = codes(
            "main:\n beq t0, zero, skip\n li a0, 1\nskip:\n add a1, a0, a0\n out a1\n halt\n",
        );
        // t0 read is uninit; the a0 read at the join is only *maybe*
        // uninit and must not be reported.
        assert_eq!(c, vec![LintCode::UninitRead]);
    }

    #[test]
    fn spill_of_callee_saved_is_exempt() {
        let c = codes(
            "main:\n addi sp, sp, -16\n sd s0, 0(sp)\n li s0, 5\n out s0\n ld s0, 0(sp)\n addi sp, sp, 16\n halt\n",
        );
        assert!(c.is_empty(), "prologue spill misdiagnosed: {c:?}");
    }

    #[test]
    fn unreachable_block_detected() {
        let c = codes("main:\n j end\n li a0, 1\n out a0\nend:\n halt\n");
        assert_eq!(c, vec![LintCode::UnreachableBlock]);
    }

    #[test]
    fn dead_store_overwrite_detected() {
        let c = codes("main:\n li a0, 1\n li a0, 2\n out a0\n halt\n");
        assert_eq!(c, vec![LintCode::DeadStore]);
    }

    #[test]
    fn dead_store_never_read_detected() {
        let c = codes("main:\n li a0, 1\n li a1, 7\n out a0\n halt\n");
        assert_eq!(c, vec![LintCode::DeadStore]);
    }

    #[test]
    fn write_to_zero_detected() {
        let c = codes("main:\n add zero, a0, a0\n halt\n");
        // The read of a0 is also uninit.
        assert!(c.contains(&LintCode::WriteToZero), "got {c:?}");
    }

    #[test]
    fn absolute_mem_operand_checked() {
        // 0x8 is far below DATA_BASE.
        let c = codes("main:\n li a0, 1\n sw a0, 8(zero)\n out a0\n halt\n");
        assert_eq!(c, vec![LintCode::BadMemOperand]);
    }

    #[test]
    fn misaligned_pool_operand_checked() {
        let p = Assembler::new(AsmProfile::Toc)
            .assemble("main:\n ld a0, 1(gp)\n out a0\n halt\n")
            .unwrap();
        let d = verify(&p);
        assert!(
            d.iter().any(|d| d.code == LintCode::BadMemOperand),
            "misaligned gp-relative access not flagged: {d:?}"
        );
    }
}
