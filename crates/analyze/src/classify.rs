//! Per-load static predictability: which predictor in the zoo should
//! catch each load, proven from program structure.
//!
//! Composes three earlier layers:
//!
//! * [`analyze_memory`](crate::analyze_memory) — must-constant loads
//!   (the PR 4 provenance result);
//! * [`Ssa`] on the call-summarized [`FlowGraph`] — who defines each
//!   register value;
//! * [`ScalarEvolution`] around natural loop headers — which values are
//!   loop-invariant or affine recurrences.
//!
//! The pass tracks *memory cells* — `(invariant base value, offset,
//! width)` triples — through call-free innermost loops: a cell no store
//! in the loop can write makes its loads **loop-invariant** (`LVP013`);
//! a cell with a single dominating store whose value is an affine
//! recurrence (or a constant-increment of the cell's own previous value
//! — a memory induction variable) makes its loads **affine-stride(k)**
//! (`LVP012`); a same-cell store/load pair whose value travels around
//! the back edge is **store-to-load forwardable** across iterations
//! (`LVP016`). Everything the analysis cannot prove stays **unknown**,
//! and the dynamic LCT reports where that under-approximates (`LVP014`,
//! trace-bearing paths only).

use crate::alias::{AddrRes, AliasAnalysis};
use crate::cfg::Cfg;
use crate::diag::{sort_and_dedupe, Diagnostic, LintCode};
use crate::provenance::{analyze_memory, MemClass};
use crate::regions::RegionMap;
use crate::scev::{Evolution, LoopForest, ScalarEvolution};
use crate::ssa::{Dominators, FlowGraph, Ssa, ValueId};
use lvp_isa::{Instr, Program, Reg, RegId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Static predictability class of one load, naming the cheapest
/// predictor that provably catches it.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadPredictability {
    /// The provenance pass proves the loaded slot is never written: the
    /// value is the data-image constant on every execution (a last-value
    /// predictor is exact after one miss; the CVU never invalidates).
    MustConstant,
    /// The loaded value follows `base + i·stride` around the enclosing
    /// loop: a stride predictor catches it after warm-up.
    AffineStride(
        /// Per-iteration stride in bytes of value change.
        i64,
    ),
    /// No store in the enclosing loop writes the cell (or the single
    /// store rewrites a loop-invariant value): the value repeats, so the
    /// load is hoistable and last-value-predictable.
    LoopInvariant,
    /// A dominating same-cell store produces the value in the same
    /// iteration: store-to-load forwarding (or a stale-value predictor)
    /// catches it.
    StoreToLoadForwardable,
    /// Not provably any of the above.
    Unknown,
}

impl fmt::Display for LoadPredictability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadPredictability::MustConstant => f.write_str("must-constant"),
            LoadPredictability::AffineStride(k) => write!(f, "affine-stride({k})"),
            LoadPredictability::LoopInvariant => f.write_str("loop-invariant"),
            LoadPredictability::StoreToLoadForwardable => f.write_str("store-to-load-forwardable"),
            LoadPredictability::Unknown => f.write_str("unknown"),
        }
    }
}

/// One load with its static predictability class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfLoad {
    /// Address of the load instruction.
    pub pc: u64,
    /// The predictability class.
    pub class: LoadPredictability,
}

/// The result of the value-flow pass over one program.
#[derive(Debug, Clone)]
pub struct ValueFlowReport {
    /// Every reachable static load, in text order.
    pub loads: Vec<VfLoad>,
    /// The static value-flow lints (`LVP012`, `LVP013`, `LVP015`,
    /// `LVP016`), canonically sorted and deduped. `LVP014` needs a
    /// dynamic observation and is produced separately by
    /// [`lvp014_diagnostics`].
    pub diagnostics: Vec<Diagnostic>,
}

impl ValueFlowReport {
    /// Count of loads in `class` (affine counted together regardless of
    /// stride).
    pub fn count(&self, class: LoadPredictability) -> usize {
        self.loads
            .iter()
            .filter(|l| match (l.class, class) {
                (LoadPredictability::AffineStride(_), LoadPredictability::AffineStride(_)) => true,
                (a, b) => a == b,
            })
            .count()
    }

    /// The class of the load at `pc`, if the pass saw one there.
    pub fn class_of(&self, pc: u64) -> Option<LoadPredictability> {
        self.loads.iter().find(|l| l.pc == pc).map(|l| l.class)
    }

    /// The affine-stride loads as `(pc, stride)` pairs — the claims the
    /// harness stride-predictor cross-check gates dynamically.
    pub fn affine_claims(&self) -> Vec<(u64, i64)> {
        self.loads
            .iter()
            .filter_map(|l| match l.class {
                LoadPredictability::AffineStride(k) => Some((l.pc, k)),
                _ => None,
            })
            .collect()
    }
}

/// Registers the machine initializes before entry (`zero`, `ra`, `sp`,
/// `gp`) — same exemption set as `LVP001`.
const ENTRY_INIT: u64 = (1 << 0) | (1 << 1) | (1 << 2) | (1 << 3);

/// Prologue spills of a register are exempt from uninit-read lints;
/// mirrors the `LVP001` exemption.
fn is_spill_of(instr: &Instr, reg: RegId) -> bool {
    let stored = match *instr {
        Instr::Sb { rs2, .. }
        | Instr::Sh { rs2, .. }
        | Instr::Sw { rs2, .. }
        | Instr::Sd { rs2, .. } => RegId::Int(rs2),
        Instr::Fsd { fs2, .. } => RegId::Fp(fs2),
        _ => return false,
    };
    let sp_based = matches!(instr.mem_operand(), Some((base, _)) if base == Reg::SP);
    sp_based && stored == reg
}

/// One memory access inside a loop, with its resolved address facts.
struct Access {
    instr: usize,
    pc: u64,
    block: usize,
    /// SSA value of the base register.
    base: ValueId,
    offset: i32,
    width: u8,
    /// Address resolution from the alias fixpoint, when the state
    /// reached the instruction.
    res: Option<AddrRes>,
}

/// Whether two accesses are provably disjoint: same invariant base with
/// non-overlapping byte ranges, both exactly resolved to disjoint
/// ranges, or resolved to disjoint region sets.
fn provably_disjoint(
    a: &Access,
    a_base_invariant: bool,
    b: &Access,
    b_base_invariant: bool,
    regions: &RegionMap,
) -> bool {
    if a_base_invariant && b_base_invariant && a.base == b.base {
        let (ao, bo) = (a.offset as i64, b.offset as i64);
        return ao + a.width as i64 <= bo || bo + b.width as i64 <= ao;
    }
    match (a.res, b.res) {
        (Some(AddrRes::Exact(x)), Some(AddrRes::Exact(y))) => {
            x + a.width as u64 <= y || y + b.width as u64 <= x
        }
        (Some(ra), Some(rb)) => {
            let sa = ra.regions(a.width, regions);
            let sb = rb.regions(b.width, regions);
            !sa.is_empty() && !sb.is_empty() && sa.iter().all(|r| !sb.contains(r))
        }
        _ => false,
    }
}

/// Runs the static value-flow pass: SSA construction and verification
/// on both graph views, natural loops and scalar evolution on the local
/// view, and the per-load predictability classification.
pub fn analyze_value_flow(program: &Program) -> ValueFlowReport {
    let text = program.text();
    let cfg = Cfg::build(program);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let entry_pc = cfg.pc_of(0);

    // --- LVP015 part 1: structural SSA verification on both views. ---
    let raw = FlowGraph::raw(&cfg);
    let raw_dom = Dominators::compute(&raw);
    let raw_ssa = Ssa::build(program, &cfg, &raw);
    for e in raw_ssa.verify(&raw, &raw_dom) {
        diags.push(Diagnostic::new(
            LintCode::SsaInconsistency,
            entry_pc,
            format!("ssa verifier (raw view): {e}"),
        ));
    }
    let local = FlowGraph::local(program, &cfg);
    let dom = Dominators::compute(&local);
    let ssa = Ssa::build(program, &cfg, &local);
    for e in ssa.verify(&local, &dom) {
        diags.push(Diagnostic::new(
            LintCode::SsaInconsistency,
            entry_pc,
            format!("ssa verifier (local view): {e}"),
        ));
    }

    // --- LVP015 part 2: may-uninit reads on the local view — a value
    // that can trace to the undefined entry state on *some* path while a
    // real definition exists on another (the may-complement of LVP001,
    // which covers the every-path case and is not re-reported here). ---
    let flags = ssa.entry_flags();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !raw_dom.reachable(b) || !dom.reachable(b) {
            continue;
        }
        for (i, instr) in text.iter().enumerate().take(block.end).skip(block.start) {
            for (nth, u) in instr.uses().enumerate() {
                if instr.uses().take(nth).any(|prev| prev == u) {
                    continue;
                }
                let slot = u.flat_index();
                if slot < 64 && ENTRY_INIT & (1u64 << slot) != 0 {
                    continue;
                }
                if is_spill_of(instr, u) {
                    continue;
                }
                let Some(v) = ssa.value_for_use(i, nth) else {
                    continue;
                };
                let (may_entry, has_real) = flags[v.0 as usize];
                if may_entry && has_real {
                    diags.push(Diagnostic::new(
                        LintCode::SsaInconsistency,
                        cfg.pc_of(i),
                        format!(
                            "`{instr}` reads register {u}, which is uninitialized on some path from entry"
                        ),
                    ));
                }
            }
        }
    }

    // --- Provenance: must-constant loads (strongest class). ---
    let mem = analyze_memory(program);
    let must_constant: BTreeSet<u64> = mem
        .loads
        .iter()
        .filter(|l| l.class == MemClass::MustConstant)
        .map(|l| l.pc)
        .collect();

    // --- Address resolution per instruction (alias fixpoint replay, as
    // in the provenance pass). ---
    let regions = RegionMap::new(program);
    let alias = AliasAnalysis::compute(program, &cfg, &regions);
    let mut res_of: Vec<Option<AddrRes>> = vec![None; text.len()];
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !alias.block_reached(b) {
            continue;
        }
        let mut state = *alias.block_in(b);
        for i in block.start..block.end {
            res_of[i] = AliasAnalysis::resolve(&state, &text[i]);
            AliasAnalysis::transfer(program, &regions, &text[i], &mut state);
        }
    }

    // --- Loop cell analysis on the local view. ---
    let forest = LoopForest::compute(&local, &dom);
    let mut class_of: BTreeMap<usize, LoadPredictability> = BTreeMap::new();

    for (li, lp) in forest.loops().iter().enumerate() {
        // A call anywhere in the body may store anywhere: no cell in
        // this loop is trackable.
        let has_call = lp
            .body
            .iter()
            .flat_map(|&b| cfg.blocks()[b].start..cfg.blocks()[b].end)
            .any(|i| local.is_call(i));
        if has_call {
            continue;
        }
        let mut scev = ScalarEvolution::new(program, &ssa, lp);

        // Collect the loop's memory accesses with their base evolutions.
        let mut loads: Vec<(Access, bool)> = Vec::new(); // (access, base invariant)
        let mut stores: Vec<(Access, bool)> = Vec::new();
        for &b in &lp.body {
            let block = &cfg.blocks()[b];
            for i in block.start..block.end {
                let instr = &text[i];
                let Some((_, offset)) = instr.mem_operand() else {
                    continue;
                };
                let Some(w) = instr.mem_width().map(|w| w.bytes() as u8) else {
                    continue;
                };
                // The base register is always the first use of a memory
                // instruction.
                let Some(base) = ssa.value_for_use(i, 0) else {
                    continue;
                };
                let inv = scev.evolution(base).is_invariant();
                let acc = Access {
                    instr: i,
                    pc: cfg.pc_of(i),
                    block: b,
                    base,
                    offset,
                    width: w,
                    res: res_of[i],
                };
                if instr.is_load() {
                    loads.push((acc, inv));
                } else if instr.is_store() {
                    stores.push((acc, inv));
                }
            }
        }

        let header_pc = cfg.pc_of(cfg.blocks()[lp.header].start);
        let every_iteration = |block: usize| lp.latches.iter().all(|&l| dom.dominates(block, l));

        for (load, load_inv) in &loads {
            // Classify each load in its innermost loop only; outer
            // loops see the inner loop's stores conservatively anyway.
            if forest.innermost_index(load.block) != Some(li) {
                continue;
            }
            if !*load_inv {
                continue; // striding address: value not cell-trackable
            }
            // Stores that may write this load's cell.
            let aliasing: Vec<&(Access, bool)> = stores
                .iter()
                .filter(|(s, s_inv)| !provably_disjoint(load, true, s, *s_inv, &regions))
                .collect();

            if aliasing.is_empty() {
                class_of.insert(load.instr, LoadPredictability::LoopInvariant);
                diags.push(Diagnostic::new(
                    LintCode::LoopInvariantLoad,
                    load.pc,
                    format!(
                        "loop-invariant load: no store in the loop at {header_pc:#x} writes this cell (hoistable)"
                    ),
                ));
                continue;
            }

            // Exactly one aliasing store, to the *identical* cell, both
            // running every iteration: the cell is a tracked scalar.
            let [(store, s_inv)] = aliasing.as_slice() else {
                continue;
            };
            let same_cell = *s_inv
                && store.base == load.base
                && store.offset == load.offset
                && store.width == load.width;
            if !same_cell || !every_iteration(store.block) || !every_iteration(load.block) {
                continue;
            }

            // Iteration order: does the load read the previous
            // iteration's store (crosses the back edge)?
            let loop_carried = if load.block == store.block {
                load.instr < store.instr
            } else {
                dom.dominates(load.block, store.block)
            };
            if loop_carried {
                diags.push(Diagnostic::new(
                    LintCode::LoopCarriedStoreToLoad,
                    load.pc,
                    format!(
                        "load observes the previous iteration's store at {:#x} (cell carried around loop at {header_pc:#x})",
                        store.pc
                    ),
                ));
            }

            // The stored value: affine or invariant by SCEV, or a
            // memory induction (cell = cell + c through this very load).
            let stored_value = ssa.value_for_use(store.instr, 1);
            let load_def = ssa.def_of(load.instr);
            let class = match stored_value.map(|v| scev.evolution(v)) {
                Some(Evolution::Affine { stride }) => {
                    Some(LoadPredictability::AffineStride(stride))
                }
                Some(e) if e.is_invariant() => Some(LoadPredictability::LoopInvariant),
                Some(_) => {
                    // Memory induction: stored = loaded-from-this-cell + c.
                    match (stored_value, load_def) {
                        (Some(sv), Some(ld)) => scev
                            .const_offset_from(sv, ld)
                            .filter(|&c| c != 0)
                            .map(LoadPredictability::AffineStride),
                        _ => None,
                    }
                }
                None => None,
            };
            match class {
                Some(LoadPredictability::AffineStride(k)) => {
                    class_of.insert(load.instr, LoadPredictability::AffineStride(k));
                    diags.push(Diagnostic::new(
                        LintCode::StridePredictableLoad,
                        load.pc,
                        format!(
                            "load value strides by {k} per iteration of the loop at {header_pc:#x}"
                        ),
                    ));
                }
                Some(c) => {
                    class_of.insert(load.instr, c);
                }
                None if !loop_carried => {
                    // Same-iteration dominating store with an untracked
                    // value: classic store-to-load forwarding.
                    class_of.insert(load.instr, LoadPredictability::StoreToLoadForwardable);
                }
                None => {}
            }
        }
    }

    // --- Assemble the per-load table in text order. ---
    let mut loads_out = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !alias.block_reached(b) {
            continue;
        }
        for (i, instr) in text.iter().enumerate().take(block.end).skip(block.start) {
            if !instr.is_load() {
                continue;
            }
            let pc = cfg.pc_of(i);
            let class = if must_constant.contains(&pc) {
                LoadPredictability::MustConstant
            } else {
                class_of
                    .get(&i)
                    .copied()
                    .unwrap_or(LoadPredictability::Unknown)
            };
            loads_out.push(VfLoad { pc, class });
        }
    }

    sort_and_dedupe(&mut diags);
    ValueFlowReport {
        loads: loads_out,
        diagnostics: diags,
    }
}

/// `LVP014`: loads the static pass left *unknown* that a trained LCT
/// nevertheless classifies predictable — a static under-approximation
/// report. `predictable_pcs` is the set of load pcs the dynamic LCT
/// (trained on a real trace) holds in a predict-worthy state. Only
/// trace-bearing paths call this; the static baseline never contains
/// `LVP014`.
pub fn lvp014_diagnostics(
    report: &ValueFlowReport,
    predictable_pcs: &BTreeSet<u64>,
) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = report
        .loads
        .iter()
        .filter(|l| l.class == LoadPredictability::Unknown && predictable_pcs.contains(&l.pc))
        .map(|l| {
            Diagnostic::new(
                LintCode::StaticUnderApprox,
                l.pc,
                "statically unpredictable load, but the dynamic LCT learned it (static under-approximation)"
                    .to_string(),
            )
        })
        .collect();
    sort_and_dedupe(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};

    fn report(profile: AsmProfile, src: &str) -> ValueFlowReport {
        let p = Assembler::new(profile).assemble(src).unwrap();
        analyze_value_flow(&p)
    }

    fn codes(r: &ValueFlowReport) -> Vec<LintCode> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    /// A loop storing `g = g + 5` each iteration and reloading it: the
    /// memory induction pattern. The load observes the previous
    /// iteration's store, so both LVP012 and LVP016 apply.
    const MEM_INDUCTION: &str = ".data\ng: .dword 0\n.text\nmain:\n la a0, g\n li a1, 10\n \
        li a2, 0\nloop:\n ld a3, 0(a0)\n addi a3, a3, 5\n sd a3, 0(a0)\n addi a2, a2, 1\n \
        bne a2, a1, loop\n out a3\n halt\n";

    #[test]
    fn lvp012_stride_predictable_load_fires_and_twin_is_silent() {
        let fire = report(AsmProfile::Gp, MEM_INDUCTION);
        assert!(
            codes(&fire).contains(&LintCode::StridePredictableLoad),
            "{fire:?}"
        );
        let claims = fire.affine_claims();
        assert_eq!(claims.len(), 1, "{fire:?}");
        assert_eq!(claims[0].1, 5, "derived stride must be 5: {fire:?}");
        // Twin: the stored value is freshly computed from an untracked
        // source (itself shifted), not an affine recurrence.
        let twin = report(
            AsmProfile::Gp,
            ".data\ng: .dword 1\n.text\nmain:\n la a0, g\n li a1, 10\n li a2, 0\nloop:\n \
             ld a3, 0(a0)\n slli a3, a3, 1\n sd a3, 0(a0)\n addi a2, a2, 1\n \
             bne a2, a1, loop\n out a3\n halt\n",
        );
        assert!(
            !codes(&twin).contains(&LintCode::StridePredictableLoad),
            "{twin:?}"
        );
    }

    #[test]
    fn lvp012_register_affine_store_value() {
        // The induction variable itself is stored each iteration; the
        // reload of the cell is stride-predictable with the register
        // stride.
        let r = report(
            AsmProfile::Gp,
            ".data\ng: .dword 0\n.text\nmain:\n la a0, g\n li a1, 40\n li a2, 0\nloop:\n \
             sd a2, 0(a0)\n ld a3, 0(a0)\n addi a2, a2, 4\n bne a2, a1, loop\n out a3\n halt\n",
        );
        assert!(
            codes(&r).contains(&LintCode::StridePredictableLoad),
            "{r:?}"
        );
        assert_eq!(r.affine_claims().first().map(|&(_, k)| k), Some(4), "{r:?}");
    }

    #[test]
    fn lvp013_loop_invariant_load_fires_and_twin_is_silent() {
        // The loop reloads a global nothing in the loop writes.
        let fire = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\n.text\nmain:\n la a0, g\n li a1, 10\n li a2, 0\n \
             li a4, 1\n sd a4, 0(a0)\nloop:\n ld a3, 0(a0)\n addi a2, a2, 1\n \
             bne a2, a1, loop\n out a3\n halt\n",
        );
        assert!(
            codes(&fire).contains(&LintCode::LoopInvariantLoad),
            "{fire:?}"
        );
        assert_eq!(fire.count(LoadPredictability::LoopInvariant), 1, "{fire:?}");
        // Twin: a store in the loop body hits the same cell with an
        // untracked value — no longer invariant.
        let twin = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\n.text\nmain:\n la a0, g\n li a1, 10\n li a2, 0\n \
             li a4, 1\n sd a4, 0(a0)\nloop:\n ld a3, 0(a0)\n slli a5, a3, 1\n sd a5, 0(a0)\n \
             addi a2, a2, 1\n bne a2, a1, loop\n out a3\n halt\n",
        );
        assert!(
            !codes(&twin).contains(&LintCode::LoopInvariantLoad),
            "{twin:?}"
        );
    }

    #[test]
    fn lvp013_disjoint_store_does_not_kill_the_cell() {
        // The loop stores to `h` but loads `g`: different cells under
        // the same `la`-computed exact addresses.
        let r = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\nh: .dword 0\n.text\nmain:\n la a0, g\n la a4, h\n li a1, 10\n \
             li a2, 0\nloop:\n ld a3, 0(a0)\n sd a2, 0(a4)\n addi a2, a2, 1\n \
             bne a2, a1, loop\n out a3\n halt\n",
        );
        assert!(codes(&r).contains(&LintCode::LoopInvariantLoad), "{r:?}");
    }

    #[test]
    fn lvp015_may_uninit_fires_and_twin_is_silent() {
        // a0 is written on one side of the diamond only.
        let fire = report(
            AsmProfile::Gp,
            "main:\n li t0, 1\n beq t0, zero, join\n li a0, 1\njoin:\n out a0\n halt\n",
        );
        assert!(
            codes(&fire).contains(&LintCode::SsaInconsistency),
            "{fire:?}"
        );
        // Twin: both sides write a0.
        let twin = report(
            AsmProfile::Gp,
            "main:\n li t0, 1\n beq t0, zero, other\n li a0, 1\n j join\nother:\n li a0, 2\n\
             join:\n out a0\n halt\n",
        );
        assert!(
            !codes(&twin).contains(&LintCode::SsaInconsistency),
            "{twin:?}"
        );
    }

    #[test]
    fn lvp015_skips_every_path_uninit_reads() {
        // No definition at all: LVP001 territory, not LVP015.
        let r = report(AsmProfile::Gp, "main:\n add a1, a0, a0\n out a1\n halt\n");
        assert!(!codes(&r).contains(&LintCode::SsaInconsistency), "{r:?}");
    }

    #[test]
    fn lvp016_loop_carried_pair_fires_and_twin_is_silent() {
        // In MEM_INDUCTION the load precedes the store: the value
        // crosses the back edge.
        let fire = report(AsmProfile::Gp, MEM_INDUCTION);
        assert!(
            codes(&fire).contains(&LintCode::LoopCarriedStoreToLoad),
            "{fire:?}"
        );
        // Twin: store precedes the load — same-iteration forwarding,
        // not loop-carried.
        let twin = report(
            AsmProfile::Gp,
            ".data\ng: .dword 0\n.text\nmain:\n la a0, g\n li a1, 10\n li a2, 0\nloop:\n \
             sd a2, 0(a0)\n ld a3, 0(a0)\n addi a2, a2, 1\n bne a2, a1, loop\n out a3\n halt\n",
        );
        assert!(
            !codes(&twin).contains(&LintCode::LoopCarriedStoreToLoad),
            "{twin:?}"
        );
    }

    #[test]
    fn store_to_load_forwardable_class_for_untracked_value() {
        // A dominating same-cell store of an untracked (shifted) value:
        // the load is forwardable, not unknown.
        let r = report(
            AsmProfile::Gp,
            ".data\ng: .dword 1\n.text\nmain:\n la a0, g\n li a1, 10\n li a2, 1\n li a4, 0\n\
             loop:\n slli a2, a2, 1\n sd a2, 0(a0)\n ld a3, 0(a0)\n addi a4, a4, 1\n \
             bne a4, a1, loop\n out a3\n halt\n",
        );
        assert_eq!(
            r.count(LoadPredictability::StoreToLoadForwardable),
            1,
            "{r:?}"
        );
    }

    #[test]
    fn must_constant_takes_precedence() {
        let r = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\n.text\nmain:\n la a0, g\n ld a1, 0(a0)\n out a1\n halt\n",
        );
        assert_eq!(r.count(LoadPredictability::MustConstant), 1, "{r:?}");
    }

    #[test]
    fn loop_with_call_is_left_unknown() {
        // A call in the loop body may write anything: the cell is not
        // trackable, so no LVP013 despite no visible store.
        let r = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\n.text\nmain:\n la s1, g\n li s2, 10\n li s3, 0\nloop:\n \
             ld a3, 0(s1)\n jal ra, f\n addi s3, s3, 1\n bne s3, s2, loop\n out a3\n halt\n\
             f:\n jalr zero, ra, 0\n",
        );
        assert!(!codes(&r).contains(&LintCode::LoopInvariantLoad), "{r:?}");
    }

    #[test]
    fn lvp014_reports_only_dynamic_overrides() {
        let r = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\n.text\nmain:\n la a0, g\n ld a1, 0(a0)\n out a1\n halt\n",
        );
        // The only load is must-constant: even if the LCT likes it,
        // there is nothing unknown to report.
        let all_pcs: BTreeSet<u64> = r.loads.iter().map(|l| l.pc).collect();
        assert!(lvp014_diagnostics(&r, &all_pcs).is_empty());
        // Force an unknown load and mark it LCT-predictable.
        let r2 = report(
            AsmProfile::Gp,
            ".data\ng: .dword 7\n.text\nmain:\n la a0, g\n li a2, 9\n sd a2, 0(a0)\n \
             j next\nnext:\n ld a1, 0(a0)\n out a1\n halt\n",
        );
        let unknown_pcs: BTreeSet<u64> = r2
            .loads
            .iter()
            .filter(|l| l.class == LoadPredictability::Unknown)
            .map(|l| l.pc)
            .collect();
        assert!(!unknown_pcs.is_empty(), "{r2:?}");
        let d = lvp014_diagnostics(&r2, &unknown_pcs);
        assert_eq!(d.len(), unknown_pcs.len());
        assert!(d.iter().all(|d| d.code == LintCode::StaticUnderApprox));
    }

    #[test]
    fn reports_are_deterministic() {
        let a = report(AsmProfile::Gp, MEM_INDUCTION);
        let b = report(AsmProfile::Gp, MEM_INDUCTION);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.diagnostics, b.diagnostics);
        let mut sorted = a.diagnostics.clone();
        sort_and_dedupe(&mut sorted);
        assert_eq!(a.diagnostics, sorted);
    }
}
