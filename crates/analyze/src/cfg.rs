//! Control-flow graph construction over an assembled [`Program`].
//!
//! Instructions are identified by their index into [`Program::text`]
//! (instruction `i` lives at `TEXT_BASE + 4*i`). Basic blocks are maximal
//! straight-line index ranges; edges follow [`Instr::control_flow`].
//!
//! Indirect jumps (`jalr`) are handled conservatively: since the target
//! register value is unknown statically, a `jalr` is given edges to every
//! block that could plausibly be indirectly entered — blocks starting at a
//! text-segment symbol (call targets taken with `la`/`jalr`) and blocks
//! starting at a *return site* (the instruction after any linking
//! `jal`/`jalr`). A `jalr` may also leave the program entirely (the
//! machine's exit address), so it never forces its textual successor to be
//! reachable by itself.

use lvp_isa::{CtrlFlow, Instr, Program, INSTR_BYTES};

/// A basic block: the half-open instruction index range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// A direct branch or jump whose target falls outside the text segment
/// (or is misaligned); recorded during CFG construction for the `LVP004`
/// lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadBranch {
    /// Instruction index of the branch.
    pub instr: usize,
    /// The out-of-range target address.
    pub target: u64,
}

/// The control-flow graph of a program's text segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    entry_block: usize,
    block_of_instr: Vec<usize>,
    bad_branches: Vec<BadBranch>,
    text_base: u64,
}

impl Cfg {
    /// Builds the CFG of `program`'s text segment.
    ///
    /// Programs with an empty text segment yield a CFG with no blocks.
    pub fn build(program: &Program) -> Cfg {
        let text = program.text();
        let n = text.len();
        let text_base = program.layout().text_base();
        let mut cfg = Cfg {
            blocks: Vec::new(),
            entry_block: 0,
            block_of_instr: vec![0; n],
            bad_branches: Vec::new(),
            text_base,
        };
        if n == 0 {
            return cfg;
        }

        // Resolve a branch displacement to an instruction index, recording
        // out-of-text targets for LVP004.
        let target_of = |i: usize, offset: i32, bad: &mut Vec<BadBranch>| -> Option<usize> {
            let pc = text_base + i as u64 * INSTR_BYTES;
            let target = pc.wrapping_add_signed(offset as i64);
            let in_text = target >= text_base
                && target < text_base + n as u64 * INSTR_BYTES
                && target.is_multiple_of(INSTR_BYTES);
            if in_text {
                Some(((target - text_base) / INSTR_BYTES) as usize)
            } else {
                bad.push(BadBranch { instr: i, target });
                None
            }
        };

        // Leaders: entry, direct targets, instructions following any
        // terminator, text symbols and return sites (potential indirect
        // targets).
        let mut leader = vec![false; n];
        let entry_idx = Self::index_of_pc_raw(text_base, n, program.entry()).unwrap_or(0);
        leader[entry_idx] = true;
        leader[0] = true;
        for &addr in program.symbols().values() {
            if let Some(i) = Self::index_of_pc_raw(text_base, n, addr) {
                leader[i] = true;
            }
        }
        let mut scratch_bad = Vec::new();
        for (i, instr) in text.iter().enumerate() {
            match instr.control_flow() {
                CtrlFlow::Fall => {}
                CtrlFlow::CondBranch { offset } | CtrlFlow::Jump { offset } => {
                    if let Some(t) = target_of(i, offset, &mut scratch_bad) {
                        leader[t] = true;
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                CtrlFlow::IndirectJump { .. } | CtrlFlow::Halt => {
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
            }
        }

        // Carve blocks.
        for (i, &is_leader) in leader.iter().enumerate() {
            if is_leader {
                cfg.blocks.push(BasicBlock {
                    start: i,
                    end: n, // fixed up below
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            }
            cfg.block_of_instr[i] = cfg.blocks.len() - 1;
        }
        for b in 0..cfg.blocks.len() {
            if b + 1 < cfg.blocks.len() {
                cfg.blocks[b].end = cfg.blocks[b + 1].start;
            }
        }
        cfg.entry_block = cfg.block_of_instr[entry_idx];

        // The conservative indirect-target set: text-symbol blocks plus
        // return sites (instruction after a linking jal/jalr).
        let mut indirect_targets: Vec<usize> = Vec::new();
        for &addr in program.symbols().values() {
            if let Some(i) = Self::index_of_pc_raw(text_base, n, addr) {
                indirect_targets.push(cfg.block_of_instr[i]);
            }
        }
        for (i, instr) in text.iter().enumerate() {
            let links = match *instr {
                Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } => !rd.is_zero(),
                _ => false,
            };
            if links && i + 1 < n {
                indirect_targets.push(cfg.block_of_instr[i + 1]);
            }
        }
        indirect_targets.sort_unstable();
        indirect_targets.dedup();

        // Edges, from each block's final instruction.
        for b in 0..cfg.blocks.len() {
            let last = cfg.blocks[b].end - 1;
            let mut succs: Vec<usize> = Vec::new();
            match text[last].control_flow() {
                CtrlFlow::Fall => {
                    if last + 1 < n {
                        succs.push(cfg.block_of_instr[last + 1]);
                    }
                }
                CtrlFlow::CondBranch { offset } => {
                    if let Some(t) = target_of(last, offset, &mut cfg.bad_branches) {
                        succs.push(cfg.block_of_instr[t]);
                    }
                    if last + 1 < n {
                        succs.push(cfg.block_of_instr[last + 1]);
                    }
                }
                CtrlFlow::Jump { offset } => {
                    if let Some(t) = target_of(last, offset, &mut cfg.bad_branches) {
                        succs.push(cfg.block_of_instr[t]);
                    }
                }
                CtrlFlow::IndirectJump { .. } => {
                    succs.extend_from_slice(&indirect_targets);
                }
                CtrlFlow::Halt => {}
            }
            succs.sort_unstable();
            succs.dedup();
            cfg.blocks[b].succs = succs;
        }
        for b in 0..cfg.blocks.len() {
            for s in cfg.blocks[b].succs.clone() {
                cfg.blocks[s].preds.push(b);
            }
        }
        cfg
    }

    fn index_of_pc_raw(text_base: u64, n: usize, pc: u64) -> Option<usize> {
        if pc < text_base || !pc.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let i = ((pc - text_base) / INSTR_BYTES) as usize;
        (i < n).then_some(i)
    }

    /// The basic blocks, in text order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Block id of the entry point.
    pub fn entry_block(&self) -> usize {
        self.entry_block
    }

    /// Block id containing instruction index `i`.
    pub fn block_of(&self, i: usize) -> usize {
        self.block_of_instr[i]
    }

    /// Direct branches whose target is outside the text segment.
    pub fn bad_branches(&self) -> &[BadBranch] {
        &self.bad_branches
    }

    /// Address of instruction index `i`.
    pub fn pc_of(&self, i: usize) -> u64 {
        self.text_base + i as u64 * INSTR_BYTES
    }

    /// Per-block reachability from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![self.entry_block];
        seen[self.entry_block] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};

    fn assemble(src: &str) -> Program {
        Assembler::new(AsmProfile::Gp).assemble(src).unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = assemble("main:\n li a0, 1\n li a1, 2\n add a0, a0, a1\n halt\n");
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert!(cfg.bad_branches().is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_adds_edges() {
        let p = assemble("main:\n li a0, 3\nloop:\n addi a0, a0, -1\n bne a0, zero, loop\n halt\n");
        let cfg = Cfg::build(&p);
        // Blocks: [li], [addi; bne], [halt].
        assert_eq!(cfg.blocks().len(), 3);
        let loop_block = cfg
            .blocks()
            .iter()
            .position(|b| cfg.pc_of(b.start) == p.symbol("loop").unwrap())
            .unwrap();
        let succs = &cfg.blocks()[loop_block].succs;
        assert!(succs.contains(&loop_block), "back edge to itself");
        assert_eq!(succs.len(), 2);
    }

    #[test]
    fn jump_has_single_successor() {
        let p = assemble("main:\n j end\n li a0, 1\nend:\n halt\n");
        let cfg = Cfg::build(&p);
        let entry = &cfg.blocks()[cfg.entry_block()];
        assert_eq!(entry.succs.len(), 1);
        // The `li` block is not the jump's successor.
        let reach = cfg.reachable();
        assert!(
            reach.iter().filter(|&&r| !r).count() >= 1,
            "li block unreachable"
        );
    }

    #[test]
    fn indirect_jump_targets_symbols_and_return_sites() {
        let p = assemble("main:\n jal ra, f\n halt\nf:\n jalr zero, ra, 0\n");
        let cfg = Cfg::build(&p);
        let reach = cfg.reachable();
        // Everything is reachable: main, the return site (halt), and f.
        assert!(reach.iter().all(|&r| r));
        // The return block's successors include the return site, not just
        // text symbols.
        let f_block = cfg
            .block_of(((p.symbol("f").unwrap() - p.layout().text_base()) / INSTR_BYTES) as usize);
        let halt_idx = 1; // instruction after the jal
        assert!(cfg.blocks()[f_block]
            .succs
            .contains(&cfg.block_of(halt_idx)));
    }
}
