//! Classic iterative dataflow passes over the [`Cfg`]: reaching
//! definitions (forward, union meet) and register liveness (backward,
//! union meet), over the 64 combined GPR+FPR slots ([`RegId::flat_index`]).

use crate::cfg::Cfg;
use lvp_isa::{Program, RegId};

/// Number of dataflow register slots: 32 integer + 32 floating-point.
pub const NUM_REGS: usize = 64;

/// A growable bitset used for reaching-definition sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over a universe of `n` bits.
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether bit `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let before = *w;
            *w |= o;
            changed |= *w != before;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Iterates over the set bits.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// One definition site in the reaching-definitions universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// The defined register slot ([`RegId::flat_index`]).
    pub reg: usize,
    /// The defining instruction index, or `None` for the synthetic
    /// entry definition modelling the register's initial (possibly
    /// uninitialized) machine state.
    pub instr: Option<usize>,
}

/// Reaching definitions: for every instruction, which definition sites of
/// each register may reach it.
///
/// The universe has one synthetic definition per register slot (modelling
/// the register file state at program entry) plus one definition per
/// register-writing instruction. A register read is *provably
/// uninitialized* when only its synthetic definition reaches the reader —
/// see [`ReachingDefs::only_entry_def_reaches`].
#[derive(Debug)]
pub struct ReachingDefs {
    /// All definition sites; indices into this vec are the bitset universe.
    pub sites: Vec<DefSite>,
    /// For each instruction that defines a register, its site index.
    site_of_instr: Vec<Option<usize>>,
    /// Per-block IN sets.
    pub block_in: Vec<BitSet>,
}

impl ReachingDefs {
    /// Runs the forward reaching-definitions analysis.
    pub fn compute(program: &Program, cfg: &Cfg) -> ReachingDefs {
        let text = program.text();
        let n = text.len();

        // Universe: synthetic entry defs (site i = register slot i for
        // i < NUM_REGS), then instruction defs in text order.
        let mut sites: Vec<DefSite> = (0..NUM_REGS)
            .map(|r| DefSite {
                reg: r,
                instr: None,
            })
            .collect();
        let mut site_of_instr = vec![None; n];
        for (i, instr) in text.iter().enumerate() {
            if let Some(d) = instr.defs() {
                site_of_instr[i] = Some(sites.len());
                sites.push(DefSite {
                    reg: d.flat_index(),
                    instr: Some(i),
                });
            }
        }
        let universe = sites.len();

        // Per-register kill masks: all sites defining that register.
        let mut defs_of_reg: Vec<BitSet> = (0..NUM_REGS).map(|_| BitSet::new(universe)).collect();
        for (s, site) in sites.iter().enumerate() {
            defs_of_reg[site.reg].insert(s);
        }

        // Per-block GEN (downward-exposed defs) and KILL sets.
        let nb = cfg.blocks().len();
        let mut gen: Vec<BitSet> = Vec::with_capacity(nb);
        let mut kill: Vec<BitSet> = Vec::with_capacity(nb);
        for block in cfg.blocks() {
            let mut g = BitSet::new(universe);
            let mut k = BitSet::new(universe);
            for site in &site_of_instr[block.start..block.end] {
                if let Some(s) = *site {
                    let reg = sites[s].reg;
                    g.subtract(&defs_of_reg[reg]);
                    k.union_with(&defs_of_reg[reg]);
                    g.insert(s);
                }
            }
            gen.push(g);
            kill.push(k);
        }

        // Iterate to fixpoint: IN[b] = ∪ OUT[p]; OUT[b] = GEN ∪ (IN − KILL).
        // The entry block additionally receives every synthetic def.
        let mut block_in: Vec<BitSet> = (0..nb).map(|_| BitSet::new(universe)).collect();
        let mut block_out: Vec<BitSet> = (0..nb).map(|_| BitSet::new(universe)).collect();
        if nb > 0 {
            for r in 0..NUM_REGS {
                block_in[cfg.entry_block()].insert(r);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut inb = block_in[b].clone();
                for &p in &cfg.blocks()[b].preds {
                    inb.union_with(&block_out[p]);
                }
                let mut outb = inb.clone();
                outb.subtract(&kill[b]);
                outb.union_with(&gen[b]);
                changed |= block_in[b] != inb || block_out[b] != outb;
                block_in[b] = inb;
                block_out[b] = outb;
            }
        }

        ReachingDefs {
            sites,
            site_of_instr,
            block_in,
        }
    }

    /// Whether only the synthetic entry definition of `reg` reaches the
    /// use at instruction `at` — i.e. no real write to `reg` occurs on
    /// *any* path from the entry point to `at`.
    pub fn only_entry_def_reaches(&self, cfg: &Cfg, at: usize, reg: RegId) -> bool {
        let slot = reg.flat_index();
        let block = cfg.block_of(at);
        // Walk the block from its start to `at`, tracking the last def of
        // `slot` inside the block.
        for i in (cfg.blocks()[block].start..at).rev() {
            if let Some(s) = self.site_of_instr[i] {
                if self.sites[s].reg == slot {
                    return false; // an in-block def reaches first
                }
            }
        }
        // No in-block def: consult the block's IN set.
        self.block_in[block]
            .iter()
            .filter(|&s| self.sites[s].reg == slot)
            .all(|s| self.sites[s].instr.is_none())
    }
}

/// Backward register liveness per block, over the 64 register slots.
///
/// Register slots fit one machine word, so sets are plain `u64` masks.
#[derive(Debug)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<u64>,
    /// Registers live on exit from each block.
    pub live_out: Vec<u64>,
}

impl Liveness {
    /// Runs the backward liveness analysis.
    pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
        let text = program.text();
        let nb = cfg.blocks().len();

        // Per-block use (upward-exposed reads) and def masks.
        let mut use_mask = vec![0u64; nb];
        let mut def_mask = vec![0u64; nb];
        for (b, block) in cfg.blocks().iter().enumerate() {
            for i in (block.start..block.end).rev() {
                let instr = &text[i];
                if let Some(d) = instr.defs() {
                    let bit = 1u64 << d.flat_index();
                    def_mask[b] |= bit;
                    use_mask[b] &= !bit;
                }
                for u in instr.uses() {
                    use_mask[b] |= 1u64 << u.flat_index();
                }
            }
        }

        let mut live_in = vec![0u64; nb];
        let mut live_out = vec![0u64; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut out = 0u64;
                for &s in &cfg.blocks()[b].succs {
                    out |= live_in[s];
                }
                let inb = use_mask[b] | (out & !def_mask[b]);
                changed |= out != live_out[b] || inb != live_in[b];
                live_out[b] = out;
                live_in[b] = inb;
            }
        }
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler, Reg};

    fn build(src: &str) -> (Program, Cfg) {
        let p = Assembler::new(AsmProfile::Gp).assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        (p, cfg)
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(65);
        s.insert(129);
        assert!(s.contains(65) && !s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 65, 129]);
        let mut t = BitSet::new(130);
        t.insert(64);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s), "second union is a no-op");
        t.subtract(&s);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    fn entry_def_reaches_until_written() {
        let (p, cfg) = build("main:\n add a1, a0, a0\n li a0, 1\n add a2, a0, a0\n halt\n");
        let rd = ReachingDefs::compute(&p, &cfg);
        let a0 = RegId::Int(Reg::A0);
        // First read of a0: only the synthetic entry def reaches.
        assert!(rd.only_entry_def_reaches(&cfg, 0, a0));
        // After `li a0, 1`, the real def reaches instead.
        assert!(!rd.only_entry_def_reaches(&cfg, 2, a0));
    }

    #[test]
    fn join_point_merges_defs() {
        // a0 is written on only one side of the diamond, so at the join
        // both the entry def and the real def reach: not provably uninit.
        let (p, cfg) =
            build("main:\n beq t0, zero, skip\n li a0, 1\nskip:\n add a1, a0, a0\n halt\n");
        let rd = ReachingDefs::compute(&p, &cfg);
        let join = 2; // the `add`
        assert!(!rd.only_entry_def_reaches(&cfg, join, RegId::Int(Reg::A0)));
    }

    #[test]
    fn liveness_flows_backward_through_loop() {
        let (p, cfg) =
            build("main:\n li a0, 3\nloop:\n addi a0, a0, -1\n bne a0, zero, loop\n halt\n");
        let lv = Liveness::compute(&p, &cfg);
        let a0 = 1u64 << RegId::Int(Reg::A0).flat_index();
        // a0 is live out of the entry block (used by the loop).
        assert!(lv.live_out[cfg.entry_block()] & a0 != 0);
        // a0 is live into the loop block from its own back edge.
        let loop_b = cfg.block_of(1);
        assert!(lv.live_in[loop_b] & a0 != 0);
    }
}
