//! Diagnostics emitted by the verifier, with stable lint codes.

use std::fmt;

/// A stable lint code. The numeric codes are part of the crate's public
/// interface (tests and downstream tooling match on them); see the crate
/// docs for the full table.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// `LVP001`: read of a register that is uninitialized on every path
    /// from the entry point.
    UninitRead,
    /// `LVP002`: basic block unreachable from the entry point.
    UnreachableBlock,
    /// `LVP003`: register store whose value can never be observed.
    DeadStore,
    /// `LVP004`: branch or jump target outside the text segment (or
    /// misaligned).
    BranchOutOfText,
    /// `LVP005`: statically resolvable memory operand that is misaligned
    /// or outside the data segment.
    BadMemOperand,
    /// `LVP006`: write to the hardwired zero register (always discarded).
    WriteToZero,
    /// `LVP007`: store whose address may fall into the compiler-owned
    /// constant-pool region.
    StoreToPool,
    /// `LVP008`: load from initialized memory that no store in the program
    /// may ever write (a must-constant load outside the constant pool).
    LoadNeverWritten,
    /// `LVP009`: a stack address stored to memory outside the stack region
    /// (the frame pointer escapes its frame).
    StackEscape,
    /// `LVP010`: a load the provenance analysis proves constant but the
    /// simpler syntactic classifier does not (misclassified-constant
    /// candidate — the LCT would have to learn what is statically known).
    MisclassifiedConstant,
    /// `LVP011`: a load whose address exactly matches an earlier store in
    /// the same block (store-to-load forwarding candidate).
    StoreToLoadForward,
    /// `LVP012`: a load the value-flow analysis proves stride-predictable
    /// (its loaded value follows an affine recurrence `base + i*stride`
    /// around a loop).
    StridePredictableLoad,
    /// `LVP013`: a loop-invariant load left inside the loop (same cell,
    /// no store in the loop): hoisting or a last-value predictor catches
    /// it trivially.
    LoopInvariantLoad,
    /// `LVP014`: a load the static classifier calls unpredictable that
    /// the dynamic LCT nevertheless classifies predictable — a static
    /// under-approximation report, emitted only when a trace is
    /// available.
    StaticUnderApprox,
    /// `LVP015`: SSA/def-use inconsistency found by the internal SSA
    /// verifier — in practice a register read that is uninitialized on
    /// *some* (but not every) path from entry, the may-uninit complement
    /// of `LVP001`.
    SsaInconsistency,
    /// `LVP016`: a store-to-load pair on the same memory cell whose value
    /// travels around a loop back edge (the load observes the previous
    /// iteration's store).
    LoopCarriedStoreToLoad,
}

impl LintCode {
    /// The stable `LVPnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UninitRead => "LVP001",
            LintCode::UnreachableBlock => "LVP002",
            LintCode::DeadStore => "LVP003",
            LintCode::BranchOutOfText => "LVP004",
            LintCode::BadMemOperand => "LVP005",
            LintCode::WriteToZero => "LVP006",
            LintCode::StoreToPool => "LVP007",
            LintCode::LoadNeverWritten => "LVP008",
            LintCode::StackEscape => "LVP009",
            LintCode::MisclassifiedConstant => "LVP010",
            LintCode::StoreToLoadForward => "LVP011",
            LintCode::StridePredictableLoad => "LVP012",
            LintCode::LoopInvariantLoad => "LVP013",
            LintCode::StaticUnderApprox => "LVP014",
            LintCode::SsaInconsistency => "LVP015",
            LintCode::LoopCarriedStoreToLoad => "LVP016",
        }
    }

    /// A short kebab-case name for the lint.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UninitRead => "uninit-read",
            LintCode::UnreachableBlock => "unreachable-block",
            LintCode::DeadStore => "dead-store",
            LintCode::BranchOutOfText => "branch-out-of-text",
            LintCode::BadMemOperand => "bad-mem-operand",
            LintCode::WriteToZero => "write-to-zero",
            LintCode::StoreToPool => "store-to-pool",
            LintCode::LoadNeverWritten => "load-never-written",
            LintCode::StackEscape => "stack-escape",
            LintCode::MisclassifiedConstant => "misclassified-constant",
            LintCode::StoreToLoadForward => "store-to-load-forward",
            LintCode::StridePredictableLoad => "stride-predictable-load",
            LintCode::LoopInvariantLoad => "loop-invariant-load",
            LintCode::StaticUnderApprox => "static-under-approximation",
            LintCode::SsaInconsistency => "ssa-inconsistency",
            LintCode::LoopCarriedStoreToLoad => "loop-carried-store-to-load",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_str(), self.name())
    }
}

/// One verifier finding, anchored to the pc of the offending instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Address of the offending instruction.
    pub pc: u64,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: LintCode, pc: u64, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            pc,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    /// Renders as `pc:code: message`, e.g.
    /// `0x10040: LVP001 (uninit-read): read of uninitialized register t0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}: {}", self.pc, self.code, self.message)
    }
}

/// Canonicalizes a diagnostic list: sorts by `(pc, code, message)` and
/// removes exact repeats.
///
/// Every producer of diagnostics (the verifier, the provenance pass, the
/// CLI aggregator) funnels through this, so `lvp check` output is
/// byte-stable regardless of pass ordering or thread count.
pub fn sort_and_dedupe(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| {
        (a.pc, a.code, a.message.as_str()).cmp(&(b.pc, b.code, b.message.as_str()))
    });
    diags.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(LintCode::UninitRead.as_str(), "LVP001");
        assert_eq!(LintCode::UnreachableBlock.as_str(), "LVP002");
        assert_eq!(LintCode::DeadStore.as_str(), "LVP003");
        assert_eq!(LintCode::BranchOutOfText.as_str(), "LVP004");
        assert_eq!(LintCode::BadMemOperand.as_str(), "LVP005");
        assert_eq!(LintCode::WriteToZero.as_str(), "LVP006");
        assert_eq!(LintCode::StoreToPool.as_str(), "LVP007");
        assert_eq!(LintCode::LoadNeverWritten.as_str(), "LVP008");
        assert_eq!(LintCode::StackEscape.as_str(), "LVP009");
        assert_eq!(LintCode::MisclassifiedConstant.as_str(), "LVP010");
        assert_eq!(LintCode::StoreToLoadForward.as_str(), "LVP011");
        assert_eq!(LintCode::StridePredictableLoad.as_str(), "LVP012");
        assert_eq!(LintCode::LoopInvariantLoad.as_str(), "LVP013");
        assert_eq!(LintCode::StaticUnderApprox.as_str(), "LVP014");
        assert_eq!(LintCode::SsaInconsistency.as_str(), "LVP015");
        assert_eq!(LintCode::LoopCarriedStoreToLoad.as_str(), "LVP016");
    }

    #[test]
    fn sort_and_dedupe_is_canonical() {
        let a = Diagnostic::new(LintCode::DeadStore, 0x10044, "z");
        let b = Diagnostic::new(LintCode::UninitRead, 0x10040, "b");
        let c = Diagnostic::new(LintCode::UninitRead, 0x10040, "a");
        let d = Diagnostic::new(LintCode::DeadStore, 0x10040, "a");
        // Two permutations with a duplicate canonicalize identically.
        let mut one = vec![a.clone(), b.clone(), c.clone(), b.clone(), d.clone()];
        let mut two = vec![b.clone(), d.clone(), a.clone(), c.clone(), b.clone()];
        sort_and_dedupe(&mut one);
        sort_and_dedupe(&mut two);
        assert_eq!(one, two);
        // Sorted by (pc, code, message), duplicates gone.
        assert_eq!(one, vec![c, b, d, a]);
    }

    #[test]
    fn display_includes_pc_and_code() {
        let d = Diagnostic::new(LintCode::UninitRead, 0x10040, "read of t0");
        let s = d.to_string();
        assert!(s.contains("0x10040"));
        assert!(s.contains("LVP001"));
        assert!(s.contains("read of t0"));
    }
}
