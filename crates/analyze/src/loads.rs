//! Static load classification and the static-vs-dynamic LCT comparator.
//!
//! The paper observes (Section 2) that much of a program's load value
//! locality is *structural*: table-of-contents / constant-pool loads and
//! register spill reloads are decided by the compiler, not the data. This
//! module derives that structure statically and joins it against what the
//! dynamic Load Classification Table learned, quantifying how much of the
//! LCT's classification was predictable from program text alone.

use crate::cfg::Cfg;
use lvp_isa::{Instr, Program, Reg, RegId};
use lvp_predictor::{Lct, LoadClass};
use lvp_trace::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Statically derived class of one load instruction.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StaticLoadClass {
    /// A pool/TOC load whose slot is provably never stored to: the loaded
    /// value is the same on every execution.
    Constant,
    /// A reload from the current stack frame (`sp`-relative): a spill
    /// reload, highly value-local per the paper.
    StackReload,
    /// A load from a statically known global address (materialized via
    /// `lui`/`addi` or a pool-indirect `la`): address-stable, value may
    /// change.
    Global,
    /// Address computed dynamically (pointer chase, indexed array, ...).
    Computed,
}

impl fmt::Display for StaticLoadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StaticLoadClass::Constant => "constant",
            StaticLoadClass::StackReload => "stack-reload",
            StaticLoadClass::Global => "global",
            StaticLoadClass::Computed => "computed",
        };
        f.write_str(s)
    }
}

/// One classified static load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticLoad {
    /// Address of the load instruction.
    pub pc: u64,
    /// The derived class.
    pub class: StaticLoadClass,
    /// The statically resolved effective address, when known.
    pub addr: Option<u64>,
}

/// Classifies every load in `program`'s text segment.
///
/// Classification is conservative and purely local:
///
/// * `gp`-relative loads are pool loads when the program never writes
///   `gp`. They are [`StaticLoadClass::Constant`] when no *statically
///   resolved* store address aliases their slot — the pool is
///   compiler-owned, so stores through computed pointers are assumed not
///   to target it (stores never legitimately write the pool; if one does,
///   the simulator's CVU invalidation catches it dynamically).
/// * `sp`-relative loads are [`StaticLoadClass::StackReload`]s.
/// * Loads whose base register was defined earlier **in the same block**
///   by `lui` or a pool-slot `ld` (the `la` expansion under both
///   profiles) are [`StaticLoadClass::Global`], with the address resolved
///   through the pool image when possible.
/// * Everything else is [`StaticLoadClass::Computed`].
pub fn classify_loads(program: &Program) -> Vec<StaticLoad> {
    let text = program.text();
    let gp_stable = !text.iter().any(|i| i.defs() == Some(RegId::Int(Reg::GP)));
    let layout = program.layout();
    let cfg = Cfg::build(program);

    // Statically resolved store addresses (zero- or gp-based), used to
    // de-certify pool slots that the program provably writes.
    let mut stored_addrs: BTreeSet<u64> = BTreeSet::new();
    for instr in text {
        if !instr.is_store() {
            continue;
        }
        if let Some(addr) = resolve_static_addr(program, instr, gp_stable) {
            stored_addrs.insert(addr);
        }
    }

    let mut out = Vec::new();
    for (i, instr) in text.iter().enumerate() {
        if !instr.is_load() {
            continue;
        }
        let pc = layout.text_base() + i as u64 * 4;
        let Some((base, offset)) = instr.mem_operand() else {
            continue;
        };

        if base == Reg::GP && gp_stable {
            let addr = program.pool_base().wrapping_add_signed(offset as i64);
            let class = if stored_addrs.contains(&addr) {
                StaticLoadClass::Global
            } else {
                StaticLoadClass::Constant
            };
            out.push(StaticLoad {
                pc,
                class,
                addr: Some(addr),
            });
            continue;
        }
        if base == Reg::SP {
            out.push(StaticLoad {
                pc,
                class: StaticLoadClass::StackReload,
                addr: None,
            });
            continue;
        }
        if base == Reg::ZERO {
            out.push(StaticLoad {
                pc,
                class: StaticLoadClass::Global,
                addr: Some(offset as i64 as u64),
            });
            continue;
        }

        // Walk backwards within the load's own basic block to find the
        // base's defining instruction; stopping at the block leader keeps
        // the scan sound across join points (a loop back edge may carry a
        // different definition).
        let block_start = cfg.blocks()[cfg.block_of(i)].start;
        let mut class = StaticLoadClass::Computed;
        let mut addr = None;
        for j in (block_start..i).rev() {
            match text[j].defs() {
                Some(RegId::Int(r)) if r == base => {
                    if let Some(a) = materialized_addr(program, text, j, block_start, gp_stable) {
                        class = StaticLoadClass::Global;
                        addr = Some(a.wrapping_add_signed(offset as i64));
                    }
                    break;
                }
                _ => {}
            }
        }
        out.push(StaticLoad { pc, class, addr });
    }
    out
}

/// Statically resolves the effective address of a memory instruction when
/// its base register is `zero` or (a stable) `gp`.
fn resolve_static_addr(program: &Program, instr: &Instr, gp_stable: bool) -> Option<u64> {
    let (base, offset) = instr.mem_operand()?;
    if base == Reg::ZERO {
        Some(offset as i64 as u64)
    } else if base == Reg::GP && gp_stable {
        Some(program.pool_base().wrapping_add_signed(offset as i64))
    } else {
        None
    }
}

/// The address value produced by the defining instruction at index `j`,
/// when it is an address-materializing idiom: `lui` (Gp-profile `la`
/// upper half — the subsequent load's offset supplies the rest) or a
/// pool-slot `ld rX, off(gp)` whose slot contents we can read from the
/// program image.
fn materialized_addr(
    program: &Program,
    text: &[Instr],
    j: usize,
    block_start: usize,
    gp_stable: bool,
) -> Option<u64> {
    match text[j] {
        Instr::Lui { imm, .. } => Some((imm as i64 as u64) << 12),
        Instr::Addi { rs1, imm, .. } => {
            // `addi rX, rY, lo` completing a lui pair: resolve rY one step.
            for k in (block_start..j).rev() {
                match text[k].defs() {
                    Some(RegId::Int(r)) if r == rs1 => {
                        return match text[k] {
                            Instr::Lui { imm: hi, .. } => {
                                Some(((hi as i64 as u64) << 12).wrapping_add_signed(imm as i64))
                            }
                            _ => None,
                        };
                    }
                    _ => {}
                }
            }
            None
        }
        Instr::Ld { base, offset, .. } if base == Reg::GP && gp_stable => {
            let slot = program.pool_base().wrapping_add_signed(offset as i64);
            let data_base = program.layout().data_base();
            let off = slot.checked_sub(data_base)? as usize;
            let bytes = program.data().get(off..off + 8)?;
            Some(u64::from_le_bytes(bytes.try_into().ok()?))
        }
        _ => None,
    }
}

/// Per-class tallies joining the static classification of one load pc
/// with the LCT's final dynamic classification and the dynamic execution
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassAgreement {
    /// Static loads in this class that dynamically executed.
    pub static_loads: usize,
    /// Of those, how many the LCT ended up classifying as constant.
    pub lct_constant: usize,
    /// Of those, how many the LCT ended up classifying as predictable
    /// (constant counts as predictable).
    pub lct_predictable: usize,
    /// Total dynamic executions of loads in this class.
    pub dynamic_count: u64,
}

/// The static-vs-dynamic comparison report for one program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LctComparison {
    /// One row per static class, in declaration order.
    pub rows: Vec<(StaticLoadClass, ClassAgreement)>,
    /// Static load pcs that never executed dynamically.
    pub never_executed: usize,
    /// Dynamic load pcs with no static classification (should be zero:
    /// every executed load has a pc in the text segment).
    pub unmatched_dynamic: usize,
}

impl LctComparison {
    /// Joins `static_loads` (from [`classify_loads`]) against the
    /// post-run state of `lct` and the dynamic load mix of `trace`.
    ///
    /// The `lct` should be in its final state after annotating `trace`
    /// (e.g. via `LvpUnit::annotate`), so that its per-pc counters
    /// reflect the whole run.
    pub fn build(static_loads: &[StaticLoad], lct: &Lct, trace: &Trace) -> LctComparison {
        let mut dyn_counts: BTreeMap<u64, u64> = BTreeMap::new();
        for e in trace.iter().filter(|e| e.is_load()) {
            *dyn_counts.entry(e.pc).or_insert(0) += 1;
        }

        let classes = [
            StaticLoadClass::Constant,
            StaticLoadClass::StackReload,
            StaticLoadClass::Global,
            StaticLoadClass::Computed,
        ];
        let mut agg: BTreeMap<StaticLoadClass, ClassAgreement> = BTreeMap::new();
        let mut never_executed = 0;
        let mut matched: BTreeSet<u64> = BTreeSet::new();
        for sl in static_loads {
            let Some(&count) = dyn_counts.get(&sl.pc) else {
                never_executed += 1;
                continue;
            };
            matched.insert(sl.pc);
            let a = agg.entry(sl.class).or_default();
            a.static_loads += 1;
            a.dynamic_count += count;
            match lct.classify(sl.pc) {
                LoadClass::Constant => {
                    a.lct_constant += 1;
                    a.lct_predictable += 1;
                }
                LoadClass::Predict => a.lct_predictable += 1,
                LoadClass::DontPredict => {}
            }
        }
        let unmatched_dynamic = dyn_counts.keys().filter(|pc| !matched.contains(pc)).count();

        LctComparison {
            rows: classes
                .into_iter()
                .map(|c| (c, agg.get(&c).copied().unwrap_or_default()))
                .collect(),
            never_executed,
            unmatched_dynamic,
        }
    }

    /// Fraction of executed statically-constant loads that the LCT also
    /// classified as constant, in `[0, 1]`; `None` when no
    /// statically-constant load executed.
    pub fn constant_agreement(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|(c, _)| *c == StaticLoadClass::Constant)
            .and_then(|(_, a)| {
                (a.static_loads > 0).then(|| a.lct_constant as f64 / a.static_loads as f64)
            })
    }
}

impl fmt::Display for LctComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>7} {:>9} {:>8} {:>10} {:>7}",
            "static class", "loads", "lct-const", "lct-pred", "dyn-count", "agree%"
        )?;
        for (class, a) in &self.rows {
            let agree = if a.static_loads > 0 {
                format!(
                    "{:.1}",
                    100.0 * a.lct_constant as f64 / a.static_loads as f64
                )
            } else {
                "-".to_string()
            };
            writeln!(
                f,
                "{:<14} {:>7} {:>9} {:>8} {:>10} {:>7}",
                class.to_string(),
                a.static_loads,
                a.lct_constant,
                a.lct_predictable,
                a.dynamic_count,
                agree
            )?;
        }
        if self.never_executed > 0 {
            writeln!(f, "({} static load(s) never executed)", self.never_executed)?;
        }
        if self.unmatched_dynamic > 0 {
            writeln!(
                f,
                "({} dynamic load pc(s) without static classification)",
                self.unmatched_dynamic
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};

    #[test]
    fn toc_profile_la_loads_are_constant() {
        let p = Assembler::new(AsmProfile::Toc)
            .assemble(
                ".data\nv: .dword 42\n.text\nmain:\n la a0, v\n ld a1, 0(a0)\n out a1\n halt\n",
            )
            .unwrap();
        let loads = classify_loads(&p);
        // `la` expands to a pool load under the Toc profile.
        assert!(
            loads.iter().any(|l| l.class == StaticLoadClass::Constant),
            "no constant pool load found: {loads:?}"
        );
        // The `ld a1, 0(a0)` resolves through the pool slot to `v`.
        let global = loads
            .iter()
            .find(|l| l.class == StaticLoadClass::Global)
            .expect("pool-indirect global load");
        assert_eq!(global.addr, p.symbol("v"));
    }

    #[test]
    fn stack_and_computed_loads_classified() {
        let p = Assembler::new(AsmProfile::Gp)
            .assemble(
                "main:\n addi sp, sp, -16\n li a0, 7\n sd a0, 0(sp)\n ld a1, 0(sp)\n \
                 add a2, a1, a1\n ld a3, 0(a2)\n out a3\n addi sp, sp, 16\n halt\n",
            )
            .unwrap();
        let classes: Vec<_> = classify_loads(&p).iter().map(|l| l.class).collect();
        assert!(classes.contains(&StaticLoadClass::StackReload));
        assert!(classes.contains(&StaticLoadClass::Computed));
    }

    #[test]
    fn stored_pool_slot_demotes_to_global() {
        // Under the Gp profile nothing aliases the pool; hand-write a
        // store through gp to force the demotion.
        let p = Assembler::new(AsmProfile::Toc)
            .assemble(
                ".data\nv: .dword 1\n.text\nmain:\n li a0, 9\n sd a0, 0(gp)\n \
                 ld a1, 0(gp)\n out a1\n halt\n",
            )
            .unwrap();
        let loads = classify_loads(&p);
        let gp_load = loads
            .iter()
            .find(|l| l.addr == Some(p.pool_base()))
            .unwrap();
        assert_eq!(gp_load.class, StaticLoadClass::Global);
    }
}
