//! Flow-sensitive points-to analysis over base registers.
//!
//! An abstract interpretation of the integer register file against the
//! lattice
//!
//! ```text
//!          Set(regions)          ("some address within these regions")
//!              |
//!          Exact(value)          ("exactly this 64-bit value")
//!              |
//!            Bottom              ("no value has reached here")
//! ```
//!
//! run to a fixed point over the [`Cfg`]'s blocks, joining at merge
//! points. Calls need no special casing: the CFG's conservative
//! indirect-jump edges (every `jalr` may reach every text symbol and
//! every return site) make the analysis interprocedural for free — a
//! function entered from two call sites simply joins both callers'
//! states, and `sp` degrades from two distinct [`AbsVal::Exact`] frame
//! pointers to *some stack address*, which is exactly what a frame-
//! insensitive summary should say.
//!
//! The transfer function folds the address-materialization idioms the
//! compiler emits — `lui`/`addi` pairs (Gp-profile `la`), `gp`-relative
//! arithmetic, and pool-slot `ld`s resolved through the program image
//! (Toc-profile `la`) — and conservatively sends everything else to
//! [`RegionSet::unknown`]. Pointer arithmetic (`add`/`sub` with one
//! non-exact operand) stays within the operands' region sets: an
//! indexed access to an object is assumed not to walk out of the
//! object's region (in-bounds assumption, companion to the
//! pool-ownership assumption in [`crate::regions`]).

use crate::cfg::Cfg;
use crate::regions::{RegionMap, RegionSet};
use lvp_isa::{Instr, Program, Reg};

/// Abstract value of one integer register.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// No definition has reached this register (unreached code).
    Bottom,
    /// The register provably holds exactly this value on every path.
    Exact(u64),
    /// The register holds an unknown value that, if used as an address,
    /// lies within this region set.
    Set(RegionSet),
}

impl AbsVal {
    /// The lattice join of two abstract values.
    pub fn join(self, other: AbsVal, regions: &RegionMap) -> AbsVal {
        match (self, other) {
            (AbsVal::Bottom, x) | (x, AbsVal::Bottom) => x,
            (AbsVal::Exact(a), AbsVal::Exact(b)) if a == b => AbsVal::Exact(a),
            (a, b) => AbsVal::Set(a.regions(regions).union(b.regions(regions))),
        }
    }

    /// The region set this value may point into (empty for `Bottom`).
    pub fn regions(self, regions: &RegionMap) -> RegionSet {
        match self {
            AbsVal::Bottom => RegionSet::empty(),
            AbsVal::Exact(a) => RegionSet::of(regions.classify(a)),
            AbsVal::Set(s) => s,
        }
    }
}

/// Abstract state of the 32 integer registers.
pub type RegState = [AbsVal; 32];

/// A memory operand resolved through the abstract register state.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum AddrRes {
    /// The effective address is exactly known.
    Exact(u64),
    /// The effective address lies somewhere within this region set.
    Set(RegionSet),
}

impl AddrRes {
    /// The region set the access may touch (`width` widens exact
    /// addresses that straddle a region boundary).
    pub fn regions(self, width: u8, regions: &RegionMap) -> RegionSet {
        match self {
            AddrRes::Exact(a) => regions.classify_range(a, width),
            AddrRes::Set(s) => s,
        }
    }

    /// Whether an access of `width` bytes here may overlap the byte
    /// range `[addr, addr + w)`.
    pub fn may_overlap(self, width: u8, addr: u64, w: u8, regions: &RegionMap) -> bool {
        match self {
            AddrRes::Exact(a) => {
                (a as u128) < addr as u128 + w as u128 && (addr as u128) < a as u128 + width as u128
            }
            AddrRes::Set(s) => !regions
                .classify_range(addr, w)
                .iter()
                .all(|r| !s.contains(r)),
        }
    }
}

/// The fixed-point result: one register state per basic-block entry.
#[derive(Debug, Clone)]
pub struct AliasAnalysis {
    block_in: Vec<RegState>,
}

/// Reads a register from the abstract state (`zero` is hardwired).
fn read(state: &RegState, r: Reg) -> AbsVal {
    if r == Reg::ZERO {
        AbsVal::Exact(0)
    } else {
        state[r.number() as usize]
    }
}

/// Writes a register in the abstract state (`zero` writes are dropped).
fn write(state: &mut RegState, r: Reg, v: AbsVal) {
    if r != Reg::ZERO {
        state[r.number() as usize] = v;
    }
}

/// `base + imm` in the abstract domain: exact values fold, region sets
/// are preserved (in-bounds pointer arithmetic).
fn add_imm(v: AbsVal, imm: i64) -> AbsVal {
    match v {
        AbsVal::Exact(a) => AbsVal::Exact(a.wrapping_add_signed(imm)),
        other => other,
    }
}

/// Binary add/sub in the abstract domain.
fn add_vals(a: AbsVal, b: AbsVal, sub: bool, regions: &RegionMap) -> AbsVal {
    match (a, b) {
        (AbsVal::Exact(x), AbsVal::Exact(y)) => AbsVal::Exact(if sub {
            x.wrapping_sub(y)
        } else {
            x.wrapping_add(y)
        }),
        (AbsVal::Bottom, _) | (_, AbsVal::Bottom) => AbsVal::Bottom,
        // Pointer + index (or pointer - index): the result stays within
        // the union of both operands' region sets.
        (x, y) => AbsVal::Set(x.regions(regions).union(y.regions(regions))),
    }
}

/// Reads the 8-byte pool/data slot at `addr` from the program image.
fn image_dword(program: &Program, addr: u64) -> Option<u64> {
    let off = addr.checked_sub(program.layout().data_base())? as usize;
    let bytes = program.data().get(off..off + 8)?;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

impl AliasAnalysis {
    /// Runs the analysis to a fixed point.
    ///
    /// Entry state: `sp` = stack top, `gp` = pool base (both
    /// machine-initialized), everything else unknown. Unreachable
    /// blocks keep all-`Bottom` states.
    pub fn compute(program: &Program, cfg: &Cfg, regions: &RegionMap) -> AliasAnalysis {
        let nblocks = cfg.blocks().len();
        let mut block_in = vec![[AbsVal::Bottom; 32]; nblocks];
        if nblocks == 0 {
            return AliasAnalysis { block_in };
        }

        let mut entry = [AbsVal::Set(RegionSet::unknown()); 32];
        entry[Reg::ZERO.number() as usize] = AbsVal::Exact(0);
        entry[Reg::SP.number() as usize] = AbsVal::Exact(program.layout().stack_top());
        entry[Reg::GP.number() as usize] = AbsVal::Exact(program.pool_base());
        block_in[cfg.entry_block()] = entry;

        // Chaotic iteration over a worklist. The lattice has finite
        // height per register (Bottom < Exact < growing region sets, 4
        // bits), so this terminates on any CFG, including irreducible
        // ones.
        let mut on_list = vec![false; nblocks];
        let mut worklist: Vec<usize> = vec![cfg.entry_block()];
        on_list[cfg.entry_block()] = true;
        while let Some(b) = worklist.pop() {
            on_list[b] = false;
            let mut state = block_in[b];
            for i in cfg.blocks()[b].start..cfg.blocks()[b].end {
                Self::transfer(program, regions, &program.text()[i], &mut state);
            }
            for &s in &cfg.blocks()[b].succs {
                let mut changed = false;
                for r in 0..32 {
                    let joined = block_in[s][r].join(state[r], regions);
                    if joined != block_in[s][r] {
                        block_in[s][r] = joined;
                        changed = true;
                    }
                }
                if changed && !on_list[s] {
                    on_list[s] = true;
                    worklist.push(s);
                }
            }
        }
        AliasAnalysis { block_in }
    }

    /// The abstract register state at the entry of block `b`.
    pub fn block_in(&self, b: usize) -> &RegState {
        &self.block_in[b]
    }

    /// Whether block `b` was reached by the analysis.
    pub fn block_reached(&self, b: usize) -> bool {
        self.block_in[b].iter().any(|v| *v != AbsVal::Bottom)
    }

    /// Applies one instruction's transfer function to `state`.
    pub fn transfer(program: &Program, regions: &RegionMap, instr: &Instr, state: &mut RegState) {
        let unknown = AbsVal::Set(RegionSet::unknown());
        match *instr {
            Instr::Addi { rd, rs1, imm } => {
                write(state, rd, add_imm(read(state, rs1), imm as i64));
            }
            Instr::Lui { rd, imm } => {
                write(state, rd, AbsVal::Exact((imm as i64 as u64) << 12));
            }
            Instr::Add { rd, rs1, rs2 } => {
                let v = add_vals(read(state, rs1), read(state, rs2), false, regions);
                write(state, rd, v);
            }
            Instr::Sub { rd, rs1, rs2 } => {
                let v = add_vals(read(state, rs1), read(state, rs2), true, regions);
                write(state, rd, v);
            }
            Instr::Slli { rd, rs1, shamt } => {
                let v = match read(state, rs1) {
                    AbsVal::Exact(x) => AbsVal::Exact(x << (shamt & 63)),
                    AbsVal::Bottom => AbsVal::Bottom,
                    _ => unknown,
                };
                write(state, rd, v);
            }
            // A doubleword load at an exactly-known constant-pool address
            // resolves through the program image: pool slots are never
            // legitimately written (pool-ownership assumption, validated
            // by LVP007 and the dynamic cross-check), so the image value
            // is the run-time value. This is what makes the Toc-profile
            // `la` (a pool-indirect address load) exact.
            Instr::Ld { rd, base, offset } => {
                let resolved = match add_imm(read(state, base), offset as i64) {
                    AbsVal::Exact(a)
                        if regions.classify(a) == crate::regions::Region::ConstPool
                            && regions.in_image(a, 8) =>
                    {
                        image_dword(program, a).map(AbsVal::Exact)
                    }
                    _ => None,
                };
                write(state, rd, resolved.unwrap_or(unknown));
            }
            _ => {
                // Every other instruction that defines an integer
                // register produces an unknown value.
                if let Some(lvp_isa::RegId::Int(rd)) = instr.defs() {
                    write(state, rd, unknown);
                }
            }
        }
    }

    /// Resolves a memory operand against the current abstract state,
    /// returning `None` for non-memory instructions.
    pub fn resolve(state: &RegState, instr: &Instr) -> Option<AddrRes> {
        let (base, offset) = instr.mem_operand()?;
        Some(match add_imm(read(state, base), offset as i64) {
            AbsVal::Exact(a) => AddrRes::Exact(a),
            AbsVal::Bottom => AddrRes::Set(RegionSet::empty()),
            AbsVal::Set(s) => AddrRes::Set(s),
        })
    }

    /// The abstract value a store instruction writes to memory, `None`
    /// for non-stores (FP stores write an unknown bit pattern).
    pub fn stored_value(state: &RegState, instr: &Instr) -> Option<AbsVal> {
        match *instr {
            Instr::Sb { rs2, .. }
            | Instr::Sh { rs2, .. }
            | Instr::Sw { rs2, .. }
            | Instr::Sd { rs2, .. } => Some(read(state, rs2)),
            Instr::Fsd { .. } => Some(AbsVal::Set(RegionSet::unknown())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::Region;
    use lvp_isa::{AsmProfile, Assembler};

    fn analyze(profile: AsmProfile, src: &str) -> (Program, Cfg, RegionMap, AliasAnalysis) {
        let p = Assembler::new(profile).assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let regions = RegionMap::new(&p);
        let alias = AliasAnalysis::compute(&p, &cfg, &regions);
        (p, cfg, regions, alias)
    }

    /// Walks to the state just before instruction index `i`.
    fn state_at(
        p: &Program,
        cfg: &Cfg,
        regions: &RegionMap,
        alias: &AliasAnalysis,
        i: usize,
    ) -> RegState {
        let b = cfg.block_of(i);
        let mut state = *alias.block_in(b);
        for j in cfg.blocks()[b].start..i {
            AliasAnalysis::transfer(p, regions, &p.text()[j], &mut state);
        }
        state
    }

    #[test]
    fn entry_registers_are_exact() {
        let (p, cfg, regions, alias) = analyze(AsmProfile::Gp, "main:\n sd zero, -8(sp)\n halt\n");
        let st = state_at(&p, &cfg, &regions, &alias, 0);
        assert_eq!(
            read(&st, Reg::SP),
            AbsVal::Exact(p.layout().stack_top()),
            "sp is machine-initialized"
        );
        assert_eq!(read(&st, Reg::GP), AbsVal::Exact(p.pool_base()));
        let res = AliasAnalysis::resolve(&st, &p.text()[0]).unwrap();
        assert_eq!(res, AddrRes::Exact(p.layout().stack_top() - 8));
    }

    #[test]
    fn toc_la_resolves_through_pool_image() {
        let (p, cfg, regions, alias) = analyze(
            AsmProfile::Toc,
            ".data\nv: .dword 42\n.text\nmain:\n la a0, v\n ld a1, 0(a0)\n out a1\n halt\n",
        );
        // Find the `ld a1, 0(a0)` — the second load.
        let i = p
            .text()
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.is_load())
            .nth(1)
            .unwrap()
            .0;
        let st = state_at(&p, &cfg, &regions, &alias, i);
        let res = AliasAnalysis::resolve(&st, &p.text()[i]).unwrap();
        assert_eq!(
            res,
            AddrRes::Exact(p.symbol("v").unwrap()),
            "pool-indirect la must resolve to the symbol address"
        );
    }

    #[test]
    fn join_of_two_frames_degrades_to_stack_set() {
        // `f` is called from two sites; inside `f` the frame pointer is
        // not exact but provably a stack address.
        let src = "main:\n addi sp, sp, -16\n jal ra, f\n jal ra, f\n addi sp, sp, 16\n halt\n\
                   f:\n addi sp, sp, -32\n sd a0, 0(sp)\n ld a0, 0(sp)\n addi sp, sp, 32\n jalr zero, ra, 0\n";
        let (p, cfg, regions, alias) = analyze(AsmProfile::Gp, src);
        let f_idx = ((p.symbol("f").unwrap() - p.layout().text_base()) / 4) as usize;
        // The store inside f is two instructions after its entry.
        let store_idx = f_idx + 1;
        let st = state_at(&p, &cfg, &regions, &alias, store_idx);
        let res = AliasAnalysis::resolve(&st, &p.text()[store_idx]).unwrap();
        match res {
            AddrRes::Set(s) => assert!(
                s.contains(Region::Stack) && !s.contains(Region::ConstPool),
                "frame operand must stay within non-pool regions: {s}"
            ),
            AddrRes::Exact(a) => assert_eq!(
                regions.classify(a),
                Region::Stack,
                "if exact, must be a stack address"
            ),
        }
    }

    #[test]
    fn unknown_base_excludes_pool() {
        let (p, cfg, regions, alias) = analyze(
            AsmProfile::Gp,
            "main:\n li a0, 1\n add a2, a1, a1\n sd a0, 0(a2)\n out a0\n halt\n",
        );
        let store = p.text().iter().position(|i| i.is_store()).unwrap();
        let st = state_at(&p, &cfg, &regions, &alias, store);
        let res = AliasAnalysis::resolve(&st, &p.text()[store]).unwrap();
        match res {
            AddrRes::Set(s) => assert!(!s.contains(Region::ConstPool), "{s}"),
            AddrRes::Exact(_) => panic!("computed store must not be exact"),
        }
    }

    #[test]
    fn fixed_point_terminates_on_irreducible_loop() {
        // Two blocks jumping into each other's middles, entered from both
        // sides — a classic irreducible region.
        let src = "main:\n li a0, 10\n beq a0, zero, b\na:\n addi a0, a0, -1\n bne a0, zero, b\n j out\nb:\n addi a0, a0, -2\n bne a0, zero, a\nout:\n out a0\n halt\n";
        let (p, cfg, _regions, alias) = analyze(AsmProfile::Gp, src);
        // Every reachable block got a state.
        let reach = cfg.reachable();
        for (b, r) in reach.iter().enumerate() {
            if *r && cfg.blocks()[b].start > 0 {
                assert!(
                    alias.block_reached(b),
                    "reachable block {b} has no alias state"
                );
            }
        }
        let _ = p;
    }
}
