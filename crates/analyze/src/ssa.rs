//! Pruned static single assignment over the control-flow graph, plus the
//! dominance machinery it needs.
//!
//! Two graph *views* drive two different consumers:
//!
//! * [`FlowGraph::raw`] keeps every edge the conservative [`Cfg`] has —
//!   including the all-targets indirect-`jalr` edges — so SSA value sets
//!   agree exactly with the iterative [`ReachingDefs`](crate::dataflow)
//!   analysis (a differential test holds them to that).
//! * [`FlowGraph::local`] summarizes calls away: a linking `jal`/`jalr`
//!   falls through to its return site (clobbering the caller-saved
//!   registers, per the LRISC ABI), and a non-linking `jalr` (a return)
//!   has no local successors. This is the intraprocedural view the loop
//!   and scalar-evolution analyses need — on the raw view the
//!   conservative indirect edges destroy every dominance relation, so no
//!   natural loop is ever visible.
//!
//! SSA construction is the standard pruned algorithm: φ-functions are
//! placed at iterated dominance frontiers of definition blocks, but only
//! where the register is live-in; renaming walks the dominator tree.
//! [`Ssa::verify`] re-checks the construction invariants (def dominates
//! use, one φ input per predecessor) and is surfaced as lint `LVP015`
//! alongside the may-uninit check in the value-flow pass.

use crate::cfg::Cfg;
use crate::dataflow::NUM_REGS;
use lvp_isa::{CtrlFlow, Instr, Program};
use std::collections::BTreeSet;

/// A view of the control flow: either the raw conservative [`Cfg`] edges
/// or the call-summarized intraprocedural ("local") edges. Block indices
/// are shared with the underlying [`Cfg`].
#[derive(Debug)]
pub struct FlowGraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    entry: usize,
    /// Dominator-tree roots. The raw view has one (the entry block); the
    /// local view also roots every direct call target, since summarized
    /// calls leave callee bodies with no incoming local edges.
    roots: Vec<usize>,
    /// Instruction indices treated as ABI calls (local view only): SSA
    /// renaming gives each a synthetic definition of every caller-saved
    /// register.
    calls: Vec<bool>,
}

/// Caller-saved register slots under the LRISC ABI (`ra`, `tp`,
/// `t0`–`t6`, `a0`–`a7`, and the corresponding FP temporaries): a call
/// may clobber these, so the local view treats every call as defining
/// them.
fn is_caller_saved_slot(slot: usize) -> bool {
    if slot == 0 || slot == 32 {
        return false; // integer zero register; f0 is ft0 (caller-saved)
    }
    if slot < 32 {
        lvp_isa::Reg::try_new(slot as u8).is_some_and(|r| !r.is_callee_saved())
    } else {
        lvp_isa::FReg::try_new((slot - 32) as u8).is_some_and(|r| !r.is_callee_saved())
    }
}

impl FlowGraph {
    /// The raw view: exactly the [`Cfg`]'s successor/predecessor edges.
    pub fn raw(cfg: &Cfg) -> FlowGraph {
        FlowGraph {
            succs: cfg.blocks().iter().map(|b| b.succs.clone()).collect(),
            preds: cfg.blocks().iter().map(|b| b.preds.clone()).collect(),
            entry: cfg.entry_block(),
            roots: vec![cfg.entry_block()],
            calls: Vec::new(),
        }
    }

    /// The call-summarized local view: linking jumps fall through to
    /// their return site, returns have no successors, and every other
    /// terminator keeps its direct edges.
    pub fn local(program: &Program, cfg: &Cfg) -> FlowGraph {
        let text = program.text();
        let n = text.len();
        let nb = cfg.blocks().len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut calls = vec![false; n];
        for (b, block) in cfg.blocks().iter().enumerate() {
            if block.start == block.end {
                continue;
            }
            let last = block.end - 1;
            let fall = (block.end < n).then(|| cfg.block_of(block.end));
            let mut out: Vec<usize> = Vec::new();
            match text[last].control_flow() {
                CtrlFlow::Fall => out.extend(fall),
                CtrlFlow::CondBranch { offset } => {
                    out.extend(fall);
                    out.extend(Self::target_block(cfg, n, last, offset));
                }
                CtrlFlow::Jump { offset } => {
                    let linking = matches!(text[last], Instr::Jal { rd, .. } if !rd.is_zero());
                    if linking {
                        // A call: summarize as a fall-through to the
                        // return site.
                        calls[last] = true;
                        out.extend(fall);
                    } else {
                        out.extend(Self::target_block(cfg, n, last, offset));
                    }
                }
                CtrlFlow::IndirectJump { .. } => {
                    let linking = matches!(text[last], Instr::Jalr { rd, .. } if !rd.is_zero());
                    if linking {
                        calls[last] = true;
                        out.extend(fall);
                    }
                    // Non-linking jalr is a return (or a computed jump we
                    // cannot follow): no local successors.
                }
                CtrlFlow::Halt => {}
            }
            out.sort_unstable();
            out.dedup();
            succs[b] = out;
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }
        // Every direct call target is a function entry: with calls
        // summarized, callee bodies have no incoming local edges, so
        // they must be dominator roots of their own.
        let mut roots = vec![cfg.entry_block()];
        for (i, instr) in text.iter().enumerate() {
            if let Instr::Jal { rd, offset } = *instr {
                if !rd.is_zero() {
                    roots.extend(Self::target_block(cfg, n, i, offset));
                }
            }
        }
        roots.sort_unstable();
        roots.dedup();
        FlowGraph {
            succs,
            preds,
            entry: cfg.entry_block(),
            roots,
            calls,
        }
    }

    fn target_block(cfg: &Cfg, n: usize, at: usize, offset: i32) -> Option<usize> {
        let delta = offset / lvp_isa::INSTR_BYTES as i32;
        let target = at as i64 + delta as i64;
        (offset % lvp_isa::INSTR_BYTES as i32 == 0 && target >= 0 && (target as usize) < n)
            .then(|| cfg.block_of(target as usize))
    }

    /// Successor block ids of `b`.
    pub fn succs(&self, b: usize) -> &[usize] {
        &self.succs[b]
    }

    /// Predecessor block ids of `b`.
    pub fn preds(&self, b: usize) -> &[usize] {
        &self.preds[b]
    }

    /// The entry block id.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Dominator-tree roots: the entry block, plus (on the local view)
    /// every direct call target.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Whether instruction `i` is treated as an ABI call in this view
    /// (always `false` on the raw view).
    pub fn is_call(&self, i: usize) -> bool {
        self.calls.get(i).copied().unwrap_or(false)
    }
}

/// Immediate dominators of every reachable block, computed with the
/// Cooper–Harvey–Kennedy iterative algorithm (robust to irreducible
/// graphs).
#[derive(Debug)]
pub struct Dominators {
    idom: Vec<Option<usize>>,
    /// Reachable blocks in reverse postorder.
    rpo: Vec<usize>,
}

impl Dominators {
    /// Computes immediate dominators over `g`, rooted at every entry in
    /// [`FlowGraph::roots`]. Internally a virtual super-root fronts the
    /// roots, so the multi-function local view is handled uniformly; a
    /// block whose immediate dominator is the virtual root reports
    /// itself as its own idom (a dominator-tree top).
    pub fn compute(g: &FlowGraph) -> Dominators {
        let nb = g.len();
        let virt = nb; // the virtual super-root
        let mut rpo = Vec::with_capacity(nb);
        let mut state = vec![0u8; nb + 1]; // 0 unvisited, 1 on stack, 2 done
        let succs_of = |b: usize| -> &[usize] {
            if b == virt {
                g.roots()
            } else {
                g.succs(b)
            }
        };
        if nb > 0 {
            // Iterative postorder DFS from the virtual root.
            let mut stack: Vec<(usize, usize)> = vec![(virt, 0)];
            state[virt] = 1;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                if *next < succs_of(b).len() {
                    let s = succs_of(b)[*next];
                    *next += 1;
                    if state[s] == 0 {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                } else {
                    state[b] = 2;
                    rpo.push(b);
                    stack.pop();
                }
            }
            rpo.reverse();
            debug_assert_eq!(rpo.first(), Some(&virt));
            rpo.remove(0);
        }
        let mut rpo_index = vec![usize::MAX; nb + 1];
        rpo_index[virt] = 0;
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i + 1;
        }

        // CHK over the extended graph; `idom == virt` marks a tree top.
        let mut idom: Vec<Option<usize>> = vec![None; nb + 1];
        idom[virt] = Some(virt);
        let is_root = |b: usize| g.roots().contains(&b);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let mut new_idom: Option<usize> = if is_root(b) { Some(virt) } else { None };
                for &p in g.preds(b) {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Collapse the virtual root: tree tops become their own idom.
        let mut out_idom: Vec<Option<usize>> = vec![None; nb];
        for b in 0..nb {
            out_idom[b] = match idom[b] {
                Some(d) if d == virt => Some(b),
                other => other,
            };
        }
        Dominators {
            idom: out_idom,
            rpo,
        }
    }

    /// Immediate dominator of `b` (`b` itself for the entry block);
    /// `None` if `b` is unreachable.
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom[b]
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: usize) -> bool {
        self.idom[b].is_some()
    }

    /// Reachable blocks in reverse postorder.
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// Whether `a` dominates `b` (reflexive). Unreachable blocks
    /// dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[a].is_none() || self.idom[b].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur].expect("reachable chain");
            if next == cur {
                return false; // reached the entry without meeting `a`
            }
            cur = next;
        }
    }

    /// Dominance frontier of every block (Cooper–Harvey–Kennedy walk:
    /// for each join block, run each predecessor up the dominator tree
    /// until reaching the join's immediate dominator).
    pub fn frontiers(&self, g: &FlowGraph) -> Vec<Vec<usize>> {
        let mut df: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); g.len()];
        for &b in &self.rpo {
            // Even single-pred blocks matter here: a root block with a
            // back edge (a function whose entry is a loop header) has
            // one real pred but still needs a frontier walk, because its
            // idom is itself, not the pred.
            if g.preds(b).is_empty() {
                continue;
            }
            // A tree top (root block) is its own idom; conceptually its
            // idom is the virtual super-root, so the runner walk goes
            // all the way up — including `b` itself, which is in its own
            // frontier when it heads a loop rooted at a function entry.
            let idom_b = self.idom[b].expect("rpo blocks are reachable");
            let target = (idom_b != b).then_some(idom_b);
            for &p in g.preds(b) {
                if self.idom[p].is_none() {
                    continue; // unreachable predecessor
                }
                let mut runner = p;
                // idom(b) dominates every reachable predecessor of b, so
                // this walk terminates at `target` (or at a tree top).
                while Some(runner) != target {
                    df[runner].insert(b);
                    let up = self.idom[runner].expect("reachable chain");
                    if up == runner {
                        break; // tree top reached
                    }
                    runner = up;
                }
            }
        }
        df.into_iter().map(|s| s.into_iter().collect()).collect()
    }
}

fn intersect(idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("processed block");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("processed block");
        }
    }
    a
}

/// Identifier of one SSA value.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// What defines an SSA value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueDef {
    /// The synthetic definition modelling register slot `slot`'s state at
    /// program entry (possibly uninitialized).
    Entry {
        /// The register slot ([`RegId::flat_index`]).
        slot: usize,
    },
    /// The value written by instruction `instr`.
    Instr {
        /// The defining instruction index.
        instr: usize,
    },
    /// A φ-function; see [`Ssa::phi`].
    Phi {
        /// Index into the φ list.
        phi: usize,
    },
    /// The (unknown) value a caller-saved register holds after the ABI
    /// call at `instr` (local view only).
    CallClobber {
        /// The call instruction index.
        instr: usize,
        /// The clobbered register slot.
        slot: usize,
    },
}

/// One φ-function: a join of `slot`'s reaching values at the head of
/// `block`.
#[derive(Debug, Clone)]
pub struct Phi {
    /// The block whose head holds the φ.
    pub block: usize,
    /// The register slot joined.
    pub slot: usize,
    /// The value this φ defines.
    pub value: ValueId,
    /// One `(predecessor block, incoming value)` pair per CFG
    /// predecessor edge.
    pub inputs: Vec<(usize, ValueId)>,
}

/// Sentinel predecessor id marking a φ input that carries the entry
/// state into a root block (no real CFG edge exists for it).
pub const ENTRY_PRED: usize = usize::MAX;

/// A definition site in the flattened use-def expansion; see
/// [`Ssa::expand`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SsaSite {
    /// The synthetic entry state of a register slot.
    Entry(usize),
    /// A real defining instruction.
    Instr(usize),
    /// A call-clobber definition (local view).
    Clobber(usize, usize),
}

/// Pruned SSA form of one program over a [`FlowGraph`] view.
#[derive(Debug)]
pub struct Ssa {
    values: Vec<ValueDef>,
    phis: Vec<Phi>,
    /// Per instruction: the value of each register use, in
    /// [`Instr::uses`] order. Empty for instructions in unreachable
    /// blocks.
    use_values: Vec<Vec<ValueId>>,
    /// Per instruction: the value its register definition produces.
    def_value: Vec<Option<ValueId>>,
    /// φ indices at the head of each block.
    block_phis: Vec<Vec<usize>>,
    /// Block of each instruction (from the `Cfg`).
    block_of: Vec<usize>,
}

impl Ssa {
    /// Builds pruned SSA for `program` over the graph view `g` (block
    /// structure from `cfg`).
    pub fn build(program: &Program, cfg: &Cfg, g: &FlowGraph) -> Ssa {
        let text = program.text();
        let n = text.len();
        let nb = g.len();
        let dom = Dominators::compute(g);
        let frontiers = dom.frontiers(g);
        let live_in = live_in_with(program, cfg, g);

        let mut values: Vec<ValueDef> =
            (0..NUM_REGS).map(|slot| ValueDef::Entry { slot }).collect();
        let mut phis: Vec<Phi> = Vec::new();
        let mut block_phis: Vec<Vec<usize>> = vec![Vec::new(); nb];

        // Definition blocks per slot. Every root block carries the
        // synthetic entry definitions; calls define every caller-saved
        // slot in the local view.
        let mut def_blocks: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); NUM_REGS];
        if nb > 0 {
            for set in def_blocks.iter_mut() {
                set.extend(g.roots());
            }
        }
        for (b, block) in cfg.blocks().iter().enumerate() {
            for (i, instr) in text.iter().enumerate().take(block.end).skip(block.start) {
                if let Some(d) = instr.defs() {
                    def_blocks[d.flat_index()].insert(b);
                }
                if g.is_call(i) {
                    for (slot, set) in def_blocks.iter_mut().enumerate() {
                        if is_caller_saved_slot(slot) {
                            set.insert(b);
                        }
                    }
                }
            }
        }

        // Pruned φ placement: iterated dominance frontier, gated on
        // liveness.
        for (slot, slot_defs) in def_blocks.iter().enumerate() {
            let mut work: Vec<usize> = slot_defs.iter().copied().collect();
            let mut has_phi: BTreeSet<usize> = BTreeSet::new();
            while let Some(b) = work.pop() {
                if !dom.reachable(b) {
                    continue;
                }
                for &f in &frontiers[b] {
                    if has_phi.contains(&f) || live_in[f] & (1u64 << slot) == 0 {
                        continue;
                    }
                    has_phi.insert(f);
                    let value = ValueId(values.len() as u32);
                    values.push(ValueDef::Phi { phi: phis.len() });
                    block_phis[f].push(phis.len());
                    // A φ at a root block also joins the entry state,
                    // which arrives via the (virtual) root edge rather
                    // than a real predecessor: seed a sentinel input.
                    let inputs = if g.roots().contains(&f) {
                        vec![(ENTRY_PRED, ValueId(slot as u32))]
                    } else {
                        Vec::new()
                    };
                    phis.push(Phi {
                        block: f,
                        slot,
                        value,
                        inputs,
                    });
                    if !def_blocks[slot].contains(&f) {
                        work.push(f);
                    }
                }
            }
        }

        // Rename along the dominator tree (explicit stack — whole
        // programs have thousands of blocks).
        let mut dom_children: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for b in 0..nb {
            if let Some(d) = dom.idom(b) {
                if d != b {
                    dom_children[d].push(b);
                }
            }
        }
        let mut stacks: Vec<Vec<ValueId>> = (0..NUM_REGS)
            .map(|slot| vec![ValueId(slot as u32)])
            .collect();
        let mut use_values: Vec<Vec<ValueId>> = vec![Vec::new(); n];
        let mut def_value: Vec<Option<ValueId>> = vec![None; n];

        enum Step {
            Enter(usize),
            Exit(Vec<(usize, ValueId)>), // values to pop off the rename stacks
        }
        // Walk every dominator tree (one per root); the register stacks
        // rewind to the entry values between trees, so each function
        // starts renaming from the synthetic entry state.
        let mut walk: Vec<Step> = Vec::new();
        for b in (0..nb).rev() {
            if dom.idom(b) == Some(b) {
                walk.push(Step::Enter(b));
            }
        }
        while let Some(step) = walk.pop() {
            match step {
                Step::Enter(b) => {
                    // Record stack depths to restore on exit.
                    let mut pushed: Vec<(usize, ValueId)> = Vec::new();
                    let push = |stacks: &mut Vec<Vec<ValueId>>,
                                pushed: &mut Vec<(usize, ValueId)>,
                                slot: usize,
                                v: ValueId| {
                        stacks[slot].push(v);
                        pushed.push((slot, v));
                    };
                    for &pi in &block_phis[b] {
                        let (slot, v) = (phis[pi].slot, phis[pi].value);
                        push(&mut stacks, &mut pushed, slot, v);
                    }
                    let block = &cfg.blocks()[b];
                    for i in block.start..block.end {
                        let instr = &text[i];
                        use_values[i] = instr
                            .uses()
                            .map(|u| *stacks[u.flat_index()].last().expect("entry value seeded"))
                            .collect();
                        if let Some(d) = instr.defs() {
                            let v = ValueId(values.len() as u32);
                            values.push(ValueDef::Instr { instr: i });
                            def_value[i] = Some(v);
                            push(&mut stacks, &mut pushed, d.flat_index(), v);
                        }
                        if g.is_call(i) {
                            for slot in 0..NUM_REGS {
                                if is_caller_saved_slot(slot) {
                                    let v = ValueId(values.len() as u32);
                                    values.push(ValueDef::CallClobber { instr: i, slot });
                                    push(&mut stacks, &mut pushed, slot, v);
                                }
                            }
                        }
                    }
                    // Feed successor φs.
                    for &s in g.succs(b) {
                        for &pi in &block_phis[s] {
                            let slot = phis[pi].slot;
                            let top = *stacks[slot].last().expect("entry value seeded");
                            phis[pi].inputs.push((b, top));
                        }
                    }
                    walk.push(Step::Exit(pushed));
                    for &c in dom_children[b].iter().rev() {
                        walk.push(Step::Enter(c));
                    }
                }
                Step::Exit(pushed) => {
                    for &(slot, v) in pushed.iter().rev() {
                        let popped = stacks[slot].pop();
                        debug_assert_eq!(popped, Some(v));
                    }
                }
            }
        }

        let block_of = (0..n).map(|i| cfg.block_of(i)).collect();
        Ssa {
            values,
            phis,
            use_values,
            def_value,
            block_phis,
            block_of,
        }
    }

    /// The definition of `v`.
    pub fn value(&self, v: ValueId) -> &ValueDef {
        &self.values[v.0 as usize]
    }

    /// The φ at index `phi`.
    pub fn phi(&self, phi: usize) -> &Phi {
        &self.phis[phi]
    }

    /// All φ-functions.
    pub fn phis(&self) -> &[Phi] {
        &self.phis
    }

    /// φ indices at the head of block `b`.
    pub fn block_phis(&self, b: usize) -> &[usize] {
        &self.block_phis[b]
    }

    /// The SSA value of the `nth` register use of instruction `i` (in
    /// [`Instr::uses`] order); `None` when the instruction is
    /// unreachable or has fewer uses.
    pub fn value_for_use(&self, i: usize, nth: usize) -> Option<ValueId> {
        self.use_values.get(i)?.get(nth).copied()
    }

    /// The SSA values of every register use of instruction `i`.
    pub fn uses_of(&self, i: usize) -> &[ValueId] {
        &self.use_values[i]
    }

    /// The SSA value defined by instruction `i`, if it defines one and
    /// is reachable.
    pub fn def_of(&self, i: usize) -> Option<ValueId> {
        self.def_value.get(i).copied().flatten()
    }

    /// Number of SSA values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Flattens `v` to the set of concrete definition sites it may take
    /// its value from, resolving φ networks transitively. On the raw
    /// view this set equals the iterative reaching-definitions answer at
    /// the use — the differential test in `tests/` relies on it.
    pub fn expand(&self, v: ValueId) -> BTreeSet<SsaSite> {
        let mut out = BTreeSet::new();
        let mut seen = vec![false; self.values.len()];
        let mut work = vec![v];
        while let Some(v) = work.pop() {
            if std::mem::replace(&mut seen[v.0 as usize], true) {
                continue;
            }
            match &self.values[v.0 as usize] {
                ValueDef::Entry { slot } => {
                    out.insert(SsaSite::Entry(*slot));
                }
                ValueDef::Instr { instr } => {
                    out.insert(SsaSite::Instr(*instr));
                }
                ValueDef::CallClobber { instr, slot } => {
                    out.insert(SsaSite::Clobber(*instr, *slot));
                }
                ValueDef::Phi { phi } => {
                    work.extend(self.phis[*phi].inputs.iter().map(|&(_, v)| v));
                }
            }
        }
        out
    }

    /// Per-value "may take the uninitialized entry state" and "has at
    /// least one real definition" flags, for the `LVP015` may-uninit
    /// check: computed for every value at once by fixpoint over the φ
    /// network.
    pub fn entry_flags(&self) -> Vec<(bool, bool)> {
        let n = self.values.len();
        let mut may_entry = vec![false; n];
        let mut has_real = vec![false; n];
        for (i, v) in self.values.iter().enumerate() {
            match v {
                ValueDef::Entry { .. } => may_entry[i] = true,
                ValueDef::Instr { .. } | ValueDef::CallClobber { .. } => has_real[i] = true,
                ValueDef::Phi { .. } => {}
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (i, v) in self.values.iter().enumerate() {
                if let ValueDef::Phi { phi } = v {
                    for &(_, input) in &self.phis[*phi].inputs {
                        let (m, r) = (may_entry[input.0 as usize], has_real[input.0 as usize]);
                        if m && !may_entry[i] {
                            may_entry[i] = true;
                            changed = true;
                        }
                        if r && !has_real[i] {
                            has_real[i] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        may_entry.into_iter().zip(has_real).collect()
    }

    /// Verifies the SSA construction invariants against `dom`:
    ///
    /// * every φ has exactly one input per reachable predecessor edge;
    /// * every non-φ definition dominates each of its uses (φ inputs are
    ///   checked against the matching predecessor block).
    ///
    /// Returns human-readable descriptions of any violations; an empty
    /// vector means the invariants hold. The value-flow pass surfaces
    /// non-empty results as `LVP015`.
    pub fn verify(&self, g: &FlowGraph, dom: &Dominators) -> Vec<String> {
        let mut errors = Vec::new();
        for (pi, phi) in self.phis.iter().enumerate() {
            let mut expect: Vec<usize> = g
                .preds(phi.block)
                .iter()
                .copied()
                .filter(|&p| dom.reachable(p))
                .collect();
            if g.roots().contains(&phi.block) {
                expect.push(ENTRY_PRED); // the entry-state sentinel input
            }
            let mut inputs: Vec<usize> = phi.inputs.iter().map(|&(p, _)| p).collect();
            inputs.sort_unstable();
            expect.sort_unstable();
            expect.dedup();
            if inputs != expect {
                errors.push(format!(
                    "phi {pi} (block {}, slot {}): inputs from {inputs:?}, predecessors {expect:?}",
                    phi.block, phi.slot
                ));
            }
            for &(p, v) in &phi.inputs {
                if p == ENTRY_PRED {
                    continue; // entry-state inputs have no edge to check
                }
                if let Some(db) = self.def_block(v) {
                    if !dom.dominates(db, p) {
                        errors.push(format!(
                            "phi {pi}: input value from block {db} does not dominate edge {p}->{}",
                            phi.block
                        ));
                    }
                }
            }
        }
        for (i, uses) in self.use_values.iter().enumerate() {
            for &v in uses {
                if let Some(db) = self.def_block(v) {
                    let ub = self.block_of[i];
                    let same_block_ok = db == ub;
                    if !same_block_ok && !dom.dominates(db, ub) {
                        errors.push(format!(
                            "use at instr {i} (block {ub}): defining block {db} does not dominate"
                        ));
                    }
                }
            }
        }
        errors
    }

    /// The block a value is defined in (`None` for entry values).
    fn def_block(&self, v: ValueId) -> Option<usize> {
        match &self.values[v.0 as usize] {
            ValueDef::Entry { .. } => None,
            ValueDef::Instr { instr } | ValueDef::CallClobber { instr, .. } => {
                Some(self.block_of[*instr])
            }
            ValueDef::Phi { phi } => Some(self.phis[*phi].block),
        }
    }

    /// The block instruction `i` belongs to.
    pub fn block_of_instr(&self, i: usize) -> usize {
        self.block_of[i]
    }
}

/// Per-block live-in register masks over an arbitrary [`FlowGraph`]
/// view. On the raw view this matches [`crate::Liveness`]; the local
/// view additionally treats calls as defining the caller-saved slots
/// (a clobbered register's old value cannot be live across the call).
fn live_in_with(program: &Program, cfg: &Cfg, g: &FlowGraph) -> Vec<u64> {
    let text = program.text();
    let nb = g.len();
    let mut upward = vec![0u64; nb];
    let mut defined = vec![0u64; nb];
    for (b, block) in cfg.blocks().iter().enumerate() {
        let mut def_mask = 0u64;
        for (i, instr) in text.iter().enumerate().take(block.end).skip(block.start) {
            for u in instr.uses() {
                let bit = 1u64 << u.flat_index();
                if def_mask & bit == 0 {
                    upward[b] |= bit;
                }
            }
            if let Some(d) = instr.defs() {
                def_mask |= 1u64 << d.flat_index();
            }
            if g.is_call(i) {
                for slot in 0..NUM_REGS {
                    if is_caller_saved_slot(slot) {
                        def_mask |= 1u64 << slot;
                    }
                }
            }
        }
        defined[b] = def_mask;
    }
    let mut live_in = vec![0u64; nb];
    let mut live_out = vec![0u64; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut out = 0u64;
            for &s in g.succs(b) {
                out |= live_in[s];
            }
            let inb = upward[b] | (out & !defined[b]);
            if out != live_out[b] || inb != live_in[b] {
                live_out[b] = out;
                live_in[b] = inb;
                changed = true;
            }
        }
    }
    live_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler, Reg, RegId};

    fn assemble(src: &str) -> Program {
        Assembler::new(AsmProfile::Gp).assemble(src).unwrap()
    }

    fn build_raw(src: &str) -> (Program, Cfg, FlowGraph, Ssa) {
        let p = assemble(src);
        let cfg = Cfg::build(&p);
        let g = FlowGraph::raw(&cfg);
        let ssa = Ssa::build(&p, &cfg, &g);
        (p, cfg, g, ssa)
    }

    #[test]
    fn straight_line_defs_reach_uses() {
        let (p, cfg, _, ssa) = build_raw("main:\n li a0, 1\n addi a1, a0, 2\n out a1\n halt\n");
        let _ = (p, cfg);
        // The `addi`'s use of a0 must be the `li`'s def.
        let v = ssa.value_for_use(1, 0).unwrap();
        assert_eq!(ssa.expand(v), BTreeSet::from([SsaSite::Instr(0)]));
        // `out a1` reads the addi's def.
        let v = ssa.value_for_use(2, 0).unwrap();
        assert_eq!(ssa.expand(v), BTreeSet::from([SsaSite::Instr(1)]));
    }

    #[test]
    fn diamond_join_gets_phi() {
        let (_, _, g, ssa) = build_raw(
            "main:\n li t0, 1\n beq t0, zero, other\n li a0, 1\n j join\nother:\n li a0, 2\n\
             join:\n out a0\n halt\n",
        );
        let _ = &g;
        // `out a0` must see both `li a0` defs and nothing else.
        let out_idx = 5;
        let v = ssa.value_for_use(out_idx, 0).unwrap();
        let sites = ssa.expand(v);
        assert_eq!(
            sites,
            BTreeSet::from([SsaSite::Instr(2), SsaSite::Instr(4)])
        );
        assert!(matches!(ssa.value(v), ValueDef::Phi { .. }));
    }

    #[test]
    fn loop_carried_value_is_a_phi_over_init_and_update() {
        let (_, _, _, ssa) = build_raw(
            "main:\n li a0, 10\nloop:\n addi a0, a0, -1\n bne a0, zero, loop\n out a0\n halt\n",
        );
        // The addi's use of a0 joins the init (instr 0) and itself
        // (instr 1).
        let v = ssa.value_for_use(1, 0).unwrap();
        assert_eq!(
            ssa.expand(v),
            BTreeSet::from([SsaSite::Instr(0), SsaSite::Instr(1)])
        );
    }

    #[test]
    fn entry_state_reaches_uninitialized_use() {
        let (_, _, _, ssa) = build_raw("main:\n add a1, a0, a0\n out a1\n halt\n");
        let v = ssa.value_for_use(0, 0).unwrap();
        assert_eq!(
            ssa.expand(v),
            BTreeSet::from([SsaSite::Entry(RegId::Int(Reg::A0).flat_index())])
        );
    }

    #[test]
    fn may_uninit_flags_distinguish_one_sided_defs() {
        let (_, _, _, ssa) =
            build_raw("main:\n li t0, 1\n beq t0, zero, join\n li a0, 1\njoin:\n out a0\n halt\n");
        let flags = ssa.entry_flags();
        let v = ssa.value_for_use(3, 0).unwrap(); // out a0
        let (may_entry, has_real) = flags[v.0 as usize];
        assert!(may_entry && has_real, "one-sided def must be may-uninit");
    }

    #[test]
    fn verify_accepts_construction_and_rejects_corruption() {
        let (_, cfg, g, mut ssa) = build_raw(
            "main:\n li t0, 2\n beq t0, zero, other\n li a0, 1\n j join\nother:\n li a0, 2\n\
             join:\n out a0\n halt\n",
        );
        let _ = &cfg;
        let dom = Dominators::compute(&g);
        assert!(ssa.verify(&g, &dom).is_empty());
        // Corrupt a φ by dropping one input: the verifier must object.
        if let Some(phi) = ssa.phis.iter().position(|p| p.inputs.len() == 2) {
            ssa.phis[phi].inputs.pop();
            assert!(!ssa.verify(&g, &dom).is_empty());
        } else {
            panic!("expected a two-input phi");
        }
    }

    #[test]
    fn local_view_summarizes_calls() {
        let p = assemble("main:\n jal ra, f\n out a0\n halt\nf:\n li a0, 5\n jalr zero, ra, 0\n");
        let cfg = Cfg::build(&p);
        let g = FlowGraph::local(&p, &cfg);
        // The call block falls through to the return site, not into `f`.
        let call_block = cfg.block_of(0);
        let ret_site = cfg.block_of(1);
        assert_eq!(g.succs(call_block), &[ret_site]);
        assert!(g.is_call(0));
        // The `jalr zero` return has no local successors.
        let ret_block = cfg.block_of(4);
        assert!(g.succs(ret_block).is_empty());
    }

    #[test]
    fn local_view_call_clobbers_caller_saved_values() {
        let p = assemble(
            "main:\n li t0, 7\n li s1, 8\n jal ra, f\n add a0, t0, s1\n out a0\n halt\n\
             f:\n jalr zero, ra, 0\n",
        );
        let cfg = Cfg::build(&p);
        let g = FlowGraph::local(&p, &cfg);
        let ssa = Ssa::build(&p, &cfg, &g);
        // After the call, t0 (caller-saved) is a clobber value; s1
        // (callee-saved) still sees its def.
        let add_idx = 3;
        let t0_val = ssa.value_for_use(add_idx, 0).unwrap();
        let s1_val = ssa.value_for_use(add_idx, 1).unwrap();
        assert!(ssa
            .expand(t0_val)
            .iter()
            .all(|s| matches!(s, SsaSite::Clobber(..))));
        assert_eq!(ssa.expand(s1_val), BTreeSet::from([SsaSite::Instr(1)]));
    }

    #[test]
    fn dominators_on_diamond() {
        let (_, cfg, g, _) = build_raw(
            "main:\n li t0, 1\n beq t0, zero, other\n li a0, 1\n j join\nother:\n li a0, 2\n\
             join:\n out a0\n halt\n",
        );
        let dom = Dominators::compute(&g);
        let entry = cfg.entry_block();
        let join = cfg.block_of(5);
        assert!(dom.dominates(entry, join));
        let left = cfg.block_of(2);
        assert!(!dom.dominates(left, join));
        assert_eq!(dom.idom(join), Some(entry));
    }
}
