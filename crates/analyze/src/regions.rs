//! Abstract memory regions for the provenance analysis.
//!
//! The provenance pass partitions the LRISC address space into four
//! abstract regions and reasons about *sets* of them. The partition
//! follows the loader's layout exactly:
//!
//! ```text
//!   [data_base, pool_base)   Global     program globals (absolute or
//!                                       gp-relative addressing)
//!   [pool_base, data_end)    ConstPool  the compiler-owned constant pool
//!                                       (Toc-profile `la` slots, large
//!                                       `li` immediates, `fli` literals)
//!   [stack_top - 1 MiB,
//!    stack_top]              Stack      per-function stack frames
//!   everything else          Outside    not a data address
//! ```
//!
//! # The pool-ownership assumption
//!
//! The single deliberate deviation from full conservatism: a pointer of
//! *unknown* provenance is assumed to range over `Global | Stack |
//! Outside` but **never** over `ConstPool` (see
//! [`RegionSet::unknown`]). The pool is compiler-owned — no source
//! construct takes its address — so a store through a computed pointer
//! cannot legitimately target it. Statically visible pool writes are
//! still caught (lint `LVP007`), and the dynamic CVU cross-check
//! validates the assumption on every run: if any store ever hits a
//! must-constant pool slot at run time, the oracle fails naming the
//! store. Without this assumption every program containing one indexed
//! store would have an empty must-constant class, and the analysis
//! would be useless.

use lvp_isa::{Layout, Program};
use std::fmt;

/// One abstract memory region of the provenance partition.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// The compiler-owned constant pool `[pool_base, data_end)`.
    ConstPool,
    /// Program globals `[data_base, pool_base)`.
    Global,
    /// The stack region (top 1 MiB below the initial stack pointer).
    Stack,
    /// Not a data address (text, unmapped, or a non-address value).
    Outside,
}

impl Region {
    /// Short stable name, used in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            Region::ConstPool => "const-pool",
            Region::Global => "global",
            Region::Stack => "stack",
            Region::Outside => "outside",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Region::ConstPool => 1 << 0,
            Region::Global => 1 << 1,
            Region::Stack => 1 << 2,
            Region::Outside => 1 << 3,
        }
    }

    /// All regions, in declaration order.
    pub fn all() -> [Region; 4] {
        [
            Region::ConstPool,
            Region::Global,
            Region::Stack,
            Region::Outside,
        ]
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`Region`]s, the codomain of the points-to lattice.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionSet(u8);

impl RegionSet {
    /// The empty set.
    pub fn empty() -> RegionSet {
        RegionSet(0)
    }

    /// The singleton set `{r}`.
    pub fn of(r: Region) -> RegionSet {
        RegionSet(r.bit())
    }

    /// The set an unknown value may point into: every region **except**
    /// the constant pool (the pool-ownership assumption, see the module
    /// docs).
    pub fn unknown() -> RegionSet {
        RegionSet(Region::Global.bit() | Region::Stack.bit() | Region::Outside.bit())
    }

    /// Set membership.
    pub fn contains(self, r: Region) -> bool {
        self.0 & r.bit() != 0
    }

    /// Set union.
    pub fn union(self, other: RegionSet) -> RegionSet {
        RegionSet(self.0 | other.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether this is exactly the singleton `{r}`.
    pub fn is_only(self, r: Region) -> bool {
        self.0 == r.bit()
    }

    /// The regions in the set, in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Region> {
        Region::all().into_iter().filter(move |r| self.contains(*r))
    }
}

impl fmt::Display for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        f.write_str("{")?;
        for r in self.iter() {
            if !first {
                f.write_str("|")?;
            }
            first = false;
            f.write_str(r.name())?;
        }
        f.write_str("}")
    }
}

/// The concrete region boundaries of one program, answering "which
/// region does address `a` live in?".
#[derive(Debug, Clone)]
pub struct RegionMap {
    data_base: u64,
    pool_base: u64,
    data_end: u64,
    stack_lo: u64,
    stack_top: u64,
}

impl RegionMap {
    /// Derives the region partition from a program's layout and pool
    /// base.
    pub fn new(program: &Program) -> RegionMap {
        let layout: &Layout = program.layout();
        RegionMap {
            data_base: layout.data_base(),
            pool_base: program.pool_base(),
            data_end: layout.data_end(),
            stack_lo: layout.stack_top().saturating_sub(1 << 20),
            stack_top: layout.stack_top(),
        }
    }

    /// The region containing address `addr`.
    pub fn classify(&self, addr: u64) -> Region {
        if addr >= self.pool_base && addr < self.data_end {
            Region::ConstPool
        } else if addr >= self.data_base && addr < self.pool_base {
            Region::Global
        } else if addr >= self.stack_lo && addr <= self.stack_top {
            Region::Stack
        } else {
            Region::Outside
        }
    }

    /// The region of the *byte range* `[addr, addr + width)`: the range's
    /// start region, widened to a set if the range straddles a boundary.
    pub fn classify_range(&self, addr: u64, width: u8) -> RegionSet {
        let lo = self.classify(addr);
        let hi = self.classify(addr.saturating_add(width.max(1) as u64 - 1));
        RegionSet::of(lo).union(RegionSet::of(hi))
    }

    /// First initialized-data address.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// First constant-pool address.
    pub fn pool_base(&self) -> u64 {
        self.pool_base
    }

    /// One past the last initialized-data (and pool) address.
    pub fn data_end(&self) -> u64 {
        self.data_end
    }

    /// Whether `[addr, addr + width)` lies entirely inside the
    /// initialized data image (so its initial contents are defined by
    /// the program).
    pub fn in_image(&self, addr: u64, width: u8) -> bool {
        addr >= self.data_base
            && addr
                .checked_add(width as u64)
                .is_some_and(|end| end <= self.data_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_isa::{AsmProfile, Assembler};

    fn program() -> Program {
        Assembler::new(AsmProfile::Toc)
            .assemble(
                ".data\nv: .dword 42\n.text\nmain:\n la a0, v\n ld a1, 0(a0)\n out a1\n halt\n",
            )
            .unwrap()
    }

    #[test]
    fn partition_matches_layout() {
        let p = program();
        let m = RegionMap::new(&p);
        assert_eq!(m.classify(p.symbol("v").unwrap()), Region::Global);
        assert_eq!(m.classify(p.pool_base()), Region::ConstPool);
        assert_eq!(m.classify(p.layout().stack_top() - 8), Region::Stack);
        assert_eq!(m.classify(p.layout().text_base()), Region::Outside);
        assert_eq!(m.classify(0xdead_beef_0000), Region::Outside);
    }

    #[test]
    fn range_straddling_boundary_widens() {
        let p = program();
        let m = RegionMap::new(&p);
        // `v` is the last global before the pool: an 8-byte range starting
        // 4 bytes before the pool base covers both regions.
        let set = m.classify_range(p.pool_base() - 4, 8);
        assert!(set.contains(Region::Global) && set.contains(Region::ConstPool));
    }

    #[test]
    fn unknown_set_excludes_pool() {
        let u = RegionSet::unknown();
        assert!(!u.contains(Region::ConstPool));
        assert!(u.contains(Region::Global));
        assert!(u.contains(Region::Stack));
        assert!(u.contains(Region::Outside));
        assert!(!u.is_only(Region::Stack));
        assert_eq!(u.to_string(), "{global|stack|outside}");
    }

    #[test]
    fn set_operations() {
        let s = RegionSet::of(Region::Stack);
        assert!(s.is_only(Region::Stack));
        assert!(!s.is_empty());
        assert!(RegionSet::empty().is_empty());
        let both = s.union(RegionSet::of(Region::Global));
        assert!(both.contains(Region::Stack) && both.contains(Region::Global));
        assert_eq!(both.iter().count(), 2);
    }
}
