//! # lvp-analyze — static analysis and verification for LRISC programs
//!
//! Static companion to the dynamic machinery in `lvp-predictor`: where the
//! Load Classification Table *learns* per-static-load behavior at run
//! time, this crate *derives* it from program structure, and doubles as a
//! correctness gate (verifier) over everything the `lvp-lang` compiler and
//! the hand-written workload kernels emit.
//!
//! The crate provides five layers, each usable on its own:
//!
//! * [`Cfg`] — basic blocks and control-flow edges over a
//!   [`lvp_isa::Program`], with conservative indirect-jump (`jalr`)
//!   handling;
//! * [`ReachingDefs`] / [`Liveness`] — classic iterative dataflow over the
//!   64 combined integer + floating-point register slots;
//! * [`verify`] — the lint engine, producing [`Diagnostic`]s with stable
//!   codes (table below);
//! * [`classify_loads`] / [`LctComparison`] — the paper-facing pass:
//!   statically classify every load (constant-pool, stack reload, global,
//!   computed) and join the classes against the dynamic LCT outcome per
//!   pc;
//! * [`analyze_memory`] — the provenance pass: partition the address
//!   space into abstract [`Region`]s, run a flow-sensitive points-to
//!   lattice ([`AliasAnalysis`]) over base registers, classify every
//!   load as must-constant / stack-local / unknown ([`MemClass`]), and
//!   emit the memory lints `LVP007`–`LVP011`. The must-constant set is
//!   the static mirror of the paper's CVU and is validated dynamically
//!   by the `lvp-harness` cross-check oracle;
//! * [`analyze_value_flow`] — the value-flow pass: pruned SSA over a
//!   call-summarized view of the CFG ([`Ssa`], [`FlowGraph`]), natural
//!   loops and per-register scalar evolution ([`ScalarEvolution`],
//!   [`Evolution`]), and a per-load predictability classifier
//!   ([`LoadPredictability`]) naming which predictor in the zoo should
//!   catch each load. Emits lints `LVP012`–`LVP016`; the affine-stride
//!   and must-constant claims are validated dynamically by the harness
//!   stride-predictor cross-check.
//!
//! # Lint codes
//!
//! | Code | Name | Meaning |
//! |------|------|---------|
//! | `LVP001` | `uninit-read` | A register is read, and **no** write to it reaches the read on *any* path from the entry point. Registers initialized by the machine (`zero`, `ra`, `sp`, `gp`) are exempt, as are `sp`-relative spills of a register (prologue saves of callee-saved registers legitimately store uninitialized values). |
//! | `LVP002` | `unreachable-block` | A basic block is unreachable from the entry point, even under conservative indirect-jump assumptions (every text symbol and every return site is a potential `jalr` target). |
//! | `LVP003` | `dead-store` | A register write that can never be observed: overwritten in the same block before any read, or never read and not live out of its block. Writes to `ra` and callee-saved registers (including `sp`/`gp`) are exempt from the never-read case — epilogue restores are dead in the outermost frame by design. |
//! | `LVP004` | `branch-out-of-text` | A direct branch or jump target lies outside the text segment or is misaligned. |
//! | `LVP005` | `bad-mem-operand` | A memory operand whose address is statically known (`zero`-based absolute, or `gp`-based when `gp` is never written) is misaligned for its access width or falls outside the data segment. |
//! | `LVP006` | `write-to-zero` | An instruction writes the hardwired zero register, discarding the value. `jal`/`jalr` with a `zero` link register (the standard no-link idiom) are exempt. |
//! | `LVP007` | `store-to-pool` | A store's address set includes the compiler-owned constant-pool region. The pool is never legitimately written; a hit breaks the provenance pass's pool-ownership assumption. |
//! | `LVP008` | `load-never-written` | A must-constant load of a *global* (non-pool) address: the program declared the data writable but no store can ever reach it — a pool-promotion candidate. |
//! | `LVP009` | `stack-escape` | A provably-stack address is stored to provably non-stack memory: the frame pointer escapes its frame and may dangle after return. |
//! | `LVP010` | `misclassified-constant` | The provenance pass proves a load constant but the syntactic classifier (`classify_loads`) does not — the dynamic LCT would have to *learn* what is statically known. |
//! | `LVP011` | `store-to-load-forward` | A load's exact `(address, width)` matches an earlier store in the same basic block: a store-to-load forwarding candidate. Stack spill/reload pairs are exempt. |
//! | `LVP012` | `stride-predictable-load` | The value-flow analysis proves the load's value follows an affine recurrence `base + i*stride` around the enclosing loop — a stride predictor catches it after warm-up. The derived stride is in the message. |
//! | `LVP013` | `loop-invariant-load` | The load reads a memory cell no store in its loop can write: the value is loop-invariant, so the load could be hoisted (and a last-value predictor is exact after one miss). |
//! | `LVP014` | `static-under-approximation` | The static classifier says *unknown* but the dynamic LCT learned the load predictable — a report on where the static analysis under-approximates. Only emitted on trace-bearing paths (`--cross-check`), never in the static baseline. |
//! | `LVP015` | `ssa-inconsistency` | The internal SSA verifier found a def-use inconsistency — in practice a register read that is uninitialized on *some* (but not all) paths from entry, the may-uninit complement of `LVP001`. |
//! | `LVP016` | `loop-carried-store-to-load` | A store and a load touch the same memory cell and the value travels around the loop back edge (the load observes the previous iteration's store) — the paper's store-to-load forwardable class. |
//!
//! Lints `LVP001`–`LVP006` are *must*-style: a diagnostic is a definite
//! defect on every execution path (or, for `LVP002`/`LVP003`, provably
//! dead text), so correct compiler output verifies clean and the lints
//! can gate codegen in CI. The memory lints `LVP007`–`LVP011` (from
//! [`analyze_memory`], surfaced via `lvp check --memory`) are provenance
//! facts rather than outright defects — `LVP007`/`LVP009` indicate real
//! bugs, `LVP008`/`LVP010`/`LVP011` point at optimization headroom — and
//! are gated in CI against a committed baseline instead of a hard zero.
//! The value-flow lints `LVP012`–`LVP016` (from [`analyze_value_flow`],
//! surfaced via `lvp check --value-flow`) follow the same baseline-gated
//! model: `LVP012`/`LVP013`/`LVP016` are predictability facts,
//! `LVP015` flags real may-uninit defects, and `LVP014` is a dynamic
//! report that never appears in the static baseline.
//!
//! # Examples
//!
//! ```
//! use lvp_isa::{AsmProfile, Assembler};
//! use lvp_analyze::{verify, LintCode};
//!
//! // Reads `a0` before any write: flagged on every path.
//! let buggy = Assembler::new(AsmProfile::Gp)
//!     .assemble("main:\n add a1, a0, a0\n out a1\n halt\n")?;
//! let diags = verify(&buggy);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, LintCode::UninitRead);
//!
//! let clean = Assembler::new(AsmProfile::Gp)
//!     .assemble("main:\n li a0, 42\n out a0\n halt\n")?;
//! assert!(verify(&clean).is_empty());
//! # Ok::<(), lvp_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod alias;
mod cfg;
mod classify;
mod dataflow;
mod diag;
mod loads;
mod provenance;
mod regions;
mod scev;
mod ssa;
mod verify;

pub use alias::{AbsVal, AddrRes, AliasAnalysis, RegState};
pub use cfg::{BadBranch, BasicBlock, Cfg};
pub use classify::{
    analyze_value_flow, lvp014_diagnostics, LoadPredictability, ValueFlowReport, VfLoad,
};
pub use dataflow::{BitSet, DefSite, Liveness, ReachingDefs, NUM_REGS};
pub use diag::{sort_and_dedupe, Diagnostic, LintCode};
pub use loads::{classify_loads, ClassAgreement, LctComparison, StaticLoad, StaticLoadClass};
pub use provenance::{analyze_memory, MemClass, MemLoad, MemoryReport};
pub use regions::{Region, RegionMap, RegionSet};
pub use scev::{Evolution, Loop, LoopForest, ScalarEvolution};
pub use ssa::{Dominators, FlowGraph, Phi, Ssa, SsaSite, ValueDef, ValueId};
pub use verify::verify;
